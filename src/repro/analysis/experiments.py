"""One experiment entry point per table and figure of the paper.

Each ``experiment_*`` function regenerates the data behind one figure of the
evaluation (Section 3 and 4).  The functions share a small set of knobs:

* ``scale`` — fraction of the paper's workload volume to simulate.  The
  paper uses 5,000 objects and 100,000 requests per run; ``scale=0.1`` keeps
  the distributional shape while running in seconds, ``scale=1.0`` is the
  full published setting.
* ``num_runs`` — how many independent runs to average (the paper uses ten).
* ``cache_fractions`` — cache sizes expressed as a fraction of the total
  unique object size (the paper's x-axis, 0.5%–16.9%).

Every function returns an :class:`ExperimentResult` whose ``data`` field
holds the figure's series and whose ``notes`` summarise what qualitative
shape the paper reports, so EXPERIMENTS.md can be written directly from the
results.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.policies import PolicySpec, make_policy
from repro.exceptions import ConfigurationError
from repro.network.distributions import NLANRBandwidthDistribution
from repro.network.loganalysis import ProxyLogAnalyzer, SyntheticProxyLog
from repro.obs import ObservabilityConfig
from repro.network.variability import (
    MEASURED_PATH_PROFILES,
    BandwidthVariabilityModel,
    ConstantVariability,
    MeasuredPathVariability,
    NLANRRatioVariability,
    empirical_ratio_statistics,
)
from repro.sim.config import BandwidthKnowledge, ClientCloudConfig, SimulationConfig
from repro.sim.events import RemeasurementConfig
from repro.sim.faults import FaultConfig, FaultEpisode
from repro.sim.hierarchy import CacheTier, HierarchyConfig
from repro.sim.metrics import SimulationMetrics
from repro.sim.runner import (
    PolicyComparison,
    SweepResult,
    compare_policies,
    sweep_cache_sizes,
)
from repro.sim.simulator import ProxyCacheSimulator
from repro.sim.streaming import StreamingConfig
from repro.workload.gismo import GismoWorkloadGenerator, Workload, WorkloadConfig

#: Cache sizes as fractions of the total unique object size, matching the
#: paper's 4 GB (~0.5%) to 128 GB (~16.9%) range on a 790 GB catalog.
DEFAULT_CACHE_FRACTIONS: Sequence[float] = (0.005, 0.02, 0.05, 0.10, 0.17)

#: Default workload scale used when none is given: one tenth of the paper's
#: volume, which preserves the qualitative results at interactive runtimes.
DEFAULT_SCALE: float = 0.1


@dataclass
class ExperimentResult:
    """Output of one experiment: identification, data series, and notes."""

    experiment_id: str
    title: str
    data: Dict[str, object] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def series(self, key: str):
        """Convenience accessor for a named data series."""
        return self.data[key]


def build_workload(
    scale: float = DEFAULT_SCALE,
    zipf_alpha: float = 0.73,
    seed: int = 0,
    columnar: bool = True,
    num_clients: int = 1,
) -> Workload:
    """Generate the Table 1 workload at the requested scale.

    The trace is columnar (numpy-native) by default: metrics are
    bit-identical to the object-per-request representation, the replay loop
    skips ``Request`` boxing, and ``n_jobs > 1`` runs ship the trace to
    workers through shared memory instead of per-worker pickles.  Pass
    ``columnar=False`` for the legacy object trace.  ``num_clients > 1``
    assigns each request a client id (drawn after every other column, so
    the catalog and request stream are unchanged) — the substrate for the
    client-heterogeneity experiments (``docs/clients.md``).
    """
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    config = WorkloadConfig(zipf_alpha=zipf_alpha, seed=seed, num_clients=num_clients)
    if scale != 1.0:
        config = config.scaled(scale)
    return GismoWorkloadGenerator(config).generate(columnar=columnar)


def cache_sizes_gb_for(workload: Workload, fractions: Sequence[float]) -> List[float]:
    """Convert cache-size fractions into GB for the given workload."""
    total_gb = workload.catalog.total_size_gb
    return [fraction * total_gb for fraction in fractions]


def _policy_factories(names: Sequence[str]) -> Dict[str, Callable[[], object]]:
    # PolicySpec rather than lambdas: the factories must survive pickling
    # when experiments fan out over worker processes (n_jobs > 1).
    return {name: PolicySpec(name) for name in names}


def _cache_size_sweep(
    policies: Sequence[str],
    variability: BandwidthVariabilityModel,
    scale: float,
    num_runs: int,
    cache_fractions: Sequence[float],
    seed: int,
    zipf_alpha: float = 0.73,
    n_jobs: int = 1,
) -> SweepResult:
    workload = build_workload(scale=scale, zipf_alpha=zipf_alpha, seed=seed)
    config = SimulationConfig(variability=variability, seed=seed)
    sweep = sweep_cache_sizes(
        workload,
        _policy_factories(policies),
        cache_sizes_gb_for(workload, cache_fractions),
        config=config,
        num_runs=num_runs,
        n_jobs=n_jobs,
    )
    # Re-express the x-axis as a fraction of unique object size, as the
    # paper's figures do.
    total_gb = workload.catalog.total_size_gb
    sweep.parameter_name = "cache_fraction"
    sweep.parameter_values = [size / total_gb for size in sweep.parameter_values]
    return sweep


# ----------------------------------------------------------------------
# Section 3.1 — bandwidth models (Figures 2, 3, 4)
# ----------------------------------------------------------------------
def experiment_fig2_bandwidth_distribution(
    num_records: int = 20_000, seed: int = 0
) -> ExperimentResult:
    """Figure 2: the NLANR bandwidth histogram and CDF.

    Synthesises a proxy log, runs the paper's filtering/analysis pipeline,
    and reports the histogram, CDF, and the two fractions the paper quotes
    (37% of transfers below 50 KB/s, 56% below 100 KB/s).
    """
    log = SyntheticProxyLog(num_records=num_records, seed=seed)
    analysis = ProxyLogAnalyzer().analyze(log.generate())
    bandwidth_axis, cdf = analysis.cdf()
    return ExperimentResult(
        experiment_id="fig2",
        title="Internet bandwidth distribution observed in (synthetic) NLANR cache logs",
        data={
            "histogram_edges": analysis.histogram_edges,
            "histogram_counts": analysis.histogram_counts,
            "cdf_bandwidth": bandwidth_axis,
            "cdf_fraction": cdf,
            "fraction_below_50": analysis.fraction_below(50.0),
            "fraction_below_100": analysis.fraction_below(100.0),
            "sample_count": int(analysis.samples.size),
            "mean_bandwidth": float(analysis.samples.mean()),
        },
        notes=[
            "Paper: 37% of requests have bandwidth below 50 KB/s and 56% below 100 KB/s.",
            "The histogram is heterogeneous with a long tail to ~450 KB/s.",
        ],
    )


def experiment_fig3_bandwidth_variability(
    num_records: int = 20_000, seed: int = 0
) -> ExperimentResult:
    """Figure 3: sample-to-mean bandwidth ratio distribution from the logs."""
    log = SyntheticProxyLog(num_records=num_records, seed=seed)
    analysis = ProxyLogAnalyzer().analyze(log.generate())
    stats = analysis.ratio_statistics()
    counts, edges = np.histogram(analysis.ratios, bins=np.arange(0.0, 3.1, 0.1))
    return ExperimentResult(
        experiment_id="fig3",
        title="Variation of bandwidth observed in the (synthetic) NLANR cache logs",
        data={
            "ratio_histogram_edges": edges,
            "ratio_histogram_counts": counts,
            "ratios": analysis.ratios,
            **stats,
        },
        notes=[
            "Paper: in about 70% of the cases the sample bandwidth is 0.5-1.5x the mean.",
            "This is the pessimistic, high-variability model.",
        ],
    )


def experiment_fig4_measured_paths(
    interval_minutes: float = 4.0, seed: int = 0
) -> ExperimentResult:
    """Figure 4: bandwidth time series and ratio histograms of measured paths."""
    rng = np.random.default_rng(seed)
    per_path: Dict[str, Dict[str, object]] = {}
    for key in MEASURED_PATH_PROFILES:
        model = MeasuredPathVariability(key)
        times, bandwidth = model.bandwidth_time_series(
            interval_minutes=interval_minutes, rng=rng
        )
        ratios = bandwidth / bandwidth.mean()
        per_path[key] = {
            "profile": model.profile,
            "times_hours": times,
            "bandwidth_kbps": bandwidth,
            "ratio_statistics": empirical_ratio_statistics(ratios),
        }
    covs = {key: data["ratio_statistics"]["coefficient_of_variation"] for key, data in per_path.items()}
    return ExperimentResult(
        experiment_id="fig4",
        title="Bandwidth variation of measured Internet paths",
        data={"paths": per_path, "coefficients_of_variation": covs},
        notes=[
            "Paper: all measured paths show much lower variability than the NLANR logs;",
            "the INRIA path is the smoothest of the three.",
        ],
    )


# ----------------------------------------------------------------------
# Section 4.1 — Figure 5: constant bandwidth comparison of IF / PB / IB
# ----------------------------------------------------------------------
def experiment_fig5_constant_bandwidth(
    scale: float = DEFAULT_SCALE,
    num_runs: int = 3,
    cache_fractions: Sequence[float] = DEFAULT_CACHE_FRACTIONS,
    seed: int = 0,
    n_jobs: int = 1,
) -> ExperimentResult:
    """Figure 5: IF vs PB vs IB under the constant-bandwidth assumption."""
    sweep = _cache_size_sweep(
        ("IF", "PB", "IB"),
        ConstantVariability(),
        scale,
        num_runs,
        cache_fractions,
        seed,
        n_jobs=n_jobs,
    )
    return ExperimentResult(
        experiment_id="fig5",
        title="IF / PB / IB under constant bandwidth",
        data={"sweep": sweep},
        notes=[
            "Paper: IF achieves the highest traffic reduction, PB the lowest.",
            "Paper: PB achieves the lowest average service delay and the highest quality;",
            "IF is worst on both; IB lies in between.",
        ],
    )


# ----------------------------------------------------------------------
# Section 4.2 — Figure 6: effect of the Zipf parameter alpha
# ----------------------------------------------------------------------
def experiment_fig6_zipf_sweep(
    alphas: Sequence[float] = (0.6, 0.73, 0.9, 1.1),
    cache_fractions: Sequence[float] = (0.02, 0.05, 0.10, 0.17),
    scale: float = DEFAULT_SCALE,
    num_runs: int = 2,
    seed: int = 0,
    n_jobs: int = 1,
) -> ExperimentResult:
    """Figure 6: PB and IB as the Zipf skew alpha varies from 0.5 to 1.2."""
    surfaces: Dict[float, SweepResult] = {}
    for alpha in alphas:
        surfaces[float(alpha)] = _cache_size_sweep(
            ("PB", "IB"),
            ConstantVariability(),
            scale,
            num_runs,
            cache_fractions,
            seed,
            zipf_alpha=float(alpha),
            n_jobs=n_jobs,
        )
    return ExperimentResult(
        experiment_id="fig6",
        title="Effect of the Zipf-like popularity parameter alpha",
        data={"alphas": list(alphas), "sweeps_by_alpha": surfaces},
        notes=[
            "Paper: intensifying temporal locality (larger alpha) improves both algorithms;",
            "the relative ordering between PB and IB does not change.",
        ],
    )


# ----------------------------------------------------------------------
# Section 4.3 — Figures 7, 8, 9: bandwidth variability
# ----------------------------------------------------------------------
def experiment_fig7_high_variability(
    scale: float = DEFAULT_SCALE,
    num_runs: int = 3,
    cache_fractions: Sequence[float] = DEFAULT_CACHE_FRACTIONS,
    seed: int = 0,
    n_jobs: int = 1,
) -> ExperimentResult:
    """Figure 7: IF / PB / IB under the high (NLANR) bandwidth variability."""
    sweep = _cache_size_sweep(
        ("IF", "PB", "IB"),
        NLANRRatioVariability(),
        scale,
        num_runs,
        cache_fractions,
        seed,
        n_jobs=n_jobs,
    )
    return ExperimentResult(
        experiment_id="fig7",
        title="IF / PB / IB under high (cache-log) bandwidth variability",
        data={"sweep": sweep},
        notes=[
            "Paper: traffic reduction barely changes versus Figure 5, but delays increase",
            "and quality degrades for all policies; PB loses its advantage (IB is no worse).",
        ],
    )


def experiment_fig8_low_variability(
    scale: float = DEFAULT_SCALE,
    num_runs: int = 3,
    cache_fractions: Sequence[float] = DEFAULT_CACHE_FRACTIONS,
    seed: int = 0,
    n_jobs: int = 1,
) -> ExperimentResult:
    """Figure 8: IF / PB / IB under the lower measured-path variability."""
    sweep = _cache_size_sweep(
        ("IF", "PB", "IB"),
        MeasuredPathVariability("average"),
        scale,
        num_runs,
        cache_fractions,
        seed,
        n_jobs=n_jobs,
    )
    return ExperimentResult(
        experiment_id="fig8",
        title="IF / PB / IB under measured-path (low) bandwidth variability",
        data={"sweep": sweep},
        notes=[
            "Paper: with the more realistic lower variability, PB again outperforms the",
            "integral algorithms in reducing delay and improving quality.",
        ],
    )


def _estimator_surfaces(
    workload: Workload,
    policy_name: str,
    series_label: str,
    estimator_values: Sequence[float],
    cache_sizes: Sequence[float],
    total_gb: float,
    config: SimulationConfig,
    num_runs: int,
    n_jobs: int,
) -> Dict[float, SweepResult]:
    """One cache-size sweep per estimator-``e`` value (Figures 9 and 12)."""
    surfaces: Dict[float, SweepResult] = {}
    for e_value in estimator_values:
        factories = {series_label: PolicySpec(policy_name, estimator_e=float(e_value))}
        sweep = sweep_cache_sizes(
            workload, factories, cache_sizes, config, num_runs, n_jobs=n_jobs
        )
        sweep.parameter_name = "cache_fraction"
        sweep.parameter_values = [size / total_gb for size in sweep.parameter_values]
        surfaces[float(e_value)] = sweep
    return surfaces


def _remeasurement_ablation(
    data: Dict[str, object],
    notes: List[str],
    remeasurement_interval: Optional[float],
    workload: Workload,
    policy_name: str,
    series_label: str,
    estimator_values: Sequence[float],
    cache_sizes: Sequence[float],
    total_gb: float,
    config: SimulationConfig,
    num_runs: int,
    n_jobs: int,
) -> None:
    """Extend an estimator-sweep result with the re-measurement ablation.

    Two extra surfaces are produced under passive bandwidth knowledge: the
    estimator fed by request-driven observations only
    (``sweeps_by_e_passive``) and the estimator additionally refreshed by
    periodic re-measurement on the given cadence
    (``sweeps_by_e_remeasured``).  Comparing the two against the oracle
    surfaces isolates what out-of-band measurement buys the paper's
    estimator-driven policies.
    """
    if remeasurement_interval is None:
        return
    passive_config = replace(
        config, bandwidth_knowledge=BandwidthKnowledge.PASSIVE
    )
    remeasured_config = replace(
        passive_config,
        remeasurement=RemeasurementConfig(interval=float(remeasurement_interval)),
    )
    data["remeasurement_interval"] = float(remeasurement_interval)
    data["sweeps_by_e_passive"] = _estimator_surfaces(
        workload, policy_name, series_label, estimator_values,
        cache_sizes, total_gb, passive_config, num_runs, n_jobs,
    )
    data["sweeps_by_e_remeasured"] = _estimator_surfaces(
        workload, policy_name, series_label, estimator_values,
        cache_sizes, total_gb, remeasured_config, num_runs, n_jobs,
    )
    notes.append(
        "Ablation: passive estimation alone vs passive estimation refreshed by "
        f"periodic re-measurement every {remeasurement_interval:g}s per path."
    )


def experiment_fig9_estimator_sweep(
    estimator_values: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
    cache_fractions: Sequence[float] = (0.02, 0.05, 0.10, 0.17),
    scale: float = DEFAULT_SCALE,
    num_runs: int = 2,
    seed: int = 0,
    variability: Optional[BandwidthVariabilityModel] = None,
    n_jobs: int = 1,
    remeasurement_interval: Optional[float] = None,
) -> ExperimentResult:
    """Figure 9: the estimator-``e`` spectrum between IB (e→0) and PB (e=1).

    With ``remeasurement_interval`` set, the result additionally carries the
    re-measurement ablation (see :func:`_remeasurement_ablation`): the same
    spectrum under passive bandwidth knowledge with and without periodic
    re-measurement feeding the estimator between requests.
    """
    variability = variability or NLANRRatioVariability()
    workload = build_workload(scale=scale, seed=seed)
    cache_sizes = cache_sizes_gb_for(workload, cache_fractions)
    total_gb = workload.catalog.total_size_gb
    config = SimulationConfig(variability=variability, seed=seed)

    surfaces = _estimator_surfaces(
        workload, "PB", "PB(e)", estimator_values,
        cache_sizes, total_gb, config, num_runs, n_jobs,
    )
    data: Dict[str, object] = {
        "estimator_values": list(estimator_values),
        "sweeps_by_e": surfaces,
    }
    notes = [
        "Paper: smaller e (more conservative, closer to IB) always reduces traffic more,",
        "but a moderate non-zero e gives slightly lower average service delay.",
    ]
    _remeasurement_ablation(
        data, notes, remeasurement_interval, workload, "PB", "PB(e)",
        estimator_values, cache_sizes, total_gb, config, num_runs, n_jobs,
    )
    return ExperimentResult(
        experiment_id="fig9",
        title="Effect of partial caching based on conservative bandwidth estimation",
        data=data,
        notes=notes,
    )


# ----------------------------------------------------------------------
# Section 4.4 — Figures 10, 11, 12: value-based caching
# ----------------------------------------------------------------------
def experiment_fig10_value_constant(
    scale: float = DEFAULT_SCALE,
    num_runs: int = 3,
    cache_fractions: Sequence[float] = DEFAULT_CACHE_FRACTIONS,
    seed: int = 0,
    n_jobs: int = 1,
) -> ExperimentResult:
    """Figure 10: IF / PB-V / IB-V under constant bandwidth (value objective)."""
    sweep = _cache_size_sweep(
        ("IF", "PB-V", "IB-V"),
        ConstantVariability(),
        scale,
        num_runs,
        cache_fractions,
        seed,
        n_jobs=n_jobs,
    )
    return ExperimentResult(
        experiment_id="fig10",
        title="Value-based caching under constant bandwidth",
        data={"sweep": sweep},
        notes=[
            "Paper: IF achieves the highest traffic reduction but the lowest added value;",
            "PB-V the highest added value; IB-V strikes a balance.",
        ],
    )


def experiment_fig11_value_variable(
    scale: float = DEFAULT_SCALE,
    num_runs: int = 3,
    cache_fractions: Sequence[float] = DEFAULT_CACHE_FRACTIONS,
    seed: int = 0,
    n_jobs: int = 1,
) -> ExperimentResult:
    """Figure 11: value-based caching under measured-path variability."""
    sweep = _cache_size_sweep(
        ("IF", "PB-V", "IB-V"),
        MeasuredPathVariability("average"),
        scale,
        num_runs,
        cache_fractions,
        seed,
        n_jobs=n_jobs,
    )
    return ExperimentResult(
        experiment_id="fig11",
        title="Value-based caching under measured bandwidth variability",
        data={"sweep": sweep},
        notes=[
            "Paper: IB-V yields the best compromise between traffic reduction and added",
            "value once bandwidth varies.",
        ],
    )


def experiment_fig12_value_estimator(
    estimator_values: Sequence[float] = (0.2, 0.4, 0.5, 0.6, 0.8, 1.0),
    cache_fractions: Sequence[float] = (0.02, 0.05, 0.10, 0.17),
    scale: float = DEFAULT_SCALE,
    num_runs: int = 2,
    seed: int = 0,
    n_jobs: int = 1,
    remeasurement_interval: Optional[float] = None,
) -> ExperimentResult:
    """Figure 12: the estimator-``e`` spectrum for value-based partial caching.

    With ``remeasurement_interval`` set, the result additionally carries the
    re-measurement ablation (see :func:`_remeasurement_ablation`) for the
    value objective.
    """
    variability = MeasuredPathVariability("average")
    workload = build_workload(scale=scale, seed=seed)
    cache_sizes = cache_sizes_gb_for(workload, cache_fractions)
    total_gb = workload.catalog.total_size_gb
    config = SimulationConfig(variability=variability, seed=seed)

    surfaces = _estimator_surfaces(
        workload, "PB-V", "PB-V(e)", estimator_values,
        cache_sizes, total_gb, config, num_runs, n_jobs,
    )
    # Also run the IB-V reference the paper compares against ("outperforms
    # IB-V by as much as 30%").
    reference = sweep_cache_sizes(
        workload, _policy_factories(("IB-V",)), cache_sizes, config, num_runs, n_jobs=n_jobs
    )
    reference.parameter_name = "cache_fraction"
    reference.parameter_values = [size / total_gb for size in reference.parameter_values]
    data: Dict[str, object] = {
        "estimator_values": list(estimator_values),
        "sweeps_by_e": surfaces,
        "ibv_reference": reference,
    }
    notes = [
        "Paper: a moderate e (around 0.5) yields the highest total added value,",
        "outperforming IB-V by as much as 30%.",
    ]
    _remeasurement_ablation(
        data, notes, remeasurement_interval, workload, "PB-V", "PB-V(e)",
        estimator_values, cache_sizes, total_gb, config, num_runs, n_jobs,
    )
    return ExperimentResult(
        experiment_id="fig12",
        title="Effect of conservative bandwidth estimation on value-based caching",
        data=data,
        notes=notes,
    )


# ----------------------------------------------------------------------
# Extension — reactive re-keying (passive-driven shifts, hysteresis)
# ----------------------------------------------------------------------
def experiment_reactive_rekeying(
    policies: Sequence[str] = ("PB", "IB"),
    cache_fraction: float = 0.05,
    scale: float = DEFAULT_SCALE,
    num_runs: int = 2,
    seed: int = 0,
    n_jobs: int = 1,
    threshold: float = 0.15,
    hysteresis: float = 0.05,
    remeasurement_interval: float = 150.0,
    rekey_cap: Optional[int] = None,
) -> ExperimentResult:
    """Reactive ablation: what moving heap keys on belief shifts buys.

    Under passive bandwidth knowledge a policy's heap keys go stale the
    moment a path's estimate moves; the reactive hook (``docs/events.md``)
    closes that window.  This experiment replays the same workload and
    topology under four knowledge/reaction settings, per policy:

    * ``"passive"`` — request-driven estimation only (the baseline whose
      staleness the other settings attack);
    * ``"remeasured"`` — plus periodic out-of-band probes
      (``remeasurement_interval`` seconds per path);
    * ``"reactive-probe"`` — probes *and* probe-driven re-keying at
      ``threshold`` (PR 4's hook);
    * ``"reactive-passive"`` — additionally lets every request's passive
      observation trigger re-keys, with a ``hysteresis`` re-arm band (and
      an optional per-server ``rekey_cap``) bounding churn.

    Besides the averaged figure metrics the result records the reactive
    counters (shifts / re-keys / suppressed) summed over runs, so the
    ablation reports both what the hook cost and what it did.  The grid is
    small (settings x policies x runs at one cache size) and collects
    per-run reactive counters, so it executes serially; ``n_jobs`` is
    accepted for CLI uniformity but does not fan out.
    """
    workload = build_workload(scale=scale, seed=seed)
    cache_gb = cache_fraction * workload.catalog.total_size_gb
    variability = NLANRRatioVariability()
    base = SimulationConfig(
        cache_size_gb=cache_gb,
        variability=variability,
        bandwidth_knowledge=BandwidthKnowledge.PASSIVE,
        seed=seed,
    )
    remeasurement = RemeasurementConfig(interval=float(remeasurement_interval))
    settings: Dict[str, SimulationConfig] = {
        "passive": base,
        "remeasured": replace(base, remeasurement=remeasurement),
        "reactive-probe": replace(
            base, remeasurement=remeasurement, reactive_threshold=threshold
        ),
        "reactive-passive": replace(
            base,
            remeasurement=remeasurement,
            reactive_threshold=threshold,
            reactive_passive=True,
            reactive_hysteresis=hysteresis,
            reactive_rekey_cap=rekey_cap,
        ),
    }
    comparisons: Dict[str, PolicyComparison] = {}
    counters: Dict[str, Dict[str, Dict[str, int]]] = {}
    for label, config in settings.items():
        comparison = PolicyComparison()
        counters[label] = {}
        for policy_name in policies:
            per_run = []
            shifts = rekeys = suppressed = 0
            for run_index in range(num_runs):
                run_config = config.with_seed(config.seed + run_index)
                simulator = ProxyCacheSimulator(workload, run_config)
                result = simulator.run(make_policy(policy_name))
                per_run.append(result.metrics)
                shifts += result.reactive_shifts
                rekeys += result.reactive_rekeys
                suppressed += result.reactive_suppressed
            comparison.metrics_by_policy[policy_name] = SimulationMetrics.average(
                per_run
            )
            counters[label][policy_name] = {
                "shifts": shifts,
                "rekeys": rekeys,
                "suppressed": suppressed,
            }
        comparisons[label] = comparison
    return ExperimentResult(
        experiment_id="reactive",
        title="Reactive re-keying: passive vs remeasured vs probe-driven vs passive-driven",
        data={
            "settings": list(settings),
            "cache_fraction": float(cache_fraction),
            "threshold": float(threshold),
            "hysteresis": float(hysteresis),
            "rekey_cap": rekey_cap,
            "remeasurement_interval": float(remeasurement_interval),
            "comparisons_by_setting": comparisons,
            "reactive_counters": counters,
        },
        notes=[
            "Passive estimation alone leaves heap keys stale between requests; probes",
            "refresh the estimate and reactive re-keying moves the keys the moment the",
            "belief shifts.  Passive-driven re-keying reacts to the paper's free",
            "per-request measurements too, with hysteresis bounding the churn an",
            "oscillating path can cause.",
        ],
    )


# ----------------------------------------------------------------------
# Extension — heterogeneous client clouds (per-client last-mile paths)
# ----------------------------------------------------------------------
def experiment_client_heterogeneity(
    policies: Sequence[str] = ("IF", "PB", "IB"),
    cache_fractions: Sequence[float] = (0.02, 0.05, 0.10),
    scale: float = DEFAULT_SCALE,
    num_runs: int = 2,
    seed: int = 0,
    n_jobs: int = 1,
    client_groups: int = 16,
    num_clients: int = 64,
    homogeneous_bandwidth: float = 40.0,
) -> ExperimentResult:
    """Heterogeneity ablation: how the client-side last mile shifts the picture.

    The paper's core claim is that bandwidth-aware caching beats
    size/frequency heuristics precisely when paths are *unequal* — and its
    model places all the inequality on the cache-to-server side, assuming
    an abundant client last mile.  This experiment ablates that assumption
    on a multi-client workload (``num_clients`` distinct clients hashed
    into ``client_groups`` last-mile groups): the same cache-size sweep is
    run under three client-cloud settings,

    * ``"unconstrained"`` — the paper's model, no modeled last mile;
    * ``"homogeneous"`` — every group capped at ``homogeneous_bandwidth``
      KB/s (a uniform access tier; the default sits just below the 48 KB/s
      stream bit-rate so the cap genuinely binds — a last mile at or above
      the bit-rate is indistinguishable from abundant for CBR streams);
    * ``"heterogeneous"`` — one NLANR-distributed base bandwidth per group
      (dial-up through broadband coexisting behind one proxy).

    All three replay the identical request stream and origin topology (the
    cloud draws from a dedicated random stream), so differences are
    attributable to the last-mile model alone.  See ``docs/clients.md``
    for the model and a runnable walkthrough.
    """
    workload = build_workload(scale=scale, seed=seed, num_clients=num_clients)
    cache_sizes = cache_sizes_gb_for(workload, cache_fractions)
    total_gb = workload.catalog.total_size_gb
    variability = NLANRRatioVariability()
    settings: Dict[str, Optional[ClientCloudConfig]] = {
        "unconstrained": None,
        "homogeneous": ClientCloudConfig(
            groups=client_groups, bandwidth=float(homogeneous_bandwidth)
        ),
        "heterogeneous": ClientCloudConfig(
            groups=client_groups, distribution=NLANRBandwidthDistribution()
        ),
    }
    sweeps: Dict[str, SweepResult] = {}
    for label, clouds in settings.items():
        config = SimulationConfig(
            variability=variability, client_clouds=clouds, seed=seed
        )
        sweep = sweep_cache_sizes(
            workload,
            _policy_factories(tuple(policies)),
            cache_sizes,
            config,
            num_runs,
            n_jobs=n_jobs,
        )
        sweep.parameter_name = "cache_fraction"
        sweep.parameter_values = [size / total_gb for size in sweep.parameter_values]
        sweeps[label] = sweep
    return ExperimentResult(
        experiment_id="hetero",
        title="Per-client last-mile bandwidth: unconstrained vs homogeneous vs heterogeneous clouds",
        data={
            "settings": list(settings),
            "client_groups": client_groups,
            "num_clients": num_clients,
            "homogeneous_bandwidth": float(homogeneous_bandwidth),
            "sweeps_by_setting": sweeps,
        },
        notes=[
            "The unconstrained setting reproduces the paper's abundant-last-mile model",
            "bit-for-bit.  A binding last mile caps what any caching policy can deliver:",
            "delays rise and quality falls for every policy, and the spread between",
            "bandwidth-aware and frequency-only policies narrows as the bottleneck",
            "moves to the client side, where no cache placement can hide it.",
        ],
    )


# ----------------------------------------------------------------------
# Extension — fault injection and graceful degradation
# ----------------------------------------------------------------------
def experiment_fault_tolerance(
    policies: Sequence[str] = ("PB",),
    cache_fraction: float = 0.05,
    scale: float = DEFAULT_SCALE,
    num_runs: int = 2,
    seed: int = 0,
    n_jobs: int = 1,
    outage_servers: int = 2,
    outage_start_fraction: float = 0.35,
    outage_duration_fraction: float = 0.15,
    flap_count: int = 8,
    severity: float = 0.1,
    threshold: float = 0.15,
    hysteresis: float = 0.05,
) -> ExperimentResult:
    """Fault ablation: what outages and flaps cost, and what reacting buys.

    Replays the same workload and topology under three fault settings
    (:mod:`repro.sim.faults`):

    * ``"no-faults"`` — the healthy baseline every other setting is
      measured against;
    * ``"outages"`` — a scripted origin outage covering
      ``outage_duration_fraction`` of the trace span, starting at
      ``outage_start_fraction``, on the ``outage_servers`` busiest origin
      servers simultaneously (the worst credible correlated failure);
    * ``"flaps"`` — ``flap_count`` stochastic bandwidth flaps (each
      collapsing one path to ``severity`` of its base) scattered over the
      run from the fault stream's own seed.

    crossed with two reaction settings per policy: ``"static"`` (passive
    estimation only — heap keys stay wherever the last request left them)
    and ``"reactive-passive"`` (passive-driven re-keying at ``threshold``
    with a ``hysteresis`` re-arm band, ``docs/events.md``), so the delta
    attributable to reacting is read directly off the grid.

    Besides the averaged headline metrics the result reports the fault
    counters (availability, failed / stale-served / retried requests,
    mean time-to-recovery of the collapsed estimates) and, for the outage
    setting, a **post-outage byte-hit ratio**: the same run re-measured
    with the warm-up window extended past the outage's end (via
    ``warmup_fraction``), isolating how quickly each reaction setting
    restores cache effectiveness once the origin returns.  The grid is
    small and collects per-run fault reports, so it executes serially;
    ``n_jobs`` is accepted for CLI uniformity but does not fan out.
    """
    workload = build_workload(scale=scale, seed=seed)
    trace = workload.trace
    span = trace.end_time - trace.start_time
    outage_start = trace.start_time + outage_start_fraction * span
    outage_end = outage_start + outage_duration_fraction * span
    counts: Dict[int, int] = {}
    for object_id, request_count in trace.request_counts().items():
        server_id = workload.catalog.get(int(object_id)).server_id
        counts[server_id] = counts.get(server_id, 0) + int(request_count)
    busiest = sorted(counts, key=lambda s: counts[s], reverse=True)[:outage_servers]
    episodes = tuple(
        FaultEpisode("origin-outage", outage_start, outage_end, server_id=server_id)
        for server_id in sorted(busiest)
    )
    fault_settings: Dict[str, Optional[FaultConfig]] = {
        "no-faults": None,
        "outages": FaultConfig(episodes=episodes),
        "flaps": FaultConfig(
            random_bandwidth_flaps=flap_count,
            severity=severity,
            mean_duration_s=max(outage_duration_fraction * span / 2.0, 1.0),
            seed=seed,
        ),
    }
    reaction_settings: Dict[str, Dict[str, object]] = {
        "static": {},
        "reactive-passive": {
            "reactive_threshold": threshold,
            "reactive_passive": True,
            "reactive_hysteresis": hysteresis,
        },
    }
    base = SimulationConfig(
        cache_size_gb=cache_fraction * workload.catalog.total_size_gb,
        variability=NLANRRatioVariability(),
        bandwidth_knowledge=BandwidthKnowledge.PASSIVE,
        seed=seed,
    )
    # Measurement window for the recovery metric: warm-up extended to the
    # first request after the outage ends, so byte-hit is measured purely
    # on the post-outage tail.
    times = np.asarray([request.time for request in trace], dtype=np.float64)
    post_outage_index = int(np.searchsorted(times, outage_end, side="right"))
    recovery_warmup = min(post_outage_index / max(len(trace), 1), 0.95)
    comparisons: Dict[str, Dict[str, PolicyComparison]] = {}
    fault_counters: Dict[str, Dict[str, Dict[str, Dict[str, float]]]] = {}
    recovery_byte_hit: Dict[str, Dict[str, float]] = {}
    # One windowed timeline per reaction setting, captured for free off
    # the first outages run of the lead policy (the timeline does not
    # perturb the simulated results, so no extra run is needed): it is
    # the post-outage recovery curve docs/observability.md plots.
    recovery_window_s = max(span / 40.0, 1.0)
    recovery_timelines: Dict[str, object] = {}
    for fault_label, faults in fault_settings.items():
        comparisons[fault_label] = {}
        fault_counters[fault_label] = {}
        for reaction_label, overrides in reaction_settings.items():
            config = replace(base, faults=faults, **overrides)
            comparison = PolicyComparison()
            counters_by_policy: Dict[str, Dict[str, float]] = {}
            for policy_name in policies:
                per_run = []
                totals = {
                    "degraded_requests": 0.0,
                    "retried_requests": 0.0,
                    "failed_fetches": 0.0,
                    "stale_serves": 0.0,
                    "failed_requests": 0.0,
                    "recovered_outages": 0.0,
                    "shifts": 0.0,
                    "rekeys": 0.0,
                }
                mttr_values: List[float] = []
                for run_index in range(num_runs):
                    run_config = config.with_seed(config.seed + run_index)
                    if (fault_label == "outages" and run_index == 0
                            and policy_name == policies[0]):
                        run_config = run_config.with_observability(
                            ObservabilityConfig(window_s=recovery_window_s)
                        )
                    result = ProxyCacheSimulator(workload, run_config).run(
                        make_policy(policy_name)
                    )
                    if result.timeline is not None:
                        recovery_timelines[reaction_label] = result.timeline
                    per_run.append(result.metrics)
                    totals["shifts"] += result.reactive_shifts
                    totals["rekeys"] += result.reactive_rekeys
                    report = result.fault_report
                    if report is not None:
                        totals["degraded_requests"] += report.degraded_requests
                        totals["retried_requests"] += report.retried_requests
                        totals["failed_fetches"] += report.failed_fetches
                        totals["stale_serves"] += report.stale_serves
                        totals["failed_requests"] += report.failed_requests
                        totals["recovered_outages"] += len(report.recoveries)
                        if report.mean_time_to_recovery_s is not None:
                            mttr_values.append(report.mean_time_to_recovery_s)
                totals["mean_time_to_recovery_s"] = (
                    float(np.mean(mttr_values)) if mttr_values else float("nan")
                )
                comparison.metrics_by_policy[policy_name] = (
                    SimulationMetrics.average(per_run)
                )
                counters_by_policy[policy_name] = totals
            comparisons[fault_label][reaction_label] = comparison
            fault_counters[fault_label][reaction_label] = counters_by_policy
            if fault_label == "outages":
                recovery_config = replace(config, warmup_fraction=recovery_warmup)
                byte_hits = []
                for run_index in range(num_runs):
                    run_config = recovery_config.with_seed(
                        recovery_config.seed + run_index
                    )
                    result = ProxyCacheSimulator(workload, run_config).run(
                        make_policy(policies[0])
                    )
                    byte_hits.append(result.metrics.byte_hit_ratio)
                recovery_byte_hit.setdefault(reaction_label, {})[
                    policies[0]
                ] = float(np.mean(byte_hits))
    return ExperimentResult(
        experiment_id="faults",
        title="Fault injection: origin outages and bandwidth flaps, static vs reactive",
        data={
            "fault_settings": list(fault_settings),
            "reaction_settings": list(reaction_settings),
            "cache_fraction": float(cache_fraction),
            "outage_servers": [int(server_id) for server_id in sorted(busiest)],
            "outage_window": (float(outage_start), float(outage_end)),
            "flap_count": int(flap_count),
            "severity": float(severity),
            "comparisons": comparisons,
            "fault_counters": fault_counters,
            "post_outage_byte_hit": recovery_byte_hit,
            "post_outage_warmup_fraction": float(recovery_warmup),
            "recovery_timelines": recovery_timelines,
            "recovery_window_s": float(recovery_window_s),
        },
        notes=[
            "An origin outage shows up as availability < 1 and stale serves; the",
            "passive estimator sees it as a bandwidth collapse, so reactive re-keying",
            "demotes the dead server's objects immediately and re-promotes them as the",
            "estimate recovers — the post-outage byte-hit ratio recovers faster than",
            "under the static baseline, at the price of the re-key churn reported in",
            "the counters.  Flaps degrade throughput without failing fetches unless",
            "severity crosses the fetch-timeout threshold.",
        ],
    )


# ----------------------------------------------------------------------
# Extension — streaming delivery and partial-object caching
# ----------------------------------------------------------------------
def experiment_streaming_delivery(
    policies: Sequence[str] = ("PB",),
    cache_fraction: float = 0.05,
    scale: float = DEFAULT_SCALE,
    num_runs: int = 2,
    seed: int = 0,
    n_jobs: int = 1,
    client_groups: int = 16,
    num_clients: int = 64,
    streaming_fraction: float = 1.0,
    vbr_fraction: float = 0.25,
    prefetch_segments: int = 1,
    abandon_after_s: float = 60.0,
    threshold: float = 0.15,
    hysteresis: float = 0.05,
) -> ExperimentResult:
    """Streaming ablation: what partial-object (prefix) caching buys for QoE.

    Replays the same streaming workload — every request a segment-wise
    media session (:mod:`repro.sim.streaming`) over a heterogeneous
    client cloud (dial-up through broadband, one NLANR-distributed base
    bandwidth per last-mile group) — across a 2x2 grid:

    * caching mode: ``"prefix"`` (segment-quantised partial admission,
      tail-trimming under pressure) vs ``"whole-object"`` (a stream is
      cached in full or not at all — the classic web-caching stance the
      paper argues against);
    * reaction: ``"static"`` (passive estimation only) vs
      ``"reactive-passive"`` (passive-driven heap re-keying at
      ``threshold`` with a ``hysteresis`` re-arm band).

    All four cells replay the identical request stream, origin topology,
    and client cloud (the streaming engine and the cloud each draw from
    dedicated tagged random streams), so QoE differences — mean startup
    delay, rebuffer ratio, delivered quality, abandonment rate — are
    attributable to the caching/reaction settings alone.  The expected
    headline: under a constrained last mile, prefix caching beats
    whole-object caching on startup delay and rebuffering, because a
    cached prefix masks exactly the startup portion of the fetch that a
    slow last mile cannot (Section 2 of the paper; ``docs/streaming.md``).
    """
    workload = build_workload(scale=scale, seed=seed, num_clients=num_clients)
    caching_settings: Dict[str, StreamingConfig] = {
        "prefix": StreamingConfig(
            fraction=streaming_fraction,
            prefix_caching=True,
            prefetch_segments=prefetch_segments,
            abandon_after_s=abandon_after_s,
            vbr_fraction=vbr_fraction,
            seed=seed,
        ),
        "whole-object": StreamingConfig(
            fraction=streaming_fraction,
            prefix_caching=False,
            prefetch_segments=prefetch_segments,
            abandon_after_s=abandon_after_s,
            vbr_fraction=vbr_fraction,
            seed=seed,
        ),
    }
    reaction_settings: Dict[str, Dict[str, object]] = {
        "static": {},
        "reactive-passive": {
            "reactive_threshold": threshold,
            "reactive_passive": True,
            "reactive_hysteresis": hysteresis,
        },
    }
    base = SimulationConfig(
        cache_size_gb=cache_fraction * workload.catalog.total_size_gb,
        variability=NLANRRatioVariability(),
        bandwidth_knowledge=BandwidthKnowledge.PASSIVE,
        client_clouds=ClientCloudConfig(
            groups=client_groups, distribution=NLANRBandwidthDistribution()
        ),
        seed=seed,
    )
    comparisons: Dict[str, Dict[str, PolicyComparison]] = {}
    qoe: Dict[str, Dict[str, Dict[str, Dict[str, float]]]] = {}
    for caching_label, streaming in caching_settings.items():
        comparisons[caching_label] = {}
        qoe[caching_label] = {}
        for reaction_label, overrides in reaction_settings.items():
            config = replace(base, streaming=streaming, **overrides)
            comparison = PolicyComparison()
            qoe_by_policy: Dict[str, Dict[str, float]] = {}
            for policy_name in policies:
                per_run = []
                reports = []
                for run_index in range(num_runs):
                    run_config = config.with_seed(config.seed + run_index)
                    result = ProxyCacheSimulator(workload, run_config).run(
                        make_policy(policy_name)
                    )
                    per_run.append(result.metrics)
                    reports.append(result.streaming_report)
                comparison.metrics_by_policy[policy_name] = (
                    SimulationMetrics.average(per_run)
                )
                qoe_by_policy[policy_name] = {
                    "mean_startup_delay_s": float(
                        np.mean([r.mean_startup_delay_s for r in reports])
                    ),
                    "rebuffer_ratio": float(
                        np.mean([r.rebuffer_ratio for r in reports])
                    ),
                    "mean_quality": float(
                        np.mean([r.mean_quality for r in reports])
                    ),
                    "abandonment_rate": float(
                        np.mean([r.abandonment_rate for r in reports])
                    ),
                    "waited_sessions": float(
                        np.mean([r.waited_sessions for r in reports])
                    ),
                    "degraded_sessions": float(
                        np.mean([r.degraded_sessions for r in reports])
                    ),
                    "abandoned_sessions": float(
                        np.mean([r.abandoned_sessions for r in reports])
                    ),
                    "prefetch_extensions": float(
                        np.mean([r.prefetch_extensions for r in reports])
                    ),
                    "pressure_trimmed_kb": float(
                        np.mean([r.pressure_trimmed_kb for r in reports])
                    ),
                }
            comparisons[caching_label][reaction_label] = comparison
            qoe[caching_label][reaction_label] = qoe_by_policy
    return ExperimentResult(
        experiment_id="streaming",
        title="Streaming delivery: prefix vs whole-object caching, static vs reactive",
        data={
            "caching_settings": list(caching_settings),
            "reaction_settings": list(reaction_settings),
            "cache_fraction": float(cache_fraction),
            "client_groups": int(client_groups),
            "num_clients": int(num_clients),
            "streaming_fraction": float(streaming_fraction),
            "vbr_fraction": float(vbr_fraction),
            "comparisons": comparisons,
            "qoe": qoe,
        },
        notes=[
            "Whole-object admission wastes capacity on stream tails no session",
            "reaches at full quality, so fewer streams keep any cached prefix;",
            "prefix caching holds exactly the startup bytes that mask the slow",
            "last mile, cutting mean startup delay and the rebuffer ratio while",
            "degrading gracefully (tail trims, not whole-object evictions) under",
            "cache pressure.  Reactive re-keying composes with either mode.",
        ],
    )


# ----------------------------------------------------------------------
# Extension — multi-cache hierarchies (edge pops, parents, siblings)
# ----------------------------------------------------------------------
def experiment_hierarchy(
    policies: Sequence[str] = ("PB", "LRU"),
    cache_fraction: float = 0.05,
    scale: float = DEFAULT_SCALE,
    num_runs: int = 2,
    seed: int = 0,
    client_groups: int = 16,
    num_clients: int = 64,
    num_pops: int = 4,
    parent_fraction: float = 4.0,
    edge_uplink_kbps: float = 50.0,
    parent_uplink_kbps: float = 40.0,
    sibling_bandwidth_kbps: float = 60.0,
    n_jobs: int = 1,
) -> ExperimentResult:
    """Hierarchy ablation: what a parent tier and sibling lookups buy.

    Replays the same workload — heterogeneous NLANR client clouds in
    front, ``num_pops`` edge pops pinned by client affinity — across
    three fleet shapes:

    * ``"1-tier"`` — edge pops only; every edge miss travels to the
      origin over the edge uplink (the per-pop version of the paper's
      single proxy);
    * ``"2-tier"`` — each pop escalates misses to its own parent cache
      (``parent_fraction`` times the edge capacity) before the origin;
    * ``"2-tier+siblings"`` — additionally, an ICP-style whole-object
      lookup at the other pops' edge caches runs before parent
      escalation.

    Every cell replays the identical request stream, origin topology,
    and client cloud, so metric movement is attributable to the fleet
    shape alone.  The expected headline: the parent tier absorbs a large
    share of edge-miss bytes (``origin_byte_ratio`` drops from 1-tier to
    2-tier), and sibling lookups help whole-object policies (LRU) far
    more than prefix cachers (PB) — a sibling hit requires the *entire*
    object at a peer edge, which prefix admission rarely holds.

    Each cell needs its per-run hierarchy reports, so the grid executes
    serially; ``n_jobs`` is accepted for CLI uniformity but does not fan
    out.
    """
    if num_pops < 2:
        raise ConfigurationError(
            f"the hierarchy ablation needs num_pops >= 2, got {num_pops}"
        )
    workload = build_workload(scale=scale, seed=seed, num_clients=num_clients)
    total_kb = workload.catalog.total_size_gb * 1_000_000.0
    edge_kb = cache_fraction * total_kb / num_pops
    edge = CacheTier(
        name="edge", cache_kb=edge_kb, uplink_bandwidth=edge_uplink_kbps
    )
    parent = CacheTier(
        name="parent",
        cache_kb=parent_fraction * edge_kb,
        uplink_bandwidth=parent_uplink_kbps,
    )
    hierarchy_settings: Dict[str, HierarchyConfig] = {
        "1-tier": HierarchyConfig(tiers=(edge,), num_pops=num_pops),
        "2-tier": HierarchyConfig(tiers=(edge, parent), num_pops=num_pops),
        "2-tier+siblings": HierarchyConfig(
            tiers=(edge, parent),
            num_pops=num_pops,
            sibling_lookup=True,
            sibling_bandwidth=sibling_bandwidth_kbps,
        ),
    }
    base = SimulationConfig(
        cache_size_gb=cache_fraction * workload.catalog.total_size_gb,
        variability=NLANRRatioVariability(),
        bandwidth_knowledge=BandwidthKnowledge.PASSIVE,
        client_clouds=ClientCloudConfig(
            groups=client_groups, distribution=NLANRBandwidthDistribution()
        ),
        seed=seed,
    )
    comparisons: Dict[str, PolicyComparison] = {}
    reports: Dict[str, Dict[str, Dict[str, float]]] = {}
    for setting_label, hierarchy in hierarchy_settings.items():
        config = base.with_hierarchy(hierarchy)
        comparison = PolicyComparison()
        reports_by_policy: Dict[str, Dict[str, float]] = {}
        for policy_name in policies:
            per_run = []
            run_reports = []
            for run_index in range(num_runs):
                run_config = config.with_seed(config.seed + run_index)
                result = ProxyCacheSimulator(workload, run_config).run(
                    make_policy(policy_name)
                )
                per_run.append(result.metrics)
                run_reports.append(result.hierarchy_report)
            comparison.metrics_by_policy[policy_name] = (
                SimulationMetrics.average(per_run)
            )
            keys = run_reports[0].as_dict().keys()
            reports_by_policy[policy_name] = {
                key: float(np.mean([r.as_dict()[key] for r in run_reports]))
                for key in keys
            }
        comparisons[setting_label] = comparison
        reports[setting_label] = reports_by_policy
    return ExperimentResult(
        experiment_id="hierarchy",
        title="Cache hierarchies: 1-tier vs 2-tier vs 2-tier with sibling lookups",
        data={
            "hierarchy_settings": list(hierarchy_settings),
            "cache_fraction": float(cache_fraction),
            "num_pops": int(num_pops),
            "parent_fraction": float(parent_fraction),
            "client_groups": int(client_groups),
            "num_clients": int(num_clients),
            "comparisons": comparisons,
            "hierarchy_reports": reports,
        },
        notes=[
            "A parent tier absorbs edge-miss bytes that would otherwise cross the",
            "backbone: origin_byte_ratio drops from 1-tier to 2-tier while the",
            "edge tier's own hit ratio is unchanged (the parent only sees edge",
            "misses).  Sibling lookups are whole-object by ICP semantics, so they",
            "benefit LRU-style whole-object admission far more than the paper's",
            "prefix cachers, whose partial objects cannot answer a sibling probe.",
        ],
    )


# ----------------------------------------------------------------------
# Table 1 — workload characteristics
# ----------------------------------------------------------------------
def experiment_table1_workload(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Table 1: characteristics of the synthetic workload."""
    workload = build_workload(scale=scale, seed=seed)
    summary = workload.describe()
    return ExperimentResult(
        experiment_id="tab1",
        title="Characteristics of the synthetic workload",
        data={"summary": summary},
        notes=[
            "Paper: 5,000 objects, 100,000 requests, Zipf-like popularity (alpha=0.73),",
            "lognormal durations (~55 min mean), 48 KB/s bit-rate, ~790 GB total.",
        ],
    )
