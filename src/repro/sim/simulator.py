"""The trace-driven proxy-cache simulator.

The simulator replays a request trace against one proxy cache managed by a
policy, following the paper's methodology (Sections 3 and 4.1):

* each origin server is assigned a base path bandwidth drawn from the
  configured distribution (NLANR-derived by default),
* each request experiences the base bandwidth modulated by the configured
  variability model,
* the first ``warmup_fraction`` of the trace only warms the cache; metrics
  are collected over the remainder,
* for every request the simulator computes the joint cache + server delivery
  outcome *before* letting the policy react, so metrics reflect the cache
  state a real client would have found.

Requests are dispatched through the discrete-event engine so extensions that
need additional event types (periodic re-measurement, delayed completion)
compose naturally with the request stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.store import CacheStore
from repro.network.measurement import PassiveEstimator
from repro.network.topology import DeliveryTopology
from repro.sim.config import BandwidthKnowledge, SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import MetricsCollector, SimulationMetrics
from repro.streaming.session import DeliverySession
from repro.workload.gismo import Workload


@dataclass
class SimulationResult:
    """Everything a single simulation run produces."""

    metrics: SimulationMetrics
    policy_name: str
    config: SimulationConfig
    final_cache_occupancy: float
    final_cached_objects: int
    warmup_requests: int

    def as_dict(self) -> Dict[str, float]:
        """Flatten result and headline metrics into one dictionary."""
        data = self.metrics.as_dict()
        data.update(
            {
                "final_cache_occupancy": self.final_cache_occupancy,
                "final_cached_objects": float(self.final_cached_objects),
                "warmup_requests": float(self.warmup_requests),
            }
        )
        return data


class ProxyCacheSimulator:
    """Replay a workload against one policy-managed proxy cache."""

    def __init__(self, workload: Workload, config: Optional[SimulationConfig] = None):
        self.workload = workload
        self.config = config or SimulationConfig()

    def build_topology(self, rng: np.random.Generator) -> DeliveryTopology:
        """Draw per-server base bandwidths and assemble the topology."""
        topology = DeliveryTopology.build(
            catalog=self.workload.catalog,
            cache_capacity_kb=self.config.cache_size_kb,
            bandwidth_distribution=self.config.bandwidth_distribution,
            variability=self.config.variability,
            rng=rng,
        )
        floor = self.config.min_path_bandwidth
        if floor > 0:
            for path in topology.paths:
                if path.base_bandwidth < floor:
                    path.base_bandwidth = floor
        return topology

    def run(self, policy, topology: Optional[DeliveryTopology] = None) -> SimulationResult:
        """Run the simulation for one policy.

        Parameters
        ----------
        policy:
            Any object with the :class:`~repro.core.policies.base.CachePolicy`
            interface (``name``, ``on_request``) — including
            :class:`~repro.core.policies.optimal.StaticAllocationPolicy`.
        topology:
            Optionally reuse a pre-built topology so several policies can be
            compared on *identical* bandwidth assignments; when omitted a new
            topology is drawn from the config's seed.
        """
        rng = np.random.default_rng(self.config.seed)
        if topology is None:
            topology = self.build_topology(rng)

        store = CacheStore(self.config.cache_size_kb)
        if hasattr(policy, "install"):
            policy.install(store, self.workload.catalog)

        collector = MetricsCollector()
        estimator: Optional[PassiveEstimator] = None
        if self.config.bandwidth_knowledge is BandwidthKnowledge.PASSIVE:
            estimator = PassiveEstimator(smoothing=self.config.passive_smoothing)

        trace = self.workload.trace
        total_requests = len(trace)
        warmup_cutoff = int(self.config.warmup_fraction * total_requests)

        engine = SimulationEngine()
        catalog = self.workload.catalog

        def handle_request(engine: SimulationEngine, payload) -> None:
            index, request = payload
            if index == warmup_cutoff:
                collector.measuring = True
            obj = catalog.get(request.object_id)
            path = topology.path_for(obj)
            observed_bandwidth = path.observed_bandwidth(rng)
            if estimator is not None:
                believed_bandwidth = estimator.estimate(obj.server_id)
            else:
                believed_bandwidth = path.base_bandwidth

            cached_before = store.cached_bytes(obj.object_id)
            outcome = DeliverySession(obj, cached_before, observed_bandwidth).outcome()
            collector.record(outcome)

            policy.on_request(obj, believed_bandwidth, engine.now, store)
            if estimator is not None:
                estimator.observe(obj.server_id, observed_bandwidth)
            if self.config.verify_store and not store.verify_consistency():
                raise AssertionError(
                    "cache store accounting became inconsistent "
                    f"after request {index} (object {obj.object_id})"
                )

        if warmup_cutoff == 0:
            collector.measuring = True
        for index, request in enumerate(trace):
            engine.schedule(request.time, handle_request, (index, request))
        engine.run()

        return SimulationResult(
            metrics=collector.finalize(),
            policy_name=getattr(policy, "name", type(policy).__name__),
            config=self.config,
            final_cache_occupancy=store.occupancy,
            final_cached_objects=len(store),
            warmup_requests=collector.warmup_requests,
        )
