"""Shared-memory transport for columnar traces.

``repro.analysis.parallel`` fans simulation jobs out over a process pool.
Without help, every worker receives its own pickled copy of the workload —
on a million-request trace that is tens of megabytes serialized, copied,
and deserialized *per worker*.  This module publishes a
:class:`~repro.trace.columnar.ColumnarTrace` **once** into a
:class:`multiprocessing.shared_memory.SharedMemory` block; workers attach
by name and wrap zero-copy numpy views around the block, so the trace
payload crosses the process boundary exactly once regardless of worker
count.

Layout: the three columns are packed back-to-back into a single block —
``times`` (float64) at offset 0, ``object_ids`` (int64) after it, then
``client_ids`` (int32) — described by a tiny picklable
:class:`SharedTraceDescriptor`.

Lifecycle: the publisher owns the block and must call
:meth:`SharedTrace.unlink` (or use the handle as a context manager) when
all workers are done; callers are expected to do so in a ``finally`` block
so the segment is reclaimed even when a worker crashes.  Attachments hold
the mapped block alive via the returned trace's owner reference and are
closed when the worker process exits.  Should the *publisher* itself die
hard (SIGKILL) before its ``finally`` runs, the segment's recognisable
name (``repro-trace-{pid}-{token}``) lets :func:`cleanup_orphans` sweep it
up later.
"""

from __future__ import annotations

import os
import secrets
from dataclasses import dataclass
from pathlib import Path
from typing import List, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.trace.columnar import COLUMN_DTYPES, ColumnarTrace

try:  # pragma: no cover - absent only on exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

#: Name prefix of every segment :func:`publish_trace` creates.  Segments are
#: named ``repro-trace-{pid}-{token}`` — the publisher's pid makes orphans
#: (segments whose publisher died without unlinking) recognisable, and the
#: random token keeps concurrent publishers in one process apart.
SHM_NAME_PREFIX = "repro-trace-"

#: Where POSIX shared memory appears as files (Linux); the orphan sweep is
#: a no-op on platforms without it.
_SHM_DIR = Path("/dev/shm")


def shm_available() -> bool:
    """Whether :mod:`multiprocessing.shared_memory` is usable here."""
    return _shared_memory is not None


def _pid_alive(pid: int) -> bool:
    """Whether a process with this pid currently exists."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned by another user
        return True
    return True


def cleanup_orphans(prefix: str = SHM_NAME_PREFIX) -> List[str]:
    """Unlink published trace segments whose publishing process has died.

    A publisher killed hard (SIGKILL, OOM) never reaches its ``finally``
    unlink, and a segment it created can outlive it.  This sweep scans the
    shared-memory filesystem for ``{prefix}{pid}-{token}`` names, checks
    whether the embedded publisher pid is still alive, and unlinks the
    segments of dead publishers.  Returns the names removed.  Segments of
    live publishers (including this process) are never touched; a recycled
    pid can at worst delay reclamation until the squatter exits.  No-op on
    platforms without a scannable ``/dev/shm``.
    """
    if _shared_memory is None or not _SHM_DIR.is_dir():
        return []
    removed: List[str] = []
    for entry in sorted(_SHM_DIR.iterdir()):
        name = entry.name
        if not name.startswith(prefix):
            continue
        pid_text = name[len(prefix):].split("-", 1)[0]
        try:
            pid = int(pid_text)
        except ValueError:
            continue
        if _pid_alive(pid):
            continue
        try:
            entry.unlink()
        except FileNotFoundError:
            # Lost a race: the segment vanished between the directory scan
            # and the unlink (a concurrent sweep, or the dying publisher's
            # resource tracker got there first).  Someone else reclaimed
            # it, so it is not ours to report as removed.
            continue
        except OSError:  # pragma: no cover - permissions; leave it be
            continue
        removed.append(name)
    return removed


@dataclass(frozen=True)
class SharedTraceDescriptor:
    """Everything a worker needs to attach to a published trace.

    Attributes
    ----------
    name:
        The shared-memory block's system-wide name.
    num_requests:
        Number of requests (hence the length of every column).
    """

    name: str
    num_requests: int

    def layout(self) -> Tuple[Tuple[str, np.dtype, int], ...]:
        """Per-column ``(name, dtype, byte offset)`` of the packed block."""
        spec = []
        offset = 0
        for column, dtype in COLUMN_DTYPES:
            spec.append((column, dtype, offset))
            offset += dtype.itemsize * self.num_requests
        return tuple(spec)

    @property
    def nbytes(self) -> int:
        """Total payload size of the block in bytes."""
        return sum(
            dtype.itemsize * self.num_requests for _, dtype in COLUMN_DTYPES
        )


class SharedTrace:
    """Publisher-side handle for a trace living in shared memory."""

    def __init__(self, shm, descriptor: SharedTraceDescriptor):
        self._shm = shm
        self.descriptor = descriptor
        self._released = False

    def unlink(self) -> None:
        """Close the mapping and remove the block from the system (idempotent)."""
        if self._released:
            return
        self._released = True
        try:
            self._shm.close()
        finally:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already reclaimed
                pass

    def __enter__(self) -> "SharedTrace":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.unlink()


def publish_trace(trace: ColumnarTrace) -> SharedTrace:
    """Copy a columnar trace into a fresh shared-memory block.

    Returns a :class:`SharedTrace` whose ``descriptor`` is cheap to pickle
    into worker initializers.  Raises when shared memory is unavailable on
    this platform; callers that can fall back to pickling should catch
    :class:`OSError` / :class:`ConfigurationError`.
    """
    if _shared_memory is None:
        raise ConfigurationError(
            "multiprocessing.shared_memory is unavailable on this platform"
        )
    descriptor_size = 0
    for _, dtype in COLUMN_DTYPES:
        descriptor_size += dtype.itemsize * len(trace)
    # Recognisable names (pid + random token, see SHM_NAME_PREFIX) instead
    # of system-assigned ones, so cleanup_orphans can identify segments
    # whose publisher died without unlinking.  A zero-request trace still
    # needs a non-empty block to have a name.
    shm = None
    for _ in range(8):
        candidate = f"{SHM_NAME_PREFIX}{os.getpid()}-{secrets.token_hex(4)}"
        try:
            shm = _shared_memory.SharedMemory(
                create=True, name=candidate, size=max(descriptor_size, 1)
            )
            break
        except FileExistsError:  # pragma: no cover - 32-bit token collision
            continue
    if shm is None:  # pragma: no cover - eight straight collisions
        raise ConfigurationError(
            "could not allocate a uniquely named shared-memory segment"
        )
    try:
        descriptor = SharedTraceDescriptor(name=shm.name, num_requests=len(trace))
        columns = {
            "times": trace.times_array,
            "object_ids": trace.object_ids_array,
            "client_ids": trace.client_ids_array,
        }
        for column, dtype, offset in descriptor.layout():
            target = np.ndarray(
                (descriptor.num_requests,), dtype=dtype, buffer=shm.buf, offset=offset
            )
            target[:] = columns[column]
        return SharedTrace(shm, descriptor)
    except BaseException:
        shm.close()
        shm.unlink()
        raise


def attach_trace(descriptor: SharedTraceDescriptor) -> ColumnarTrace:
    """Attach to a published trace and wrap zero-copy views around it.

    The returned trace keeps the mapped block alive through its owner
    reference; the mapping is closed when the trace (typically a worker
    global) is garbage collected or the process exits.
    """
    if _shared_memory is None:
        raise ConfigurationError(
            "multiprocessing.shared_memory is unavailable on this platform"
        )
    try:
        # Python >= 3.13: attachments can opt out of resource tracking —
        # the publisher owns the segment's lifecycle.
        shm = _shared_memory.SharedMemory(name=descriptor.name, track=False)
    except TypeError:  # pragma: no cover - older interpreters
        # Older interpreters register attachments with the resource tracker
        # too (bpo-39959).  Workers here are always children of the
        # publisher and share its tracker — under fork by fd inheritance,
        # under POSIX spawn via the tracker_fd spawn_main receives (Windows
        # has no shm resource tracker at all) — and registrations for one
        # name de-duplicate there, so the publisher's unlink still cleans
        # up exactly once; no manual unregister is needed (and
        # unregistering would erase the publisher's own registration).
        shm = _shared_memory.SharedMemory(name=descriptor.name)
    arrays = {}
    for column, dtype, offset in descriptor.layout():
        arrays[column] = np.ndarray(
            (descriptor.num_requests,), dtype=dtype, buffer=shm.buf, offset=offset
        )
    return ColumnarTrace(
        arrays["times"],
        arrays["object_ids"],
        arrays["client_ids"],
        validate=False,
        _owner=shm,
    )
