"""Fast-path replay vs the event-calendar path: bit-identical metrics.

The simulator promises that its two replay paths are interchangeable: the
fast path is an optimisation, never a behavioural change.  These tests pin
that promise down for every registered policy, for every bundled
variability model, and for passive bandwidth estimation — using strict
``==`` on the full metrics dictionary, not approximate comparison.
"""

import pytest

from repro.core.policies import POLICY_REGISTRY, make_policy
from repro.exceptions import SimulationError
from repro.network.variability import (
    ConstantVariability,
    MeasuredPathVariability,
    NLANRRatioVariability,
)
from repro.sim.config import BandwidthKnowledge, SimulationConfig
from repro.sim.simulator import ProxyCacheSimulator
from repro.workload.gismo import GismoWorkloadGenerator, WorkloadConfig


@pytest.fixture(scope="module")
def workload():
    config = WorkloadConfig(seed=7).scaled(0.02)  # 100 objects, 2000 requests
    return GismoWorkloadGenerator(config).generate()


def _run_both(workload, policy_name, config):
    simulator = ProxyCacheSimulator(workload, config)
    event = simulator.run(make_policy(policy_name), use_fast_path=False)
    fast = simulator.run(make_policy(policy_name), use_fast_path=True)
    return event, fast


@pytest.mark.parametrize("policy_name", sorted(POLICY_REGISTRY))
@pytest.mark.parametrize(
    "variability",
    [ConstantVariability(), NLANRRatioVariability()],
    ids=["constant", "nlanr"],
)
def test_fast_path_bit_identical_for_every_policy(workload, policy_name, variability):
    config = SimulationConfig(cache_size_gb=0.5, variability=variability, seed=11)
    event, fast = _run_both(workload, policy_name, config)
    assert not event.used_fast_path
    assert fast.used_fast_path
    assert fast.as_dict() == event.as_dict()
    assert fast.metrics == event.metrics


def test_fast_path_bit_identical_measured_paths(workload):
    config = SimulationConfig(
        cache_size_gb=0.5, variability=MeasuredPathVariability("average"), seed=3
    )
    event, fast = _run_both(workload, "PB", config)
    assert fast.as_dict() == event.as_dict()


def test_fast_path_bit_identical_with_passive_estimation(workload):
    config = SimulationConfig(
        cache_size_gb=0.5,
        variability=NLANRRatioVariability(),
        bandwidth_knowledge=BandwidthKnowledge.PASSIVE,
        seed=5,
    )
    event, fast = _run_both(workload, "PB", config)
    assert fast.as_dict() == event.as_dict()


def test_fast_path_bit_identical_with_zero_warmup(workload):
    config = SimulationConfig(
        cache_size_gb=0.5, variability=NLANRRatioVariability(), warmup_fraction=0.0, seed=2
    )
    event, fast = _run_both(workload, "IB", config)
    assert fast.as_dict() == event.as_dict()
    assert fast.metrics.requests == len(workload.trace)


def test_fast_path_is_the_default(workload):
    config = SimulationConfig(cache_size_gb=0.5, seed=1)
    result = ProxyCacheSimulator(workload, config).run(make_policy("PB"))
    assert result.used_fast_path


class _ReMeasuringSimulator(ProxyCacheSimulator):
    """A simulator extension that schedules one auxiliary (no-op) event."""

    def schedule_auxiliary_events(self, engine, topology, store, collector):
        self.aux_ran = False

        def tick(engine, payload):
            self.aux_ran = True

        engine.schedule(0.0, tick)


def test_auxiliary_events_force_the_event_path(workload):
    config = SimulationConfig(cache_size_gb=0.5, seed=1)
    simulator = _ReMeasuringSimulator(workload, config)
    result = simulator.run(make_policy("PB"))
    assert not result.used_fast_path
    assert simulator.aux_ran
    # The auxiliary event must not change the metrics: the plain simulator
    # agrees on both of its paths.
    plain = ProxyCacheSimulator(workload, config).run(make_policy("PB"))
    assert result.metrics == plain.metrics


def test_forcing_fast_path_with_auxiliary_events_raises(workload):
    config = SimulationConfig(cache_size_gb=0.5, seed=1)
    simulator = _ReMeasuringSimulator(workload, config)
    with pytest.raises(SimulationError):
        simulator.run(make_policy("PB"), use_fast_path=True)


def test_fast_path_respects_verify_store(workload):
    config = SimulationConfig(cache_size_gb=0.5, seed=1, verify_store=True)
    result = ProxyCacheSimulator(workload, config).run(make_policy("PB"))
    assert result.used_fast_path
    assert result.metrics.requests > 0
