"""Synthetic streaming-media workload generation (GISMO-style substrate).

The paper drives its simulations with workloads produced by the GISMO
toolset [Jin & Bestavros 2001].  This package re-implements the pieces of
GISMO that the evaluation needs:

* :mod:`repro.workload.catalog` — the media-object catalog model,
* :mod:`repro.workload.popularity` — Zipf-like object popularity,
* :mod:`repro.workload.sizes` — lognormal object durations and bit-rates,
* :mod:`repro.workload.arrivals` — Poisson request arrival process,
* :mod:`repro.workload.trace` — request-trace data structures and I/O,
* :mod:`repro.workload.gismo` — the combined workload generator.
"""

from repro.workload.arrivals import PoissonArrivalProcess
from repro.workload.catalog import Catalog, MediaObject
from repro.workload.gismo import GismoWorkloadGenerator, Workload, WorkloadConfig
from repro.workload.popularity import UniformPopularity, ZipfPopularity
from repro.workload.sizes import ConstantBitrateModel, LognormalDurationModel
from repro.workload.trace import Request, RequestTrace

__all__ = [
    "Catalog",
    "ConstantBitrateModel",
    "GismoWorkloadGenerator",
    "LognormalDurationModel",
    "MediaObject",
    "PoissonArrivalProcess",
    "Request",
    "RequestTrace",
    "UniformPopularity",
    "Workload",
    "WorkloadConfig",
    "ZipfPopularity",
]
