"""Policy factory: build policies from short names.

Experiments, benchmarks, and the command-line interface refer to policies by
the short names the paper uses ("IF", "PB", "IB", ...).  The registry maps
those names to constructors; hybrid policies accept their ``estimator_e``
parameter through :func:`make_policy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.policies.base import CachePolicy
from repro.core.policies.bandwidth import (
    HybridPartialBandwidthPolicy,
    IntegralBandwidthPolicy,
    PartialBandwidthPolicy,
)
from repro.core.policies.classic import LFUPolicy, LRUPolicy
from repro.core.policies.frequency import IntegralFrequencyPolicy
from repro.core.policies.greedydual import (
    GreedyDualSizePolicy,
    PopularityAwareGreedyDualSizePolicy,
)
from repro.core.policies.value_based import (
    HybridPartialBandwidthValuePolicy,
    IntegralBandwidthValuePolicy,
    PartialBandwidthValuePolicy,
)
from repro.exceptions import ConfigurationError

#: Map of canonical policy name to zero-argument constructor.
POLICY_REGISTRY: Dict[str, Callable[[], CachePolicy]] = {
    "IF": IntegralFrequencyPolicy,
    "PB": PartialBandwidthPolicy,
    "IB": IntegralBandwidthPolicy,
    "PB-V": PartialBandwidthValuePolicy,
    "IB-V": IntegralBandwidthValuePolicy,
    "LRU": LRUPolicy,
    "LFU": LFUPolicy,
    "GDS": GreedyDualSizePolicy,
    "GDSP": PopularityAwareGreedyDualSizePolicy,
}


def make_policy(name: str, estimator_e: float = None) -> CachePolicy:
    """Construct a policy from its short name.

    Parameters
    ----------
    name:
        One of the registry names (case-insensitive), or ``"PB"`` /
        ``"PB-V"`` combined with ``estimator_e`` to obtain the hybrid
        variants of Figures 9 and 12.
    estimator_e:
        Optional bandwidth under-estimation factor; only meaningful for the
        partial bandwidth-based families.
    """
    key = name.strip().upper()
    if estimator_e is not None:
        if key == "PB":
            return HybridPartialBandwidthPolicy(estimator_e=estimator_e)
        if key == "PB-V":
            return HybridPartialBandwidthValuePolicy(estimator_e=estimator_e)
        raise ConfigurationError(
            f"estimator_e is only supported for PB and PB-V, not {name!r}"
        )
    try:
        constructor = POLICY_REGISTRY[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown policy {name!r}; known policies: {sorted(POLICY_REGISTRY)}"
        ) from None
    return constructor()


@dataclass(frozen=True)
class PolicySpec:
    """A picklable zero-argument policy factory.

    Experiment helpers historically used lambdas as policy factories, which
    cannot cross a process boundary.  A :class:`PolicySpec` carries the same
    information — registry name plus optional ``estimator_e`` — as plain
    data, so parallel experiment orchestration
    (:mod:`repro.analysis.parallel`) can ship factories to worker processes.
    """

    name: str
    estimator_e: Optional[float] = None

    def __call__(self) -> CachePolicy:
        return make_policy(self.name, estimator_e=self.estimator_e)
