"""Tests for frequency tracking and admission filters."""

import pytest

from repro.core.admission import (
    AlwaysAdmit,
    BandwidthThresholdAdmission,
    SizeThresholdAdmission,
)
from repro.core.frequency import FrequencyTracker
from repro.exceptions import ConfigurationError
from repro.workload.catalog import MediaObject


class TestFrequencyTracker:
    def test_counts_accumulate(self):
        tracker = FrequencyTracker()
        assert tracker.frequency(1) == 0.0
        tracker.record(1)
        tracker.record(1)
        tracker.record(2)
        assert tracker.frequency(1) == 2.0
        assert tracker.frequency(2) == 1.0
        assert tracker.total_requests == 3

    def test_record_returns_updated_count(self):
        tracker = FrequencyTracker()
        assert tracker.record(5) == 1.0
        assert tracker.record(5) == 2.0

    def test_top(self):
        tracker = FrequencyTracker()
        for _ in range(3):
            tracker.record(1)
        tracker.record(2)
        assert tracker.top(1) == [(1, 3.0)]
        assert tracker.known_objects() == [1, 2]

    def test_reset(self):
        tracker = FrequencyTracker()
        tracker.record(1)
        tracker.reset()
        assert tracker.total_requests == 0
        assert tracker.frequency(1) == 0.0

    def test_decay_halves_after_half_life(self):
        tracker = FrequencyTracker(decay_half_life=100.0)
        tracker.record(1, now=0.0)
        assert tracker.frequency(1, now=100.0) == pytest.approx(0.5)
        assert tracker.frequency(1, now=200.0) == pytest.approx(0.25)

    def test_decay_applied_before_increment(self):
        tracker = FrequencyTracker(decay_half_life=100.0)
        tracker.record(1, now=0.0)
        updated = tracker.record(1, now=100.0)
        assert updated == pytest.approx(1.5)

    def test_no_decay_by_default(self):
        tracker = FrequencyTracker()
        tracker.record(1, now=0.0)
        assert tracker.frequency(1, now=1e9) == 1.0

    def test_invalid_half_life_rejected(self):
        with pytest.raises(ConfigurationError):
            FrequencyTracker(decay_half_life=0.0)


class TestAdmissionFilters:
    obj_small = MediaObject(object_id=1, duration=10.0, bitrate=48.0)
    obj_large = MediaObject(object_id=2, duration=10_000.0, bitrate=48.0)

    def test_always_admit(self):
        assert AlwaysAdmit().admits(self.obj_large, bandwidth=1.0)

    def test_size_threshold(self):
        filter_ = SizeThresholdAdmission(max_size_kb=1_000.0)
        assert filter_.admits(self.obj_small, bandwidth=10.0)
        assert not filter_.admits(self.obj_large, bandwidth=10.0)

    def test_size_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            SizeThresholdAdmission(max_size_kb=0.0)

    def test_bandwidth_threshold(self):
        filter_ = BandwidthThresholdAdmission()
        assert filter_.admits(self.obj_small, bandwidth=24.0)  # deficit 24 > 0
        assert not filter_.admits(self.obj_small, bandwidth=48.0)
        assert not filter_.admits(self.obj_small, bandwidth=100.0)

    def test_bandwidth_threshold_with_margin(self):
        filter_ = BandwidthThresholdAdmission(min_deficit_kbps=30.0)
        assert not filter_.admits(self.obj_small, bandwidth=24.0)  # deficit only 24
        assert filter_.admits(self.obj_small, bandwidth=10.0)

    def test_bandwidth_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            BandwidthThresholdAdmission(min_deficit_kbps=-1.0)
