"""Tests for bandwidth measurement: PFTK model, active probing, passive EWMA."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, MeasurementError
from repro.network.measurement import (
    ActiveProber,
    PassiveEstimator,
    PathConditions,
    pftk_throughput,
    simplified_tcp_throughput,
)


class TestPathConditions:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PathConditions(rtt=0.0, loss_rate=0.01)
        with pytest.raises(ConfigurationError):
            PathConditions(rtt=0.1, loss_rate=1.0)
        with pytest.raises(ConfigurationError):
            PathConditions(rtt=0.1, loss_rate=0.01, mss=0.0)


class TestPFTKThroughput:
    def test_zero_loss_is_window_limited(self):
        conditions = PathConditions(rtt=0.1, loss_rate=0.0)
        assert pftk_throughput(conditions) == pytest.approx(640.0)

    def test_throughput_decreases_with_loss(self):
        low = pftk_throughput(PathConditions(rtt=0.1, loss_rate=0.005))
        high = pftk_throughput(PathConditions(rtt=0.1, loss_rate=0.05))
        assert high < low

    def test_throughput_decreases_with_rtt(self):
        short = pftk_throughput(PathConditions(rtt=0.05, loss_rate=0.01))
        long = pftk_throughput(PathConditions(rtt=0.5, loss_rate=0.01))
        assert long < short

    def test_inverse_sqrt_loss_scaling_in_simplified_model(self):
        # Quadrupling the loss rate should roughly halve the throughput.
        base = simplified_tcp_throughput(PathConditions(rtt=0.2, loss_rate=0.01))
        quadrupled = simplified_tcp_throughput(PathConditions(rtt=0.2, loss_rate=0.04))
        assert quadrupled == pytest.approx(base / 2.0, rel=0.01)

    def test_pftk_below_simplified_model(self):
        # The timeout term only reduces throughput relative to the simple model.
        conditions = PathConditions(rtt=0.2, loss_rate=0.03)
        assert pftk_throughput(conditions) <= simplified_tcp_throughput(conditions)


class TestActiveProber:
    def test_probe_close_to_model_prediction(self, rng):
        conditions = PathConditions(rtt=0.1, loss_rate=0.02)
        prober = ActiveProber(probe_count=200, noise_fraction=0.01)
        estimates = [prober.probe(conditions, rng) for _ in range(200)]
        assert np.median(estimates) == pytest.approx(pftk_throughput(conditions), rel=0.35)

    def test_probe_is_positive_even_with_noise(self, rng):
        prober = ActiveProber(probe_count=5, noise_fraction=0.5)
        conditions = PathConditions(rtt=0.5, loss_rate=0.3)
        assert all(prober.probe(conditions, rng) >= 1.0 for _ in range(100))

    def test_probe_overhead_scales_with_count(self):
        assert ActiveProber(probe_count=20).probe_overhead_kb() == pytest.approx(1.28)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ActiveProber(probe_count=0)
        with pytest.raises(ConfigurationError):
            ActiveProber(noise_fraction=-0.1)


class TestPassiveEstimator:
    def test_first_observation_sets_estimate(self):
        estimator = PassiveEstimator()
        estimator.observe(1, 80.0)
        assert estimator.estimate(1) == pytest.approx(80.0)

    def test_default_estimate_for_unknown_server(self):
        estimator = PassiveEstimator(initial_estimate=64.0)
        assert estimator.estimate(42) == 64.0

    def test_ewma_converges_to_stable_throughput(self):
        estimator = PassiveEstimator(smoothing=0.3)
        for _ in range(50):
            estimator.observe(1, 120.0)
        assert estimator.estimate(1) == pytest.approx(120.0, rel=1e-3)

    def test_ewma_tracks_change_gradually(self):
        estimator = PassiveEstimator(smoothing=0.25)
        estimator.observe(1, 100.0)
        estimator.observe(1, 200.0)
        assert estimator.estimate(1) == pytest.approx(125.0)

    def test_sample_count_and_known_servers(self):
        estimator = PassiveEstimator()
        estimator.observe(3, 10.0)
        estimator.observe(3, 20.0)
        estimator.observe(5, 30.0)
        assert estimator.sample_count(3) == 2
        assert estimator.known_servers() == [3, 5]

    def test_reset_clears_state(self):
        estimator = PassiveEstimator()
        estimator.observe(1, 50.0)
        estimator.reset()
        assert estimator.known_servers() == []
        assert estimator.sample_count(1) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PassiveEstimator(smoothing=0.0)
        with pytest.raises(ConfigurationError):
            PassiveEstimator(initial_estimate=0.0)
        with pytest.raises(MeasurementError):
            PassiveEstimator().observe(1, 0.0)
