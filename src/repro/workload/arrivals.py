"""Request arrival processes.

The paper's workload uses a Poisson arrival process (Table 1): requests
arrive independently with exponentially distributed inter-arrival times.
We also provide a deterministic process for tests and a simple
Markov-modulated process for burstiness ablations.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError


class ArrivalProcess:
    """Interface for arrival processes: produce sorted request timestamps."""

    def sample(self, num_requests: int, rng: np.random.Generator) -> np.ndarray:
        """Return ``num_requests`` arrival times (seconds), non-decreasing."""
        raise NotImplementedError


class PoissonArrivalProcess(ArrivalProcess):
    """Homogeneous Poisson arrivals at ``rate`` requests per second."""

    def __init__(self, rate: float):
        if rate <= 0:
            raise ConfigurationError(f"arrival rate must be positive, got {rate}")
        self.rate = float(rate)

    def __repr__(self) -> str:
        return f"PoissonArrivalProcess(rate={self.rate})"

    def sample(self, num_requests: int, rng: np.random.Generator) -> np.ndarray:
        if num_requests <= 0:
            raise ConfigurationError(
                f"num_requests must be positive, got {num_requests}"
            )
        inter_arrivals = rng.exponential(1.0 / self.rate, size=num_requests)
        return np.cumsum(inter_arrivals)

    def expected_span(self, num_requests: int) -> float:
        """Expected duration (seconds) covered by ``num_requests`` arrivals."""
        return num_requests / self.rate


class DeterministicArrivalProcess(ArrivalProcess):
    """Evenly spaced arrivals; handy for unit tests and debugging."""

    def __init__(self, interval: float):
        if interval <= 0:
            raise ConfigurationError(f"interval must be positive, got {interval}")
        self.interval = float(interval)

    def sample(self, num_requests: int, rng: np.random.Generator) -> np.ndarray:
        if num_requests <= 0:
            raise ConfigurationError(
                f"num_requests must be positive, got {num_requests}"
            )
        return np.arange(1, num_requests + 1, dtype=float) * self.interval


class MarkovModulatedPoissonProcess(ArrivalProcess):
    """A two-state MMPP producing bursty arrivals.

    The process alternates between a "quiet" state with arrival rate
    ``low_rate`` and a "busy" state with rate ``high_rate``; state holding
    times are exponential with the given means.  This is not used by the
    paper's headline experiments but supports sensitivity studies on the
    Poisson assumption (the paper notes request arrivals are assumed
    independent).
    """

    def __init__(
        self,
        low_rate: float,
        high_rate: float,
        mean_low_duration: float,
        mean_high_duration: float,
    ):
        if low_rate <= 0 or high_rate <= 0:
            raise ConfigurationError("arrival rates must be positive")
        if mean_low_duration <= 0 or mean_high_duration <= 0:
            raise ConfigurationError("state holding times must be positive")
        self.low_rate = float(low_rate)
        self.high_rate = float(high_rate)
        self.mean_low_duration = float(mean_low_duration)
        self.mean_high_duration = float(mean_high_duration)

    def sample(self, num_requests: int, rng: np.random.Generator) -> np.ndarray:
        if num_requests <= 0:
            raise ConfigurationError(
                f"num_requests must be positive, got {num_requests}"
            )
        times = np.empty(num_requests)
        clock = 0.0
        in_high = False
        state_end = clock + rng.exponential(self.mean_low_duration)
        generated = 0
        while generated < num_requests:
            rate = self.high_rate if in_high else self.low_rate
            clock += rng.exponential(1.0 / rate)
            while clock > state_end:
                in_high = not in_high
                mean_hold = (
                    self.mean_high_duration if in_high else self.mean_low_duration
                )
                state_end += rng.exponential(mean_hold)
            times[generated] = clock
            generated += 1
        return times
