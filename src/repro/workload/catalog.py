"""Media-object catalog model.

A :class:`MediaObject` captures the per-object attributes the paper's cache
management problem depends on (Section 2.2):

* ``duration`` — the object's playback duration ``T_i`` in seconds,
* ``bitrate`` — its constant bit-rate (CBR) encoding ``r_i`` in KB/s,
* ``value`` — the revenue ``V_i`` obtained when the object is played at
  full quality (Section 2.6), and
* ``server_id`` — which origin server stores the object, which determines
  the cache-to-server bandwidth ``b_i``.

A :class:`Catalog` is an immutable collection of media objects indexed by
object id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.exceptions import ConfigurationError, UnknownObjectError
from repro.units import kb_to_gb


@dataclass(frozen=True)
class MediaObject:
    """A single streaming media object available from an origin server.

    Attributes
    ----------
    object_id:
        Unique integer identifier (also the popularity rank by convention
        of the GISMO generator, but nothing in the library relies on that).
    duration:
        Playback duration ``T_i`` in seconds.
    bitrate:
        CBR encoding rate ``r_i`` in KB/s.
    server_id:
        Identifier of the origin server hosting the object.
    value:
        Revenue ``V_i`` (dollars) added when the object is served at full
        quality; used only by the value-based policies of Section 2.6.
    layers:
        Number of encoding layers for quality degradation.  The paper's
        stream-quality metric assumes a layered encoding; with ``layers``
        layers, quality is quantised to multiples of ``1 / layers``.
    """

    object_id: int
    duration: float
    bitrate: float
    server_id: int = 0
    value: float = 1.0
    layers: int = 4

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigurationError(
                f"object {self.object_id}: duration must be positive, got {self.duration}"
            )
        if self.bitrate <= 0:
            raise ConfigurationError(
                f"object {self.object_id}: bitrate must be positive, got {self.bitrate}"
            )
        if self.value < 0:
            raise ConfigurationError(
                f"object {self.object_id}: value must be non-negative, got {self.value}"
            )
        if self.layers < 1:
            raise ConfigurationError(
                f"object {self.object_id}: layers must be >= 1, got {self.layers}"
            )

    @property
    def size(self) -> float:
        """Total object size ``T_i * r_i`` in KB."""
        return self.duration * self.bitrate

    @property
    def frames(self) -> float:
        """Approximate number of frames, assuming 24 frames per second."""
        return self.duration * 24.0

    def minimum_prefix_for_bandwidth(self, bandwidth: float) -> float:
        """Return the smallest cached prefix (KB) hiding all startup delay.

        For a path of bandwidth ``b`` the paper shows (Section 2.3) that
        caching ``(r_i - b) * T_i`` kilobytes of the object is enough for the
        cache and the origin server to jointly sustain immediate playout;
        caching more does not reduce the delay further.  When the path is
        already fast enough (``b >= r_i``) no caching is needed.
        """
        if bandwidth < 0:
            raise ConfigurationError(f"bandwidth must be non-negative, got {bandwidth}")
        deficit = self.bitrate - bandwidth
        if deficit <= 0:
            return 0.0
        return deficit * self.duration

    def startup_delay(self, bandwidth: float, cached_bytes: float = 0.0) -> float:
        """Service delay ``[T_i r_i - T_i b - x_i]+ / b`` in seconds.

        This is the delay a client perceives before playout can begin when
        ``cached_bytes`` of the object are available from a (fast) cache and
        the rest must be streamed from the origin server over a path of
        ``bandwidth`` KB/s (Section 2.2).  A zero-bandwidth path makes the
        object unserviceable; the delay is reported as ``float('inf')``
        unless the whole object is cached.
        """
        missing = self.size - self.duration * bandwidth - cached_bytes
        if missing <= 0:
            return 0.0
        if bandwidth <= 0:
            return float("inf")
        return missing / bandwidth

    def stream_quality(self, bandwidth: float, cached_bytes: float = 0.0) -> float:
        """Fraction of the full stream playable immediately (Section 3.3).

        The client degrades the stream instead of waiting: with a layered
        encoding it plays only as many layers as the combined cache + server
        delivery can sustain.  The supported fraction is
        ``(x_i / T_i + b) / r_i`` clipped to ``[0, 1]`` and quantised down to
        a multiple of ``1 / layers``.
        """
        if self.duration <= 0:
            return 1.0
        supported_rate = cached_bytes / self.duration + max(bandwidth, 0.0)
        fraction = min(1.0, supported_rate / self.bitrate)
        if fraction >= 1.0:
            return 1.0
        quantum = 1.0 / self.layers
        supported_layers = int(fraction / quantum + 1e-9)
        return supported_layers * quantum


class Catalog:
    """An indexed, iterable collection of :class:`MediaObject` instances."""

    def __init__(self, objects: Iterable[MediaObject]):
        self._objects: Dict[int, MediaObject] = {}
        for obj in objects:
            if obj.object_id in self._objects:
                raise ConfigurationError(f"duplicate object id {obj.object_id}")
            self._objects[obj.object_id] = obj

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[MediaObject]:
        return iter(self._objects.values())

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._objects

    def get(self, object_id: int) -> MediaObject:
        """Return the object with the given id, raising if unknown."""
        try:
            return self._objects[object_id]
        except KeyError:
            raise UnknownObjectError(object_id) from None

    def object_ids(self) -> List[int]:
        """Return all object ids in insertion order."""
        return list(self._objects.keys())

    def server_ids(self) -> List[int]:
        """Return the sorted set of distinct origin-server ids."""
        return sorted({obj.server_id for obj in self._objects.values()})

    @property
    def total_size(self) -> float:
        """Total unique object size in KB (the paper's 790 GB figure)."""
        return sum(obj.size for obj in self._objects.values())

    @property
    def total_size_gb(self) -> float:
        """Total unique object size in GB."""
        return kb_to_gb(self.total_size)

    @property
    def mean_duration(self) -> float:
        """Mean object duration in seconds."""
        if not self._objects:
            return 0.0
        return sum(obj.duration for obj in self._objects.values()) / len(self._objects)

    def describe(self) -> Dict[str, float]:
        """Return summary statistics of the catalog for reporting."""
        if not self._objects:
            return {
                "objects": 0,
                "total_size_gb": 0.0,
                "mean_duration_s": 0.0,
                "mean_bitrate_kbps": 0.0,
            }
        return {
            "objects": float(len(self._objects)),
            "total_size_gb": self.total_size_gb,
            "mean_duration_s": self.mean_duration,
            "mean_bitrate_kbps": sum(o.bitrate for o in self) / len(self),
        }


@dataclass
class CatalogBuilder:
    """Convenience incremental builder used by generators and tests."""

    objects: List[MediaObject] = field(default_factory=list)

    def add(
        self,
        duration: float,
        bitrate: float,
        server_id: int = 0,
        value: float = 1.0,
        layers: int = 4,
        object_id: Optional[int] = None,
    ) -> MediaObject:
        """Append an object, auto-assigning the next id when not given."""
        if object_id is None:
            object_id = len(self.objects)
        obj = MediaObject(
            object_id=object_id,
            duration=duration,
            bitrate=bitrate,
            server_id=server_id,
            value=value,
            layers=layers,
        )
        self.objects.append(obj)
        return obj

    def extend(self, objects: Sequence[MediaObject]) -> None:
        """Append a sequence of already-constructed objects."""
        self.objects.extend(objects)

    def build(self) -> Catalog:
        """Finalise into an immutable :class:`Catalog`."""
        return Catalog(self.objects)
