"""Tests for simulation configuration and the metrics collector."""

import pytest

from repro.exceptions import ConfigurationError
from repro.network.variability import NLANRRatioVariability
from repro.sim.config import BandwidthKnowledge, SimulationConfig
from repro.sim.metrics import MetricsCollector, SimulationMetrics
from repro.streaming.session import DeliveryOutcome


def make_outcome(
    object_id=1,
    delay=0.0,
    quality=1.0,
    from_cache=100.0,
    from_server=100.0,
    value=5.0,
    immediate=True,
):
    return DeliveryOutcome(
        object_id=object_id,
        service_delay=delay,
        stream_quality=quality,
        bytes_from_cache=from_cache,
        bytes_from_server=from_server,
        observed_bandwidth=50.0,
        cached_fraction=from_cache / (from_cache + from_server),
        value=value,
        immediate_full_quality=immediate,
    )


class TestSimulationConfig:
    def test_defaults(self):
        config = SimulationConfig()
        assert config.cache_size_gb == 16.0
        assert config.cache_size_kb == pytest.approx(16e6)
        assert config.bandwidth_knowledge is BandwidthKnowledge.ORACLE
        assert config.warmup_fraction == 0.5

    def test_with_helpers_return_copies(self):
        config = SimulationConfig(cache_size_gb=4.0, seed=1)
        bigger = config.with_cache_size(32.0)
        reseeded = config.with_seed(9)
        varied = config.with_variability(NLANRRatioVariability())
        assert config.cache_size_gb == 4.0
        assert bigger.cache_size_gb == 32.0
        assert reseeded.seed == 9 and config.seed == 1
        assert varied.variability.coefficient_of_variation() > 0
        assert config.variability.coefficient_of_variation() == 0

    def test_cache_fraction_of(self):
        config = SimulationConfig(cache_size_gb=8.0)
        assert config.cache_fraction_of(80e6) == pytest.approx(0.1)
        assert config.cache_fraction_of(0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(cache_size_gb=-1.0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(warmup_fraction=1.0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(min_path_bandwidth=-1.0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(passive_smoothing=0.0)


class TestMetricsCollector:
    def test_warmup_requests_not_measured(self):
        collector = MetricsCollector()
        collector.record(make_outcome())
        collector.measuring = True
        collector.record(make_outcome())
        metrics = collector.finalize()
        assert collector.warmup_requests == 1
        assert metrics.requests == 1

    def test_traffic_reduction_ratio(self):
        collector = MetricsCollector(measuring=True)
        collector.record(make_outcome(from_cache=300.0, from_server=100.0))
        collector.record(make_outcome(from_cache=0.0, from_server=400.0))
        metrics = collector.finalize()
        assert metrics.traffic_reduction_ratio == pytest.approx(300.0 / 800.0)
        assert metrics.byte_hit_ratio == pytest.approx(300.0 / 800.0)
        assert metrics.hit_ratio == pytest.approx(0.5)

    def test_delay_and_quality_averages(self):
        collector = MetricsCollector(measuring=True)
        collector.record(make_outcome(delay=0.0, quality=1.0))
        collector.record(make_outcome(delay=10.0, quality=0.5, immediate=False))
        metrics = collector.finalize()
        assert metrics.average_service_delay == pytest.approx(5.0)
        assert metrics.average_stream_quality == pytest.approx(0.75)
        assert metrics.average_delay_among_delayed == pytest.approx(10.0)
        assert metrics.delayed_request_ratio == pytest.approx(0.5)

    def test_added_value_counts_only_immediate_service(self):
        collector = MetricsCollector(measuring=True)
        collector.record(make_outcome(value=7.0, immediate=True))
        collector.record(make_outcome(value=9.0, immediate=False, delay=5.0))
        metrics = collector.finalize()
        assert metrics.total_added_value == pytest.approx(7.0)
        assert metrics.immediate_service_ratio == pytest.approx(0.5)

    def test_empty_measurement_phase(self):
        metrics = MetricsCollector(measuring=True).finalize()
        assert metrics.requests == 0
        assert metrics.traffic_reduction_ratio == 0.0
        assert metrics.average_stream_quality == 1.0

    def test_top_hit_objects(self):
        collector = MetricsCollector(measuring=True)
        for _ in range(3):
            collector.record(make_outcome(object_id=4))
        collector.record(make_outcome(object_id=9))
        assert collector.top_hit_objects(1) == [4]


class TestSimulationMetricsAverage:
    def test_average_of_identical_metrics_is_identity(self):
        collector = MetricsCollector(measuring=True)
        collector.record(make_outcome())
        metrics = collector.finalize()
        averaged = SimulationMetrics.average([metrics, metrics, metrics])
        assert averaged.traffic_reduction_ratio == metrics.traffic_reduction_ratio
        assert averaged.requests == metrics.requests

    def test_average_mixes_values(self):
        collector_a = MetricsCollector(measuring=True)
        collector_a.record(make_outcome(delay=0.0))
        collector_b = MetricsCollector(measuring=True)
        collector_b.record(make_outcome(delay=10.0, immediate=False))
        averaged = SimulationMetrics.average(
            [collector_a.finalize(), collector_b.finalize()]
        )
        assert averaged.average_service_delay == pytest.approx(5.0)

    def test_average_empty_list_rejected(self):
        with pytest.raises(ValueError):
            SimulationMetrics.average([])

    def test_as_dict_round_trip(self):
        collector = MetricsCollector(measuring=True)
        collector.record(make_outcome())
        data = collector.finalize().as_dict()
        assert data["requests"] == 1.0
        assert "traffic_reduction_ratio" in data
