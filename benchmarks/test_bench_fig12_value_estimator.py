"""Figure 12 — Conservative bandwidth estimation for value-based caching.

Regenerates the estimator-``e`` spectrum for PB-V under measured bandwidth
variability, together with the IB-V reference.  The paper's observation: a
moderate ``e`` (around 0.5) yields the highest total added value,
outperforming IB-V (by up to 30% in the paper's setting).

The benchmark also runs the re-measurement ablation (``docs/events.md``)
for the value objective: the PB-V spectrum under passive bandwidth
knowledge, with and without periodic re-measurement.
"""

from benchmarks.conftest import BENCH_JOBS, BENCH_RUNS, BENCH_SCALE, report, run_once
from repro.analysis.experiments import experiment_fig12_value_estimator

ESTIMATOR_VALUES = (0.2, 0.5, 1.0)
CACHE_FRACTIONS = (0.05, 0.17)

#: Re-measurement cadence (seconds per path) for the ablation surfaces.
REMEASURE_INTERVAL = 600.0


def test_fig12_value_estimator_sweep(benchmark):
    result = run_once(
        benchmark,
        experiment_fig12_value_estimator,
        estimator_values=ESTIMATOR_VALUES,
        cache_fractions=CACHE_FRACTIONS,
        scale=BENCH_SCALE,
        num_runs=BENCH_RUNS,
        seed=0,
        n_jobs=BENCH_JOBS,
        remeasurement_interval=REMEASURE_INTERVAL,
    )
    surfaces = result.data["sweeps_by_e"]
    reference = result.data["ibv_reference"]
    extra = {}
    for e_value, sweep in surfaces.items():
        extra[f"value[e={e_value}]"] = sweep.series("PB-V(e)", "total_added_value")[-1]
        extra[f"trr[e={e_value}]"] = sweep.series("PB-V(e)", "traffic_reduction_ratio")[-1]
    extra["value[IB-V]"] = reference.series("IB-V", "total_added_value")[-1]

    # Re-measurement ablation coverage (value objective): both passive
    # surfaces span the same grid; the headline value delta is reported.
    passive = result.data["sweeps_by_e_passive"]
    remeasured = result.data["sweeps_by_e_remeasured"]
    assert set(passive) == set(remeasured) == set(surfaces)
    mid_e = sorted(ESTIMATOR_VALUES)[len(ESTIMATOR_VALUES) // 2]
    extra[f"value[e={mid_e},passive]"] = passive[mid_e].series(
        "PB-V(e)", "total_added_value"
    )[-1]
    extra[f"value[e={mid_e},remeasured]"] = remeasured[mid_e].series(
        "PB-V(e)", "total_added_value"
    )[-1]
    report(benchmark, result, extra=extra)

    # Smaller e reduces more traffic (same monotonicity as Figure 9(a)).
    smallest, largest = min(ESTIMATOR_VALUES), max(ESTIMATOR_VALUES)
    assert (
        surfaces[smallest].series("PB-V(e)", "traffic_reduction_ratio")[-1]
        >= surfaces[largest].series("PB-V(e)", "traffic_reduction_ratio")[-1] * 0.98
    )
    # The best value over the e spectrum is at least as good as both the pure
    # PB-V extreme and the IB-V reference (the paper's headline claim).
    best_value = max(
        surfaces[e].series("PB-V(e)", "total_added_value")[-1] for e in ESTIMATOR_VALUES
    )
    assert best_value >= surfaces[largest].series("PB-V(e)", "total_added_value")[-1] * 0.999
    assert best_value >= reference.series("IB-V", "total_added_value")[-1] * 0.95
