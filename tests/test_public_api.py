"""Smoke tests for the public API surface and packaging entry points."""

import importlib
import subprocess
import sys

import pytest

import repro


class TestTopLevelExports:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing attribute {name}"

    def test_key_classes_importable_from_top_level(self):
        for name in (
            "GismoWorkloadGenerator",
            "WorkloadConfig",
            "SimulationConfig",
            "ProxyCacheSimulator",
            "NLANRBandwidthDistribution",
            "PartialBandwidthPolicy",
            "IntegralBandwidthPolicy",
            "CacheStore",
            "make_policy",
            "optimal_allocation",
            "StreamingConfig",
            "StreamingReport",
            "SegmentedPrefix",
            "CacheTier",
            "HierarchyConfig",
            "HierarchyReport",
        ):
            assert hasattr(repro, name)

    def test_subpackages_importable(self):
        for module in (
            "repro.workload",
            "repro.network",
            "repro.streaming",
            "repro.core",
            "repro.core.policies",
            "repro.sim",
            "repro.analysis",
            "repro.cli",
        ):
            assert importlib.import_module(module) is not None

    def test_exceptions_form_one_hierarchy(self):
        for name in (
            "ConfigurationError",
            "CapacityError",
            "UnknownObjectError",
            "TraceFormatError",
            "MeasurementError",
            "SimulationError",
            "PolicyError",
        ):
            assert issubclass(getattr(repro, name), repro.ReproError)

    def test_subpackage_all_lists_resolve(self):
        for module_name in (
            "repro.workload",
            "repro.network",
            "repro.streaming",
            "repro.core",
            "repro.sim",
            "repro.analysis",
        ):
            module = importlib.import_module(module_name)
            for name in module.__all__:
                assert hasattr(module, name), f"{module_name}.__all__ lists {name}"


class TestModuleEntryPoint:
    @pytest.mark.parametrize("args", [["--help"], ["experiment", "--help"]])
    def test_python_dash_m_repro(self, args):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0
        assert "repro-sim" in completed.stdout

    def test_python_dash_m_runs_tiny_simulation(self):
        completed = subprocess.run(
            [
                sys.executable, "-m", "repro", "run",
                "--policy", "IB", "--cache-gb", "0.2", "--scale", "0.01",
            ],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0
        assert "traffic_reduction_ratio" in completed.stdout
