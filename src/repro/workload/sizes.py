"""Object duration and bit-rate models.

Table 1 of the paper specifies the workload's object sizes as follows: the
object *duration* (in minutes) follows a Lognormal distribution with
``mu = 3.85`` and ``sigma = 0.56`` (mean duration about 55 minutes, about
79 K frames at 24 frames per second), and every object is CBR-encoded at
2 KB/frame * 24 frames/s = 48 KB/s.  The total unique object size then works
out to roughly 790 GB for 5,000 objects.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.units import DEFAULT_BITRATE_KBPS, SECONDS_PER_MINUTE


class DurationModel:
    """Interface for object-duration models (durations in seconds)."""

    def sample(self, num_objects: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``num_objects`` durations (seconds)."""
        raise NotImplementedError

    def mean(self) -> float:
        """Analytical mean duration in seconds."""
        raise NotImplementedError


class LognormalDurationModel(DurationModel):
    """Lognormal object durations, parameterised in *minutes* as in Table 1.

    Parameters
    ----------
    mu, sigma:
        Parameters of the underlying normal distribution of
        ``log(duration in minutes)``.  Defaults are the paper's
        ``mu = 3.85``, ``sigma = 0.56``.
    min_minutes, max_minutes:
        Optional truncation bounds applied by resampling; GISMO truncates
        pathological tails so a single object cannot dwarf the catalog.
    """

    def __init__(
        self,
        mu: float = 3.85,
        sigma: float = 0.56,
        min_minutes: float = 0.5,
        max_minutes: float = 600.0,
    ):
        if sigma <= 0:
            raise ConfigurationError(f"sigma must be positive, got {sigma}")
        if min_minutes <= 0 or max_minutes <= min_minutes:
            raise ConfigurationError(
                f"invalid truncation bounds [{min_minutes}, {max_minutes}]"
            )
        self.mu = float(mu)
        self.sigma = float(sigma)
        self.min_minutes = float(min_minutes)
        self.max_minutes = float(max_minutes)

    def __repr__(self) -> str:
        return f"LognormalDurationModel(mu={self.mu}, sigma={self.sigma})"

    def mean(self) -> float:
        """Analytical (untruncated) mean duration in seconds."""
        mean_minutes = float(np.exp(self.mu + self.sigma**2 / 2.0))
        return mean_minutes * SECONDS_PER_MINUTE

    def sample(self, num_objects: int, rng: np.random.Generator) -> np.ndarray:
        if num_objects <= 0:
            raise ConfigurationError(
                f"num_objects must be positive, got {num_objects}"
            )
        minutes = rng.lognormal(self.mu, self.sigma, size=num_objects)
        # Resample out-of-range draws rather than clipping, which would pile
        # probability mass on the bounds and distort the size distribution.
        out_of_range = (minutes < self.min_minutes) | (minutes > self.max_minutes)
        attempts = 0
        while np.any(out_of_range) and attempts < 100:
            redraw = rng.lognormal(self.mu, self.sigma, size=int(out_of_range.sum()))
            minutes[out_of_range] = redraw
            out_of_range = (minutes < self.min_minutes) | (minutes > self.max_minutes)
            attempts += 1
        minutes = np.clip(minutes, self.min_minutes, self.max_minutes)
        return minutes * SECONDS_PER_MINUTE


class ConstantDurationModel(DurationModel):
    """All objects have the same duration; useful in tests and ablations."""

    def __init__(self, duration_seconds: float):
        if duration_seconds <= 0:
            raise ConfigurationError(
                f"duration must be positive, got {duration_seconds}"
            )
        self.duration_seconds = float(duration_seconds)

    def mean(self) -> float:
        return self.duration_seconds

    def sample(self, num_objects: int, rng: np.random.Generator) -> np.ndarray:
        if num_objects <= 0:
            raise ConfigurationError(
                f"num_objects must be positive, got {num_objects}"
            )
        return np.full(num_objects, self.duration_seconds)


class BitrateModel:
    """Interface for per-object bit-rate models (KB/s)."""

    def sample(self, num_objects: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``num_objects`` bit-rates (KB/s)."""
        raise NotImplementedError


class ConstantBitrateModel(BitrateModel):
    """Every object encoded at the same CBR rate (the paper's 48 KB/s)."""

    def __init__(self, bitrate: float = DEFAULT_BITRATE_KBPS):
        if bitrate <= 0:
            raise ConfigurationError(f"bitrate must be positive, got {bitrate}")
        self.bitrate = float(bitrate)

    def __repr__(self) -> str:
        return f"ConstantBitrateModel(bitrate={self.bitrate})"

    def sample(self, num_objects: int, rng: np.random.Generator) -> np.ndarray:
        if num_objects <= 0:
            raise ConfigurationError(
                f"num_objects must be positive, got {num_objects}"
            )
        return np.full(num_objects, self.bitrate)


class HeterogeneousBitrateModel(BitrateModel):
    """Bit-rates drawn from a discrete set of encoding profiles.

    The paper assumes a single 48 KB/s rate but motivates network-awareness
    with "heterogeneity of bit-rate requirements"; this model supports
    workloads mixing, say, modem-, broadband-, and high-quality encodings.
    """

    def __init__(self, rates: Tuple[float, ...], weights: Tuple[float, ...]):
        if len(rates) == 0 or len(rates) != len(weights):
            raise ConfigurationError("rates and weights must be equal-length, non-empty")
        if any(r <= 0 for r in rates):
            raise ConfigurationError("all rates must be positive")
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ConfigurationError("weights must be non-negative and sum to > 0")
        self.rates = tuple(float(r) for r in rates)
        total = float(sum(weights))
        self.weights = tuple(float(w) / total for w in weights)

    def sample(self, num_objects: int, rng: np.random.Generator) -> np.ndarray:
        if num_objects <= 0:
            raise ConfigurationError(
                f"num_objects must be positive, got {num_objects}"
            )
        return rng.choice(self.rates, size=num_objects, p=self.weights)
