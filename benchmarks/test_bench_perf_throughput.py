"""Raw simulation-core throughput: fast-path replay vs the event calendar.

Unlike the figure benchmarks (which time whole experiments), this
microbenchmark isolates the replay loop itself: one ~200k-request trace is
replayed twice against identical topologies — once through the discrete-event
calendar (the pre-optimisation baseline path) and once through the fast path
— and the requests/second of both, the speedup, and the policy heap's peak
size are written to ``BENCH_perf.json`` at the repository root.  That file is
the repo's performance trajectory: the ``smoke`` section it records is the
baseline the quick regression gate (:func:`test_throughput_smoke_regression`,
``make bench-smoke``) compares against.

The two paths must also agree *bit-for-bit* on every metric — the speedup is
only worth having if it is free of behavioural drift.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.experiments import build_workload
from repro.core.policies import make_policy
from repro.network.variability import NLANRRatioVariability
from repro.sim.config import SimulationConfig
from repro.sim.simulator import ProxyCacheSimulator

#: Where the throughput record lives (repository root, next to ROADMAP.md).
BENCH_PERF_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

#: Workload scale for the full benchmark: 2x the paper's volume = 200k
#: requests over 10k objects, enough for per-request costs to dominate.
FULL_SCALE = 2.0

#: Workload scale for the smoke regression gate (20k requests).
SMOKE_SCALE = 0.2

#: The benchmark policy and network model: PB under the high-variability
#: NLANR ratio model, the paper's most demanding headline configuration.
BENCH_POLICY = "PB"
BENCH_CACHE_GB = 16.0
BENCH_SEED = 0

#: A smoke run slower than ``1 - SMOKE_REGRESSION_TOLERANCE`` times the
#: recorded baseline fails the gate.
SMOKE_REGRESSION_TOLERANCE = 0.30


def _build_simulator(scale: float):
    workload = build_workload(scale=scale, seed=BENCH_SEED)
    config = SimulationConfig(
        cache_size_gb=BENCH_CACHE_GB,
        variability=NLANRRatioVariability(),
        seed=BENCH_SEED,
    )
    simulator = ProxyCacheSimulator(workload, config)
    topology = simulator.build_topology(np.random.default_rng(BENCH_SEED))
    return workload, simulator, topology


def _timed_run(simulator, topology, use_fast_path: bool):
    policy = make_policy(BENCH_POLICY)
    start = time.perf_counter()
    result = simulator.run(policy, topology=topology, use_fast_path=use_fast_path)
    elapsed = time.perf_counter() - start
    return result, policy, elapsed


def test_throughput_full_200k():
    """Replay 200k requests on both paths; record the trajectory file."""
    workload, simulator, topology = _build_simulator(FULL_SCALE)
    requests = len(workload.trace)
    assert requests == 200_000

    event_result, _, event_elapsed = _timed_run(simulator, topology, use_fast_path=False)
    fast_result, fast_policy, fast_elapsed = _timed_run(
        simulator, topology, use_fast_path=True
    )

    # The whole point: same simulation, bit-identical metrics.
    assert fast_result.used_fast_path and not event_result.used_fast_path
    assert fast_result.as_dict() == event_result.as_dict()

    event_rps = requests / event_elapsed
    fast_rps = requests / fast_elapsed
    speedup = fast_rps / event_rps
    heap_stats = fast_policy.heap_statistics()

    # Conservative floor so a loaded CI machine does not flap the suite; the
    # recorded speedup (see BENCH_perf.json) is the real trajectory number.
    assert speedup >= 2.5, f"fast path only {speedup:.2f}x over the event path"
    # Compaction must be bounding the heap: live entries never exceed the
    # catalog size, so the peak can never stray past twice that plus slack.
    assert heap_stats["peak_size"] <= 2 * len(workload.catalog) + 128

    # Smoke-sized fast-path run, measured here so the regression gate always
    # compares smoke against smoke.
    smoke_workload, smoke_simulator, smoke_topology = _build_simulator(SMOKE_SCALE)
    _, _, smoke_elapsed = _timed_run(smoke_simulator, smoke_topology, use_fast_path=True)
    smoke_rps = len(smoke_workload.trace) / smoke_elapsed

    BENCH_PERF_PATH.write_text(
        json.dumps(
            {
                "benchmark": "trace-replay throughput (policy PB, NLANR variability)",
                "requests": requests,
                "event_path_requests_per_sec": round(event_rps, 1),
                "fast_path_requests_per_sec": round(fast_rps, 1),
                "speedup": round(speedup, 2),
                "heap": {
                    "peak_size": heap_stats["peak_size"],
                    "final_size": heap_stats["size"],
                    "live_entries": heap_stats["live_entries"],
                    "compactions": heap_stats["compactions"],
                },
                "smoke": {
                    "requests": len(smoke_workload.trace),
                    "fast_path_requests_per_sec": round(smoke_rps, 1),
                },
            },
            indent=2,
        )
        + "\n"
    )


def test_throughput_smoke_regression():
    """Fail when the small-trace replay regresses >30% against the record."""
    if not BENCH_PERF_PATH.exists():
        pytest.skip("no BENCH_perf.json baseline; run `make bench-full` first")
    baseline = json.loads(BENCH_PERF_PATH.read_text())["smoke"]

    workload, simulator, topology = _build_simulator(SMOKE_SCALE)
    assert len(workload.trace) == baseline["requests"]
    # Warm once (imports, allocator), then time.
    _timed_run(simulator, topology, use_fast_path=True)
    _, _, elapsed = _timed_run(simulator, topology, use_fast_path=True)
    rps = len(workload.trace) / elapsed

    floor = (1.0 - SMOKE_REGRESSION_TOLERANCE) * baseline["fast_path_requests_per_sec"]
    assert rps >= floor, (
        f"fast-path throughput regressed: {rps:,.0f} req/s vs baseline "
        f"{baseline['fast_path_requests_per_sec']:,.0f} req/s "
        f"(floor {floor:,.0f})"
    )
