"""Figure 7 — IF / PB / IB under high (cache-log) bandwidth variability.

Regenerates the Figure 5 panels with per-request bandwidth drawn from the
NLANR sample-to-mean model.  The paper's observations: traffic reduction is
essentially unchanged versus the constant-bandwidth case, but delays rise
and quality drops for all policies, and PB loses its delay advantage (IB is
no worse than PB).
"""

from benchmarks.conftest import (
    BENCH_CACHE_FRACTIONS,
    BENCH_JOBS,
    BENCH_RUNS,
    BENCH_SCALE,
    report,
    run_once,
    summarize_sweep,
)
from repro.analysis.experiments import (
    experiment_fig5_constant_bandwidth,
    experiment_fig7_high_variability,
)


def test_fig7_high_variability(benchmark):
    result = run_once(
        benchmark,
        experiment_fig7_high_variability,
        scale=BENCH_SCALE,
        num_runs=BENCH_RUNS,
        cache_fractions=BENCH_CACHE_FRACTIONS,
        seed=0,
        n_jobs=BENCH_JOBS,
    )
    sweep = result.data["sweep"]
    extra = {}
    for metric in ("traffic_reduction_ratio", "average_service_delay", "average_stream_quality"):
        extra.update(summarize_sweep(sweep, metric))
    report(benchmark, result, extra=extra)

    # Reference: the same configuration under constant bandwidth (Figure 5).
    constant = experiment_fig5_constant_bandwidth(
        scale=BENCH_SCALE,
        num_runs=BENCH_RUNS,
        cache_fractions=BENCH_CACHE_FRACTIONS,
        seed=0,
        n_jobs=BENCH_JOBS,
    ).data["sweep"]

    for policy in sweep.policies():
        # Variability increases delay and degrades quality for every policy.
        assert (
            sweep.series(policy, "average_service_delay")[-1]
            >= constant.series(policy, "average_service_delay")[-1]
        )
        assert (
            sweep.series(policy, "average_stream_quality")[-1]
            <= constant.series(policy, "average_stream_quality")[-1] + 0.02
        )
        # Traffic reduction barely changes (Figure 7(a) vs Figure 5(a)).
        assert sweep.series(policy, "traffic_reduction_ratio")[-1] == (
            constant.series(policy, "traffic_reduction_ratio")[-1]
        ) or abs(
            sweep.series(policy, "traffic_reduction_ratio")[-1]
            - constant.series(policy, "traffic_reduction_ratio")[-1]
        ) < 0.08

    # Under high variability IB is no worse than PB on delay (within noise).
    assert (
        sweep.series("IB", "average_service_delay")[-1]
        <= sweep.series("PB", "average_service_delay")[-1] * 1.25
    )
    # The network-aware policies still beat IF on delay.
    assert (
        sweep.series("PB", "average_service_delay")[-1]
        <= sweep.series("IF", "average_service_delay")[-1]
    )
