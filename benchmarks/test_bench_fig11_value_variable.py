"""Figure 11 — Value-based caching under measured bandwidth variability.

Same comparison as Figure 10 but with per-request bandwidth following the
measured-path variability model.  The paper's observation: IB-V yields the
best compromise between traffic reduction and total added value once
bandwidth varies.
"""

from benchmarks.conftest import (
    BENCH_CACHE_FRACTIONS,
    BENCH_JOBS,
    BENCH_RUNS,
    BENCH_SCALE,
    report,
    run_once,
    summarize_sweep,
)
from repro.analysis.experiments import experiment_fig11_value_variable


def test_fig11_value_based_variable_bandwidth(benchmark):
    result = run_once(
        benchmark,
        experiment_fig11_value_variable,
        scale=BENCH_SCALE,
        num_runs=BENCH_RUNS,
        cache_fractions=BENCH_CACHE_FRACTIONS,
        seed=0,
        n_jobs=BENCH_JOBS,
    )
    sweep = result.data["sweep"]
    extra = {}
    for metric in ("traffic_reduction_ratio", "total_added_value"):
        extra.update(summarize_sweep(sweep, metric))
    report(benchmark, result, extra=extra)

    last = len(sweep.parameter_values) - 1
    trr = {p: sweep.series(p, "traffic_reduction_ratio")[last] for p in sweep.policies()}
    value = {p: sweep.series(p, "total_added_value")[last] for p in sweep.policies()}

    # IF still reduces the most traffic; the value-aware integral policy adds
    # at least as much value as IF.  (PB-V caches exact prefixes sized for the
    # *average* bandwidth, so under variability its value advantage over IF
    # shrinks — the effect the paper uses to motivate Figure 12's moderate e.)
    assert trr["IF"] >= max(trr["PB-V"], trr["IB-V"]) * 0.98
    assert value["IB-V"] >= value["IF"] * 0.98
    assert value["PB-V"] >= value["IF"] * 0.90
    # IB-V is the compromise: it reduces clearly more traffic than PB-V while
    # staying competitive (within 10%) on added value.
    assert trr["IB-V"] >= trr["PB-V"]
    assert value["IB-V"] >= value["PB-V"] * 0.90
