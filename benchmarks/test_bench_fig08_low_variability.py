"""Figure 8 — IF / PB / IB under measured-path (low) bandwidth variability.

Regenerates the Figure 5 panels with the lower-variability model derived
from the measured Internet paths.  The paper's observation: with this more
realistic variability, PB again outperforms the integral algorithms in
reducing service delay and improving stream quality.
"""

from benchmarks.conftest import (
    BENCH_CACHE_FRACTIONS,
    BENCH_JOBS,
    BENCH_RUNS,
    BENCH_SCALE,
    report,
    run_once,
    summarize_sweep,
)
from repro.analysis.experiments import experiment_fig8_low_variability


def test_fig8_low_variability(benchmark):
    result = run_once(
        benchmark,
        experiment_fig8_low_variability,
        scale=BENCH_SCALE,
        num_runs=BENCH_RUNS,
        cache_fractions=BENCH_CACHE_FRACTIONS,
        seed=0,
        n_jobs=BENCH_JOBS,
    )
    sweep = result.data["sweep"]
    extra = {}
    for metric in ("traffic_reduction_ratio", "average_service_delay", "average_stream_quality"):
        extra.update(summarize_sweep(sweep, metric))
    report(benchmark, result, extra=extra)

    last = len(sweep.parameter_values) - 1
    # PB beats both integral policies on delay and quality (Figure 8(b)/(c)).
    assert (
        sweep.series("PB", "average_service_delay")[last]
        <= sweep.series("IF", "average_service_delay")[last]
    )
    assert (
        sweep.series("PB", "average_service_delay")[last]
        <= sweep.series("IB", "average_service_delay")[last] * 1.05
    )
    assert (
        sweep.series("PB", "average_stream_quality")[last]
        >= sweep.series("IF", "average_stream_quality")[last]
    )
    # Traffic-reduction ordering is unchanged: IF >= IB >= PB.
    assert (
        sweep.series("IF", "traffic_reduction_ratio")[last]
        >= sweep.series("IB", "traffic_reduction_ratio")[last] * 0.98
        >= sweep.series("PB", "traffic_reduction_ratio")[last] * 0.96
    )
