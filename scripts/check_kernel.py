#!/usr/bin/env python
"""Kernel-seam gate: replay drivers must not reach around the kernel.

The four replay drivers in ``src/repro/sim/simulator.py`` (the
``_replay_*`` methods) own *iteration order only* — event merging, chunk
boundaries, column extraction.  Every per-request decision (faults,
hierarchy residency, streaming delivery, policy admit/evict, passive
observation, metrics/timeline emission) lives in
:mod:`repro.sim.kernel`, reached exclusively through
:func:`~repro.sim.kernel.serve_request` /
:func:`~repro.sim.kernel.serve_batch` and the ``KernelContext`` built
once per run from each subsystem's ``kernel_hooks()``.

That seam is what keeps the four paths bit-identical: a driver that
calls a subsystem directly re-introduces a per-path service sequence,
and the divergence only surfaces when that subsystem is active on that
path — exactly the bug class the kernel refactor removed.  This gate
fails the build the moment a driver:

* names a subsystem engine class (``FaultInjector``, ``HierarchyEngine``,
  ``StreamingDeliveryEngine``, ``MetricsTimeline``, ``ReactiveRekeyer``,
  ``MetricsCollector``) or a subsystem instance variable,
* touches ``self`` beyond the trace and the other drivers (the
  subsystem instances assembled by ``run()`` are not driver state),
* reads kernel-owned state off the context beyond the replay-shape
  fields (``dense_bound``), or
* stops delegating — every driver must call ``serve_request`` /
  ``serve_batch`` or hand off to another driver.

Run via ``make kernel-check``; wired into CI (see
``.github/workflows/ci.yml``).  Tested by ``tests/test_sim_kernel.py``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent
SIMULATOR_PATH = REPO_ROOT / "src" / "repro" / "sim" / "simulator.py"

#: Subsystem engine classes a driver must never name: constructing or
#: type-checking one inside a driver means per-path service logic.
FORBIDDEN_CLASSES = frozenset(
    {
        "FaultInjector",
        "HierarchyEngine",
        "StreamingDeliveryEngine",
        "MetricsTimeline",
        "ReactiveRekeyer",
        "MetricsCollector",
    }
)

#: Subsystem instance names as ``run()`` binds them.  A driver has no
#: business holding any of these — they reach the kernel through
#: ``kernel_hooks()`` and live on the context.
FORBIDDEN_NAMES = frozenset(
    {
        "injector",
        "hierarchy",
        "streaming",
        "timeline",
        "collector",
        "estimator",
        "rekeyer",
        "policy",
        "store",
        "profiler",
    }
)

#: The only ``self.<attr>`` a driver may touch besides other drivers:
#: the workload (iteration source).  Everything else ``run()`` assembled
#: belongs to the kernel context.
ALLOWED_SELF_ATTRS = frozenset({"workload"})

#: The only ``ctx.<attr>`` reads a driver may perform: fields that shape
#: the *replay* (which driver / how to chunk), never fields that shape
#: the *service* of a request.
ALLOWED_CTX_ATTRS = frozenset({"dense_bound"})

#: A driver must delegate per-request service to one of these.
KERNEL_ENTRYPOINTS = frozenset({"serve_request", "serve_batch"})


def _driver_functions(tree: ast.Module) -> List[ast.FunctionDef]:
    drivers: List[ast.FunctionDef] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and item.name.startswith(
                    "_replay_"
                ):
                    drivers.append(item)
    return drivers


def check_driver(driver: ast.FunctionDef) -> List[str]:
    """All seam violations in one ``_replay_*`` driver."""
    problems: List[str] = []
    delegates = False
    for node in ast.walk(driver):
        if isinstance(node, ast.Name):
            if node.id in FORBIDDEN_CLASSES:
                problems.append(
                    f"{driver.name}:{node.lineno}: names subsystem class "
                    f"{node.id!r} — drivers must reach subsystems through "
                    f"the kernel context only"
                )
            elif node.id in FORBIDDEN_NAMES and isinstance(node.ctx, ast.Load):
                problems.append(
                    f"{driver.name}:{node.lineno}: reads subsystem instance "
                    f"{node.id!r} — per-request service belongs to "
                    f"repro.sim.kernel"
                )
            elif node.id in KERNEL_ENTRYPOINTS:
                delegates = True
        elif isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ):
            owner = node.value.id
            if owner == "self":
                if node.attr.startswith("_replay_"):
                    delegates = True
                elif node.attr not in ALLOWED_SELF_ATTRS:
                    problems.append(
                        f"{driver.name}:{node.lineno}: touches "
                        f"self.{node.attr} — drivers own iteration only "
                        f"(allowed: "
                        f"{', '.join(sorted(ALLOWED_SELF_ATTRS))}, other "
                        f"_replay_* drivers)"
                    )
            elif owner == "ctx" and node.attr not in ALLOWED_CTX_ATTRS:
                problems.append(
                    f"{driver.name}:{node.lineno}: reads ctx.{node.attr} — "
                    f"kernel state is served through serve_request/"
                    f"serve_batch, not picked apart by drivers (allowed: "
                    f"{', '.join(sorted(ALLOWED_CTX_ATTRS))})"
                )
    if not delegates:
        problems.append(
            f"{driver.name}: never calls serve_request/serve_batch nor "
            f"another _replay_* driver — the service sequence must come "
            f"from repro.sim.kernel"
        )
    return problems


def check_file(path: Path = SIMULATOR_PATH) -> List[str]:
    """All seam violations across every driver in ``path``."""
    tree = ast.parse(path.read_text(), filename=str(path))
    drivers = _driver_functions(tree)
    problems: List[str] = []
    if len(drivers) < 4:
        problems.append(
            f"expected the four replay drivers in {path.name}, found "
            f"{len(drivers)}: {', '.join(d.name for d in drivers) or 'none'}"
        )
    for driver in drivers:
        problems.extend(check_driver(driver))
    return problems


def main(argv=None) -> int:
    path = Path(argv[0]) if argv else SIMULATOR_PATH
    problems = check_file(path)
    for problem in problems:
        print(problem)
    tree = ast.parse(path.read_text())
    names = [d.name for d in _driver_functions(tree)]
    print(
        f"kernel gate: {len(names)} drivers checked "
        f"({', '.join(names)}), {len(problems)} problem(s)"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
