"""Shared-memory trace transport: fidelity, determinism, and cleanup.

Pinned guarantees:

* a published trace attaches with exactly the same values (zero-copy views
  over the shared block),
* ``run_simulation_jobs`` produces byte-identical results under every
  transport (``shm`` / ``pickle`` / serial), so ``n_jobs > 1`` with shared
  memory changes nothing but speed,
* the shared segment is unlinked even when workers fail, and the ``auto``
  transport falls back to pickling when shared memory is unusable.
"""

import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import parallel as parallel_mod
from repro.analysis.parallel import replication_jobs, run_simulation_jobs
from repro.core.policies import PolicySpec
from repro.exceptions import ConfigurationError
from repro.network.variability import NLANRRatioVariability
from repro.sim.config import SimulationConfig
from repro.sim.runner import compare_policies, run_replications
from repro.trace.columnar import ColumnarTrace
from repro.trace.shm import (
    SHM_NAME_PREFIX,
    attach_trace,
    cleanup_orphans,
    publish_trace,
    shm_available,
)
from repro.workload.gismo import GismoWorkloadGenerator, WorkloadConfig

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable"
)


@pytest.fixture(scope="module")
def columnar_workload():
    config = WorkloadConfig(seed=0).scaled(0.02)  # 100 objects, 2000 requests
    return GismoWorkloadGenerator(config).generate(columnar=True)


@pytest.fixture(scope="module")
def sim_config():
    return SimulationConfig(
        cache_size_gb=0.5, variability=NLANRRatioVariability(), seed=0
    )


class TestPublishAttach:
    def test_roundtrip_values(self, columnar_workload):
        trace = columnar_workload.trace
        with publish_trace(trace) as shared:
            attached = attach_trace(shared.descriptor)
            assert attached == trace
            assert attached.times_array.dtype == np.float64
            # The attachment is a view over the shared block, not a pickle
            # copy: its buffers do not alias the publisher's private arrays.
            assert not np.shares_memory(attached.times_array, trace.times_array)

    def test_descriptor_reports_layout(self, columnar_workload):
        trace = columnar_workload.trace
        with publish_trace(trace) as shared:
            descriptor = shared.descriptor
            assert descriptor.num_requests == len(trace)
            assert descriptor.nbytes == trace.nbytes
            offsets = [offset for _, _, offset in descriptor.layout()]
            assert offsets == sorted(offsets)

    def test_empty_trace_roundtrip(self):
        empty = ColumnarTrace([], [])
        with publish_trace(empty) as shared:
            assert attach_trace(shared.descriptor) == empty

    def test_unlink_reclaims_segment(self, columnar_workload):
        shared = publish_trace(columnar_workload.trace)
        shared.unlink()
        with pytest.raises(FileNotFoundError):
            attach_trace(shared.descriptor)
        shared.unlink()  # idempotent


class TestTransportDeterminism:
    def test_all_transports_byte_identical(
        self, columnar_workload, sim_config, monkeypatch
    ):
        # Drop the auto-transport size gate so this small trace exercises
        # the shm path under "auto" too.
        monkeypatch.setattr(parallel_mod, "SHM_MIN_TRACE_BYTES", 0)
        jobs = replication_jobs(sim_config, PolicySpec("PB"), num_runs=2)
        serial = run_simulation_jobs(columnar_workload, jobs, n_jobs=1)
        shm = run_simulation_jobs(
            columnar_workload, jobs, n_jobs=2, transport="shm"
        )
        pickled = run_simulation_jobs(
            columnar_workload, jobs, n_jobs=2, transport="pickle"
        )
        auto = run_simulation_jobs(columnar_workload, jobs, n_jobs=2)
        assert shm == serial
        assert pickled == serial
        assert auto == serial

    def test_auto_pickles_small_traces(self, columnar_workload, sim_config, monkeypatch):
        """Below the size gate, auto must not touch shared memory at all."""

        def forbidden_publish(trace):  # pragma: no cover - failure path
            raise AssertionError("auto transport published a tiny trace")

        monkeypatch.setattr(parallel_mod, "publish_trace", forbidden_publish)
        jobs = replication_jobs(sim_config, PolicySpec("PB"), num_runs=2)
        serial = run_simulation_jobs(columnar_workload, jobs, n_jobs=1)
        auto = run_simulation_jobs(columnar_workload, jobs, n_jobs=2)
        assert auto == serial

    def test_object_trace_can_be_forced_through_shm(self, sim_config):
        config = WorkloadConfig(seed=0).scaled(0.02)
        object_workload = GismoWorkloadGenerator(config).generate()
        jobs = replication_jobs(sim_config, PolicySpec("PB"), num_runs=2)
        serial = run_simulation_jobs(object_workload, jobs, n_jobs=1)
        forced = run_simulation_jobs(
            object_workload, jobs, n_jobs=2, transport="shm"
        )
        assert forced == serial

    def test_invalid_transport_rejected(self, columnar_workload, sim_config):
        jobs = replication_jobs(sim_config, PolicySpec("PB"), num_runs=1)
        with pytest.raises(ConfigurationError):
            run_simulation_jobs(columnar_workload, jobs, n_jobs=2, transport="zmq")

    def test_runner_helpers_shm_match_serial(self, columnar_workload, sim_config):
        serial = run_replications(
            columnar_workload, PolicySpec("PB"), sim_config, num_runs=2
        )
        parallel = run_replications(
            columnar_workload, PolicySpec("PB"), sim_config, num_runs=2, n_jobs=2
        )
        assert parallel == serial

        factories = {name: PolicySpec(name) for name in ("PB", "IB")}
        serial_cmp = compare_policies(
            columnar_workload, factories, sim_config, num_runs=2
        )
        parallel_cmp = compare_policies(
            columnar_workload, factories, sim_config, num_runs=2, n_jobs=2
        )
        for name in factories:
            assert (
                parallel_cmp.metrics_by_policy[name]
                == serial_cmp.metrics_by_policy[name]
            )


class TestFallbackAndCleanup:
    def test_auto_falls_back_to_pickle_when_publish_fails(
        self, columnar_workload, sim_config, monkeypatch
    ):
        def broken_publish(trace):
            raise OSError("no shared memory here")

        monkeypatch.setattr(parallel_mod, "SHM_MIN_TRACE_BYTES", 0)
        monkeypatch.setattr(parallel_mod, "publish_trace", broken_publish)
        jobs = replication_jobs(sim_config, PolicySpec("PB"), num_runs=2)
        serial = run_simulation_jobs(columnar_workload, jobs, n_jobs=1)
        fallback = run_simulation_jobs(columnar_workload, jobs, n_jobs=2)
        assert fallback == serial

    def test_forced_shm_unavailable_raises_even_serially(
        self, columnar_workload, sim_config, monkeypatch
    ):
        monkeypatch.setattr(parallel_mod, "shm_available", lambda: False)
        jobs = replication_jobs(sim_config, PolicySpec("PB"), num_runs=1)
        with pytest.raises(ConfigurationError):
            run_simulation_jobs(columnar_workload, jobs, n_jobs=1, transport="shm")
        with pytest.raises(ConfigurationError):
            run_simulation_jobs(columnar_workload, jobs, n_jobs=2, transport="shm")

    def test_forced_shm_surfaces_publish_failure(
        self, columnar_workload, sim_config, monkeypatch
    ):
        def broken_publish(trace):
            raise OSError("no shared memory here")

        monkeypatch.setattr(parallel_mod, "publish_trace", broken_publish)
        jobs = replication_jobs(sim_config, PolicySpec("PB"), num_runs=2)
        with pytest.raises(OSError):
            run_simulation_jobs(
                columnar_workload, jobs, n_jobs=2, transport="shm"
            )

    def test_segment_unlinked_even_when_workers_fail(
        self, columnar_workload, sim_config, monkeypatch
    ):
        published = []
        real_publish = parallel_mod.publish_trace

        def tracking_publish(trace):
            shared = real_publish(trace)
            published.append(shared)
            return shared

        monkeypatch.setattr(parallel_mod, "publish_trace", tracking_publish)
        jobs = [
            parallel_mod.SimulationJob(
                config=sim_config,
                policy_factory=_ExplodingFactory(),
                share_topology=False,
            )
        ] * 2
        with pytest.raises(Exception):
            run_simulation_jobs(columnar_workload, jobs, n_jobs=2, transport="shm")
        assert len(published) == 1
        # The finally-block must have reclaimed the segment.
        with pytest.raises(FileNotFoundError):
            attach_trace(published[0].descriptor)


class _ExplodingFactory:
    """A picklable policy factory that blows up inside the worker."""

    def __call__(self):
        raise RuntimeError("boom")


_SHM_DIR = Path("/dev/shm")

needs_shm_dir = pytest.mark.skipif(
    not _SHM_DIR.is_dir(), reason="no scannable /dev/shm on this platform"
)

#: Publisher script for the killed-publisher test: publish a small trace,
#: report the segment name, then hang until SIGKILLed.
_PUBLISHER_SCRIPT = """
import sys, time
import numpy as np
from repro.trace.columnar import ColumnarTrace
from repro.trace.shm import publish_trace

trace = ColumnarTrace(np.arange(16, dtype=np.float64), np.zeros(16, dtype=np.int64))
shared = publish_trace(trace)
print(shared.descriptor.name, flush=True)
time.sleep(120)
"""


class TestOrphanSweep:
    def test_segment_names_embed_the_publisher_pid(self, columnar_workload):
        import os

        with publish_trace(columnar_workload.trace) as shared:
            name = shared.descriptor.name
            assert name.startswith(SHM_NAME_PREFIX)
            assert name[len(SHM_NAME_PREFIX):].split("-", 1)[0] == str(os.getpid())

    @needs_shm_dir
    def test_sweep_removes_dead_publishers_segment_only(self, columnar_workload):
        # A pid that is certainly dead: spawn a trivial child and reap it.
        child = subprocess.Popen(["sleep", "0"])
        child.wait()
        orphan = _SHM_DIR / f"{SHM_NAME_PREFIX}{child.pid}-deadbeef"
        orphan.write_bytes(b"\x00" * 16)
        live = publish_trace(columnar_workload.trace)
        try:
            removed = cleanup_orphans()
            assert orphan.name in removed
            assert not orphan.exists()
            # The live publisher's segment must survive the sweep intact.
            assert live.descriptor.name not in removed
            assert attach_trace(live.descriptor) == columnar_workload.trace
        finally:
            live.unlink()

    @needs_shm_dir
    def test_sweep_ignores_foreign_and_unparsable_names(self):
        stranger = _SHM_DIR / f"{SHM_NAME_PREFIX}not-a-pid"
        stranger.write_bytes(b"\x00")
        try:
            assert stranger.name not in cleanup_orphans()
            assert stranger.exists()
        finally:
            stranger.unlink()

    @needs_shm_dir
    def test_sweep_tolerates_segment_vanishing_mid_sweep(self, monkeypatch):
        """A segment reclaimed between the scan and the unlink is skipped.

        A concurrent sweep (or the dead publisher's resource tracker) can
        unlink a scanned segment before our own unlink runs.  Simulate the
        interleaving by deleting the segment from inside the liveness
        check — the sweep must neither raise nor claim the vanished
        segment as removed, and must still reclaim other orphans.
        """
        import os

        from repro.trace import shm as shm_mod

        child = subprocess.Popen(["sleep", "0"])
        child.wait()
        vanishing = _SHM_DIR / f"{SHM_NAME_PREFIX}{child.pid}-feedface"
        vanishing.write_bytes(b"\x00" * 16)
        surviving_orphan = _SHM_DIR / f"{SHM_NAME_PREFIX}{child.pid}-deadbea7"
        surviving_orphan.write_bytes(b"\x00" * 16)
        real_pid_alive = shm_mod._pid_alive

        def racing_pid_alive(pid):
            # Another sweeper beats us to this segment after we scanned it.
            if pid == child.pid and vanishing.exists():
                vanishing.unlink()
            return real_pid_alive(pid)

        monkeypatch.setattr(shm_mod, "_pid_alive", racing_pid_alive)
        try:
            removed = cleanup_orphans()
            assert vanishing.name not in removed
            assert surviving_orphan.name in removed
            assert not surviving_orphan.exists()
            # Sanity: the race really was exercised, not skipped.
            assert not vanishing.exists()
            assert real_pid_alive(os.getpid())
        finally:
            for leftover in (vanishing, surviving_orphan):
                if leftover.exists():  # pragma: no cover - cleanup on failure
                    leftover.unlink()

    @needs_shm_dir
    def test_killed_publisher_does_not_leak_segments(self):
        """SIGKILLed publisher: after the sweep, its segments are gone.

        The publisher's resource tracker may race us to the cleanup (it
        also notices the death); either way the invariant is that no
        ``repro-trace-{pid}-*`` segment of the dead process survives a
        :func:`cleanup_orphans` sweep.
        """
        child = subprocess.Popen(
            [sys.executable, "-c", _PUBLISHER_SCRIPT],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            name = child.stdout.readline().strip()
            assert name.startswith(f"{SHM_NAME_PREFIX}{child.pid}-")
            child.send_signal(signal.SIGKILL)
            child.wait()
        finally:
            child.stdout.close()
            if child.poll() is None:  # pragma: no cover - defensive
                child.kill()
                child.wait()
        # Give the child's resource tracker a moment if it is cleaning too.
        deadline = time.monotonic() + 5.0
        pattern = f"{SHM_NAME_PREFIX}{child.pid}-*"
        while time.monotonic() < deadline:
            cleanup_orphans()
            if not list(_SHM_DIR.glob(pattern)):
                break
            time.sleep(0.05)
        assert not list(_SHM_DIR.glob(pattern))
