"""repro.obs — read-only observability for simulation runs.

Three layers, all opt-in through
:class:`~repro.obs.config.ObservabilityConfig` on the simulation config
and all guaranteed not to change simulated results (no RNG draws, no
state mutation — instrumentation only reads counters the run already
keeps):

* **windowed time-series metrics**
  (:class:`~repro.obs.timeline.MetricsTimeline`) — hit ratio, byte-hit
  ratio, mean latency, cache occupancy, evictions, reactive shifts /
  re-keys, and fault state bucketed into fixed sim-time windows,
  recorded at identical sequence points on all four replay paths and
  attached to ``SimulationResult.timeline``;
* **structured event tracing**
  (:class:`~repro.obs.tracing.TraceSink`) — an opt-in JSONL file of
  admissions, evictions, re-keys, fault episodes, and retries with
  level- and deterministic-sampling filters, plus the
  :mod:`logging`-backed CLI logger in :mod:`repro.obs.log`;
* **per-stage profiling**
  (:class:`~repro.obs.profiling.StageProfiler`) — wall-clock timers for
  workload draw, topology build, the replay loop, policy ops, the
  estimator, and fault evaluation, exposed as
  ``SimulationResult.profile`` and ``repro run --profile``.

See ``docs/observability.md`` for a worked example.
"""

from repro.obs.config import ObservabilityConfig
from repro.obs.log import configure, get_logger
from repro.obs.profiling import StageProfiler
from repro.obs.timeline import CUMULATIVE_FIELDS, GAUGE_FIELDS, MetricsTimeline
from repro.obs.tracing import ObservedCacheStore, TraceSink

__all__ = [
    "CUMULATIVE_FIELDS",
    "GAUGE_FIELDS",
    "MetricsTimeline",
    "ObservabilityConfig",
    "ObservedCacheStore",
    "StageProfiler",
    "TraceSink",
    "configure",
    "get_logger",
]
