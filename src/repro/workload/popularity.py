"""Object popularity models.

The paper's workload (Section 3.2, Table 1) assigns object popularity from a
Zipf-like distribution: the probability that the ``r``-th ranked object is
requested is proportional to ``r**(-alpha)``.  The default skew parameter is
``alpha = 0.73`` and Figure 6 sweeps it between 0.5 and 1.2.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError


class PopularityModel:
    """Interface for popularity models: a probability per object rank."""

    def probabilities(self, num_objects: int) -> np.ndarray:
        """Return an array of request probabilities, one per rank (0-based)."""
        raise NotImplementedError

    def sample_ranks(
        self, num_objects: int, num_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``num_samples`` object ranks i.i.d. from the popularity law."""
        probs = self.probabilities(num_objects)
        return rng.choice(num_objects, size=num_samples, p=probs)


class ZipfPopularity(PopularityModel):
    """Zipf-like popularity: ``P(rank r) ∝ r**(-alpha)`` for ``r = 1..N``.

    Parameters
    ----------
    alpha:
        Skew parameter.  ``alpha = 0`` degenerates to a uniform popularity;
        larger values concentrate requests on the most popular objects and
        intensify temporal locality (Section 4.2).
    """

    def __init__(self, alpha: float = 0.73):
        if alpha < 0:
            raise ConfigurationError(f"Zipf alpha must be non-negative, got {alpha}")
        self.alpha = float(alpha)

    def __repr__(self) -> str:
        return f"ZipfPopularity(alpha={self.alpha})"

    def probabilities(self, num_objects: int) -> np.ndarray:
        if num_objects <= 0:
            raise ConfigurationError(
                f"num_objects must be positive, got {num_objects}"
            )
        ranks = np.arange(1, num_objects + 1, dtype=float)
        weights = ranks ** (-self.alpha)
        return weights / weights.sum()

    def expected_rates(self, num_objects: int, total_requests: float) -> np.ndarray:
        """Expected request count per rank for a trace of ``total_requests``.

        This is the ``lambda_i`` the paper's offline optimal policy
        (Section 2.3) assumes to be known a priori.
        """
        return self.probabilities(num_objects) * float(total_requests)


class UniformPopularity(PopularityModel):
    """Uniform popularity: every object equally likely (a degenerate Zipf)."""

    def probabilities(self, num_objects: int) -> np.ndarray:
        if num_objects <= 0:
            raise ConfigurationError(
                f"num_objects must be positive, got {num_objects}"
            )
        return np.full(num_objects, 1.0 / num_objects)


class EmpiricalPopularity(PopularityModel):
    """Popularity given directly as per-object weights (e.g. from a trace)."""

    def __init__(self, weights: Sequence[float]):
        arr = np.asarray(list(weights), dtype=float)
        if arr.size == 0:
            raise ConfigurationError("weights must be non-empty")
        if np.any(arr < 0):
            raise ConfigurationError("weights must be non-negative")
        total = arr.sum()
        if total <= 0:
            raise ConfigurationError("weights must sum to a positive value")
        self._probs = arr / total

    def probabilities(self, num_objects: Optional[int] = None) -> np.ndarray:
        if num_objects is not None and num_objects != self._probs.size:
            raise ConfigurationError(
                f"empirical popularity has {self._probs.size} objects, "
                f"requested {num_objects}"
            )
        return self._probs.copy()


def zipf_rank_concentration(alpha: float, num_objects: int, top_fraction: float) -> float:
    """Fraction of requests landing on the top ``top_fraction`` of objects.

    A small helper used in reports and tests to express how skewed a
    popularity profile is (e.g. "the top 10% of objects attract 55% of the
    requests").
    """
    if not 0.0 < top_fraction <= 1.0:
        raise ConfigurationError(
            f"top_fraction must be in (0, 1], got {top_fraction}"
        )
    probs = ZipfPopularity(alpha).probabilities(num_objects)
    top_k = max(1, int(round(top_fraction * num_objects)))
    return float(probs[:top_k].sum())
