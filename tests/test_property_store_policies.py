"""Property-based tests (hypothesis) for the cache store and the policies.

These check the structural invariants the paper's formalisation relies on:
the capacity constraint is never violated, byte accounting stays consistent,
and the policies' cache-size targets never exceed what is useful.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.policies import (
    IntegralBandwidthPolicy,
    IntegralFrequencyPolicy,
    PartialBandwidthPolicy,
    PartialBandwidthValuePolicy,
    PolicyContext,
)
from repro.core.store import CacheStore
from repro.exceptions import CapacityError
from repro.workload.catalog import MediaObject

# ----------------------------------------------------------------------
# CacheStore invariants
# ----------------------------------------------------------------------
store_ops = st.lists(
    st.tuples(
        st.sampled_from(["set", "grow", "trim", "evict"]),
        st.integers(min_value=0, max_value=9),
        st.floats(min_value=0.0, max_value=400.0, allow_nan=False),
    ),
    min_size=1,
    max_size=60,
)


@given(operations=store_ops)
@settings(max_examples=100, deadline=None)
def test_store_accounting_consistent_under_random_operations(operations):
    store = CacheStore(1_000.0)
    for op, object_id, amount in operations:
        try:
            if op == "set":
                store.set_cached_bytes(object_id, amount)
            elif op == "grow":
                store.grow(object_id, amount)
            elif op == "trim":
                store.trim(object_id, amount)
            else:
                store.evict(object_id)
        except CapacityError:
            pass  # a rejected operation must leave the store untouched
        assert store.verify_consistency()
        assert store.used_kb <= store.capacity_kb + 1e-6
        assert store.free_kb >= -1e-6


@given(
    capacity=st.floats(min_value=0.0, max_value=10_000.0, allow_nan=False),
    amount=st.floats(min_value=0.0, max_value=20_000.0, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_store_single_set_respects_capacity(capacity, amount):
    store = CacheStore(capacity)
    tolerance = 1e-6 * max(capacity, 1.0)
    if amount <= capacity:
        store.set_cached_bytes(1, amount)
        assert store.cached_bytes(1) == pytest.approx(amount)
    elif amount > capacity + tolerance:
        with pytest.raises(CapacityError):
            store.set_cached_bytes(1, amount)
    # Amounts within the store's float tolerance of the capacity may be
    # accepted or rejected; either way the accounting must stay consistent.
    assert store.verify_consistency()


# ----------------------------------------------------------------------
# Policy target / utility invariants
# ----------------------------------------------------------------------
objects = st.builds(
    MediaObject,
    object_id=st.integers(min_value=0, max_value=1_000),
    duration=st.floats(min_value=1.0, max_value=10_000.0, allow_nan=False),
    bitrate=st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
    server_id=st.integers(min_value=0, max_value=50),
    value=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)
contexts = st.builds(
    PolicyContext,
    now=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    bandwidth=st.floats(min_value=0.5, max_value=1_000.0, allow_nan=False),
    frequency=st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
)

ALL_POLICIES = [
    IntegralFrequencyPolicy,
    PartialBandwidthPolicy,
    IntegralBandwidthPolicy,
    PartialBandwidthValuePolicy,
]


@given(obj=objects, ctx=contexts)
@settings(max_examples=200, deadline=None)
def test_targets_are_bounded_and_utilities_nonnegative(obj, ctx):
    for factory in ALL_POLICIES:
        policy = factory()
        target = policy.target_cache_bytes(obj, ctx)
        assert target >= 0.0
        # No policy ever wants more than the whole object.
        assert min(target, obj.size) <= obj.size + 1e-9
        assert policy.utility(obj, ctx) >= 0.0


@given(obj=objects, ctx=contexts)
@settings(max_examples=200, deadline=None)
def test_bandwidth_aware_policies_skip_well_connected_objects(obj, ctx):
    if obj.bitrate <= ctx.bandwidth:
        for factory in (PartialBandwidthPolicy, IntegralBandwidthPolicy, PartialBandwidthValuePolicy):
            assert factory().target_cache_bytes(obj, ctx) == 0.0


@given(obj=objects, ctx=contexts)
@settings(max_examples=200, deadline=None)
def test_pb_target_is_exactly_the_delay_hiding_prefix(obj, ctx):
    target = PartialBandwidthPolicy().target_cache_bytes(obj, ctx)
    assert target == pytest.approx(obj.minimum_prefix_for_bandwidth(ctx.bandwidth))
    # Caching the target leaves zero startup delay at the believed bandwidth.
    assert obj.startup_delay(ctx.bandwidth, min(target, obj.size)) == pytest.approx(0.0, abs=1e-6)


request_streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),            # object index
        st.floats(min_value=2.0, max_value=120.0, allow_nan=False),  # bandwidth
    ),
    min_size=1,
    max_size=120,
)


@given(stream=request_streams)
@settings(max_examples=60, deadline=None)
def test_policies_never_violate_capacity_over_request_streams(stream):
    catalog = [
        MediaObject(object_id=i, duration=20.0 + 15.0 * i, bitrate=48.0, value=1.0 + i)
        for i in range(8)
    ]
    for factory in ALL_POLICIES:
        policy = factory()
        store = CacheStore(2_500.0)
        for step, (index, bandwidth) in enumerate(stream):
            policy.on_request(catalog[index], bandwidth, float(step), store)
            assert store.verify_consistency()
            assert store.used_kb <= store.capacity_kb + 1e-6
            for entry in store:
                assert entry.cached_bytes <= catalog[entry.object_id].size + 1e-6
