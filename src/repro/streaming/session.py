"""Joint cache + origin-server delivery sessions.

This module captures the client-side behaviour the paper describes in
Sections 2.1 and 3.3.  When a client requests an object:

* If the combined delivery (cached prefix streamed from the fast proxy plus
  the remainder streamed from the origin server at bandwidth ``b``) can
  sustain the object's bit-rate, playout starts immediately at full quality.
* Otherwise the client has two options.  It can **wait** — prefetch enough
  of the stream to hide the bandwidth deficit, incurring the service delay
  ``[T r - T b - x]+ / b`` — or it can **degrade** — start immediately but
  play only as many encoding layers as the available rate supports.

The :class:`DeliverySession` computes all of these quantities for a single
request, together with the byte accounting (how much was served from the
cache versus the origin server) that the traffic-reduction metric needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ConfigurationError
from repro.workload.catalog import MediaObject


class ServiceMode(enum.Enum):
    """How a request was ultimately served."""

    #: The combined cache + server delivery sustained full quality at once.
    IMMEDIATE_FULL = "immediate_full"
    #: The client waited (prefetched a prefix) and then played at full quality.
    DELAYED_FULL = "delayed_full"
    #: The client played immediately at degraded quality.
    DEGRADED = "degraded"


@dataclass(frozen=True)
class DeliveryOutcome:
    """Everything the metrics need to know about one served request.

    Attributes
    ----------
    object_id:
        Which object was served.
    service_delay:
        Startup delay in seconds if the client chooses to wait for full
        quality (0 when playout can start immediately).
    stream_quality:
        Fraction of the full stream (layers) playable with zero delay.
    bytes_from_cache:
        KB served out of the proxy cache.
    bytes_from_server:
        KB fetched from the origin server.
    observed_bandwidth:
        The server-path bandwidth (KB/s) this request experienced.
    cached_fraction:
        Fraction of the object that was cached when the request arrived.
    value:
        The object's value ``V_i`` (used by the added-value metric).
    immediate_full_quality:
        True when no delay and no degradation were needed.
    """

    object_id: int
    service_delay: float
    stream_quality: float
    bytes_from_cache: float
    bytes_from_server: float
    observed_bandwidth: float
    cached_fraction: float
    value: float
    immediate_full_quality: bool

    @property
    def total_bytes(self) -> float:
        """Total KB delivered for this request."""
        return self.bytes_from_cache + self.bytes_from_server

    @property
    def mode_if_waiting(self) -> ServiceMode:
        """Service mode when the client's policy is to wait for full quality."""
        if self.service_delay <= 0:
            return ServiceMode.IMMEDIATE_FULL
        return ServiceMode.DELAYED_FULL

    @property
    def mode_if_degrading(self) -> ServiceMode:
        """Service mode when the client's policy is to degrade quality."""
        if self.stream_quality >= 1.0:
            return ServiceMode.IMMEDIATE_FULL
        return ServiceMode.DEGRADED


class DeliverySession:
    """Compute the outcome of serving one object with a cached prefix.

    Parameters
    ----------
    obj:
        The requested media object.
    cached_bytes:
        KB of the object's prefix currently held by the proxy cache.
    server_bandwidth:
        Available bandwidth (KB/s) on the cache/client-to-origin-server path
        for the duration of this request.
    """

    def __init__(self, obj: MediaObject, cached_bytes: float, server_bandwidth: float):
        if cached_bytes < 0:
            raise ConfigurationError(f"cached_bytes must be non-negative, got {cached_bytes}")
        if server_bandwidth < 0:
            raise ConfigurationError(
                f"server_bandwidth must be non-negative, got {server_bandwidth}"
            )
        self.obj = obj
        self.cached_bytes = min(float(cached_bytes), obj.size)
        self.server_bandwidth = float(server_bandwidth)

    def service_delay(self) -> float:
        """Startup delay (seconds) when the client waits for full quality."""
        return self.obj.startup_delay(self.server_bandwidth, self.cached_bytes)

    def stream_quality(self) -> float:
        """Quality (fraction of layers) playable with zero startup delay."""
        return self.obj.stream_quality(self.server_bandwidth, self.cached_bytes)

    def supports_immediate_full_quality(self) -> bool:
        """True when cache + server jointly sustain the full bit-rate now."""
        return self.service_delay() <= 0.0

    def bytes_from_cache(self) -> float:
        """KB the proxy serves (the cached prefix, capped at object size)."""
        return self.cached_bytes

    def bytes_from_server(self) -> float:
        """KB that must still come from the origin server."""
        return self.obj.size - self.cached_bytes

    def outcome(self) -> DeliveryOutcome:
        """Materialise the full :class:`DeliveryOutcome` for this request."""
        delay = self.service_delay()
        quality = self.stream_quality()
        return DeliveryOutcome(
            object_id=self.obj.object_id,
            service_delay=delay,
            stream_quality=quality,
            bytes_from_cache=self.bytes_from_cache(),
            bytes_from_server=self.bytes_from_server(),
            observed_bandwidth=self.server_bandwidth,
            cached_fraction=self.cached_bytes / self.obj.size if self.obj.size > 0 else 0.0,
            value=self.obj.value,
            immediate_full_quality=delay <= 0.0,
        )


def required_prefix_for_immediate_playout(
    obj: MediaObject, server_bandwidth: float
) -> float:
    """KB of prefix that must be cached for zero-delay full-quality playout.

    This is the paper's ``[T_i r_i − T_i b_i]+`` quantity (Section 2.6): the
    minimum cached portion that lets the cache and origin server jointly
    support immediate service.
    """
    return obj.minimum_prefix_for_bandwidth(server_bandwidth)


def joint_playout_feasible(
    obj: MediaObject,
    cached_bytes: float,
    server_bandwidth: float,
    startup_tolerance: float = 0.0,
) -> bool:
    """Whether joint delivery achieves startup delay <= ``startup_tolerance``."""
    if startup_tolerance < 0:
        raise ConfigurationError(
            f"startup_tolerance must be non-negative, got {startup_tolerance}"
        )
    session = DeliverySession(obj, cached_bytes, server_bandwidth)
    return session.service_delay() <= startup_tolerance


def outcome_without_cache(
    obj: MediaObject, server_bandwidth: float
) -> DeliveryOutcome:
    """Outcome of serving an object with no cache assistance at all.

    Used as the no-cache baseline when reporting how much the accelerator
    architecture improves delay and quality.
    """
    return DeliverySession(obj, 0.0, server_bandwidth).outcome()


def delay_reduction(
    obj: MediaObject,
    cached_bytes: float,
    server_bandwidth: float,
) -> float:
    """Seconds of startup delay removed by the cached prefix."""
    baseline = DeliverySession(obj, 0.0, server_bandwidth).service_delay()
    assisted = DeliverySession(obj, cached_bytes, server_bandwidth).service_delay()
    if baseline == float("inf") and assisted == float("inf"):
        return 0.0
    return max(baseline - assisted, 0.0)
