"""Cache-to-server path abstraction.

A :class:`NetworkPath` combines a base (long-term average) bandwidth with a
:class:`~repro.network.variability.BandwidthVariabilityModel` to answer the
two questions the rest of the system asks:

* what bandwidth does the *cache believe* the path has (the measured or
  estimated value its caching decisions use), and
* what bandwidth does a *particular request actually experience* (the base
  bandwidth modulated by a variability ratio).

Keeping the two separate is exactly what the paper's Section 2.5 heuristic
exploits: the hybrid policy deliberately *under-estimates* the believed
bandwidth by a factor ``e`` to hedge against variability.

:class:`PathRegistry` holds one path per origin server and is the object the
simulator and the policies share.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.exceptions import ConfigurationError, UnknownObjectError
from repro.network.distributions import BandwidthDistribution
from repro.network.variability import BandwidthVariabilityModel, ConstantVariability

#: Hard floor (KB/s) on any observed/base bandwidth.  It keeps the delay
#: formulas away from division by zero on extreme draws, and it doubles as
#: the throughput sample a completely stalled transfer reports: the fault
#: injector (:mod:`repro.sim.faults`) feeds this floor to the passive
#: estimator while an origin is unreachable, so outages appear to the
#: learning machinery as bandwidth collapse rather than missing data.
BANDWIDTH_FLOOR = 1.0


class NetworkPath:
    """The path between the proxy cache and one origin server."""

    def __init__(
        self,
        server_id: int,
        base_bandwidth: float,
        variability: Optional[BandwidthVariabilityModel] = None,
    ):
        if base_bandwidth <= 0:
            raise ConfigurationError(
                f"path to server {server_id}: base bandwidth must be positive, "
                f"got {base_bandwidth}"
            )
        self.server_id = int(server_id)
        self.base_bandwidth = float(base_bandwidth)
        self.variability = variability or ConstantVariability()

    def __repr__(self) -> str:
        return (
            f"NetworkPath(server_id={self.server_id}, "
            f"base_bandwidth={self.base_bandwidth:.1f}, "
            f"variability={self.variability!r})"
        )

    def observed_bandwidth(self, rng: np.random.Generator) -> float:
        """Bandwidth a single transfer actually experiences (KB/s).

        Drawn as the base bandwidth times a sample-to-mean ratio from the
        path's variability model.  A hard floor of 1 KB/s prevents the
        delay formulas from dividing by zero on extreme draws; a path that
        slow is effectively unusable either way.
        """
        ratio = float(self.variability.sample_ratio(rng, size=1)[0])
        return max(self.base_bandwidth * ratio, BANDWIDTH_FLOOR)

    def sample_observed(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` observed-bandwidth samples in one vectorised batch.

        Elementwise identical to ``size`` consecutive
        :meth:`observed_bandwidth` calls when the variability model is
        batch-equivalent (``iid_batch_equivalent``) — the property the
        bundled models guarantee and ``tests/test_network_path_topology.py``
        pins.  Characterising a path's distribution this way (e.g. sizing a
        re-measurement cadence against its spread) avoids a Python call per
        sample; it is also the building block for batching the periodic
        probe draws themselves (a ROADMAP follow-up).
        """
        if size < 0:
            raise ConfigurationError(f"size must be non-negative, got {size}")
        ratios = np.asarray(
            self.variability.sample_ratio(rng, size=size), dtype=np.float64
        )
        return np.maximum(self.base_bandwidth * ratios, BANDWIDTH_FLOOR)

    def estimated_bandwidth(self, estimator_e: float = 1.0) -> float:
        """Bandwidth the cache *believes* the path has (KB/s).

        ``estimator_e`` is the under-estimation factor of Section 2.5:
        ``e = 1`` trusts the measured average, smaller values are more
        conservative, and ``e -> 0`` degenerates to integral caching.
        """
        if not 0.0 < estimator_e <= 1.0:
            raise ConfigurationError(
                f"estimator_e must be in (0, 1], got {estimator_e}"
            )
        return self.base_bandwidth * estimator_e


class PathRegistry:
    """A collection of :class:`NetworkPath` objects indexed by server id."""

    def __init__(self, paths: Iterable[NetworkPath] = ()):
        self._paths: Dict[int, NetworkPath] = {}
        for path in paths:
            self.add(path)

    def add(self, path: NetworkPath) -> None:
        """Register a path, rejecting duplicates for the same server."""
        if path.server_id in self._paths:
            raise ConfigurationError(f"duplicate path for server {path.server_id}")
        self._paths[path.server_id] = path

    def __len__(self) -> int:
        return len(self._paths)

    def __contains__(self, server_id: int) -> bool:
        return server_id in self._paths

    def __iter__(self):
        return iter(self._paths.values())

    def get(self, server_id: int) -> NetworkPath:
        """Return the path to ``server_id``, raising if unknown."""
        try:
            return self._paths[server_id]
        except KeyError:
            raise UnknownObjectError(f"no path registered for server {server_id}") from None

    def server_ids(self) -> List[int]:
        """All registered server ids, sorted."""
        return sorted(self._paths.keys())

    def mean_base_bandwidth(self) -> float:
        """Mean of the base bandwidths across paths (KB/s)."""
        if not self._paths:
            return 0.0
        return float(np.mean([p.base_bandwidth for p in self._paths.values()]))

    @classmethod
    def from_distribution(
        cls,
        server_ids: Iterable[int],
        distribution: BandwidthDistribution,
        rng: np.random.Generator,
        variability: Optional[BandwidthVariabilityModel] = None,
    ) -> "PathRegistry":
        """Draw one base bandwidth per server from ``distribution``.

        All paths share the same variability *model*; their base bandwidths
        differ, which is exactly how the paper constructs its simulated
        network (Section 3.2: "The bandwidth between the cache and the
        servers follows the sample distribution from the NLANR logs").
        A small floor keeps degenerate zero-bandwidth draws usable.
        """
        ids = list(server_ids)
        if not ids:
            raise ConfigurationError("server_ids must be non-empty")
        bandwidths = distribution.sample(len(ids), rng)
        paths = [
            NetworkPath(
                server_id=server_id,
                base_bandwidth=max(float(bandwidth), BANDWIDTH_FLOOR),
                variability=variability,
            )
            for server_id, bandwidth in zip(ids, bandwidths)
        ]
        return cls(paths)
