"""Plain-text reporting of experiment results.

The functions here turn :class:`~repro.sim.runner.SweepResult` and
:class:`~repro.sim.runner.PolicyComparison` objects into aligned text tables
of the kind the benchmark harness prints, mirroring the series each paper
figure plots.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.experiments import ExperimentResult
from repro.obs.timeline import MetricsTimeline
from repro.sim.metrics import SimulationMetrics
from repro.sim.runner import PolicyComparison, SweepResult

#: The metrics that correspond to the y-axes of the paper's figures.
FIGURE_METRICS: Dict[str, str] = {
    "traffic_reduction_ratio": "Traffic Reduction Ratio",
    "average_service_delay": "Average Service Delay (s)",
    "average_stream_quality": "Average Stream Quality",
    "total_added_value": "Total Added Value ($)",
}


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))


def format_sweep_table(sweep: SweepResult, metric_name: str, precision: int = 4) -> str:
    """Render one metric of a sweep as an aligned text table.

    The first column is the swept parameter; one column follows per policy,
    matching the curves in the corresponding paper figure.
    """
    policies = sweep.policies()
    header = [sweep.parameter_name] + policies
    rows: List[List[str]] = []
    for index, value in enumerate(sweep.parameter_values):
        row = [f"{value:.4g}"]
        for policy in policies:
            metric_value = getattr(sweep.metrics[policy][index], metric_name)
            row.append(f"{metric_value:.{precision}g}")
        rows.append(row)
    widths = [
        max(len(header[col]), max((len(r[col]) for r in rows), default=0))
        for col in range(len(header))
    ]
    lines = [_format_row(header, widths), _format_row(["-" * w for w in widths], widths)]
    lines.extend(_format_row(row, widths) for row in rows)
    return "\n".join(lines)


def format_comparison(comparison: PolicyComparison, precision: int = 4) -> str:
    """Render a policy comparison (all figure metrics, one row per policy)."""
    metric_names = list(FIGURE_METRICS)
    header = ["policy"] + [FIGURE_METRICS[name] for name in metric_names]
    rows: List[List[str]] = []
    for policy in comparison.policies():
        metrics = comparison.metrics_by_policy[policy]
        row = [policy] + [
            f"{getattr(metrics, name):.{precision}g}" for name in metric_names
        ]
        rows.append(row)
    widths = [
        max(len(header[col]), max((len(r[col]) for r in rows), default=0))
        for col in range(len(header))
    ]
    lines = [_format_row(header, widths), _format_row(["-" * w for w in widths], widths)]
    lines.extend(_format_row(row, widths) for row in rows)
    return "\n".join(lines)


def format_metrics(metrics: SimulationMetrics, precision: int = 4) -> str:
    """Render one metrics object as ``name: value`` lines."""
    lines = []
    for key, value in metrics.as_dict().items():
        lines.append(f"{key}: {value:.{precision}g}")
    return "\n".join(lines)


#: Human-readable names for the per-window fault state levels.
_FAULT_STATES = {0: "ok", 1: "degraded", 2: "failed"}


def format_timeline(
    timeline: MetricsTimeline, max_rows: int = 12, precision: int = 4
) -> str:
    """Render a :class:`~repro.obs.timeline.MetricsTimeline` as a table.

    One row per simulated-time window: request count, hit and byte-hit
    ratios, mean service delay, cache occupancy, evictions, reactive
    re-keys, and the window's fault state.  Timelines longer than
    ``max_rows`` are subsampled at an even stride (the final window is
    always shown) with a trailing note, so recovery curves stay readable
    at any window width.
    """
    count = timeline.num_windows
    if count == 0:
        return "(empty timeline)"
    series = timeline.series()
    starts = timeline.window_starts()
    stride = max(1, -(-count // max_rows))
    indices = list(range(0, count, stride))
    if indices[-1] != count - 1:
        indices.append(count - 1)
    header = ["window_start", "requests", "hit_ratio", "byte_hit",
              "mean_delay", "occupancy", "evictions", "rekeys", "fault"]
    rows: List[List[str]] = []
    for index in indices:
        rows.append([
            f"{starts[index]:.6g}",
            f"{int(series['requests'][index])}",
            f"{series['hit_ratio'][index]:.{precision}g}",
            f"{series['byte_hit_ratio'][index]:.{precision}g}",
            f"{series['mean_delay'][index]:.{precision}g}",
            f"{series['cache_occupancy'][index]:.{precision}g}",
            f"{int(series['evictions'][index])}",
            f"{int(series['reactive_rekeys'][index])}",
            _FAULT_STATES.get(int(series["fault_state"][index]), "?"),
        ])
    widths = [
        max(len(header[col]), max((len(r[col]) for r in rows), default=0))
        for col in range(len(header))
    ]
    lines = [_format_row(header, widths), _format_row(["-" * w for w in widths], widths)]
    lines.extend(_format_row(row, widths) for row in rows)
    if stride > 1:
        lines.append(f"({count} windows of {timeline.window_s:g} s, "
                     f"showing every {stride}th)")
    return "\n".join(lines)


def render_experiment(result: ExperimentResult) -> str:
    """Render an :class:`ExperimentResult` the way the benchmarks print it.

    Sweep-based experiments get one table per figure metric; scalar-valued
    experiments (the bandwidth-model figures and Table 1) get key/value
    lines.  Paper notes are appended so the console output is
    self-describing.
    """
    lines: List[str] = [f"== {result.experiment_id}: {result.title} =="]

    sweep = result.data.get("sweep")
    if isinstance(sweep, SweepResult):
        for metric_name, label in FIGURE_METRICS.items():
            lines.append("")
            lines.append(f"-- {label} --")
            lines.append(format_sweep_table(sweep, metric_name))

    sweeps_by_key = None
    for key in ("sweeps_by_alpha", "sweeps_by_e", "sweeps_by_setting"):
        if key in result.data:
            sweeps_by_key = (key, result.data[key])
    if sweeps_by_key is not None:
        key_name, surfaces = sweeps_by_key
        for parameter_value, surface in surfaces.items():
            lines.append("")
            lines.append(f"-- {key_name[10:] or 'value'} = {parameter_value} --")
            lines.append(format_sweep_table(surface, "traffic_reduction_ratio"))
            lines.append(format_sweep_table(surface, "average_service_delay"))

    comparisons = result.data.get("comparisons_by_setting")
    if comparisons:
        counters = result.data.get("reactive_counters", {})
        for label, comparison in comparisons.items():
            lines.append("")
            lines.append(f"-- setting = {label} --")
            lines.append(format_comparison(comparison))
            setting_counters = counters.get(label)
            if setting_counters:
                summary = ", ".join(
                    f"{policy}: {c['shifts']} shifts / {c['rekeys']} rekeys"
                    + (f" / {c['suppressed']} suppressed" if c["suppressed"] else "")
                    for policy, c in setting_counters.items()
                )
                lines.append(f"   reactive: {summary}")

    grid = result.data.get("comparisons")
    if isinstance(grid, dict):
        qoe = result.data.get("qoe", {})
        for outer_label, inner in grid.items():
            if not isinstance(inner, dict):
                continue
            for inner_label, comparison in inner.items():
                if not isinstance(comparison, PolicyComparison):
                    continue
                lines.append("")
                lines.append(f"-- {outer_label} / {inner_label} --")
                lines.append(format_comparison(comparison))
                cell_qoe = qoe.get(outer_label, {}).get(inner_label)
                if cell_qoe:
                    for policy, values in cell_qoe.items():
                        summary = ", ".join(
                            f"{name}={float(value):.4g}"
                            for name, value in values.items()
                        )
                        lines.append(f"   QoE[{policy}]: {summary}")

    scalar_keys = [
        "fraction_below_50",
        "fraction_below_100",
        "sample_count",
        "mean_bandwidth",
        "coefficient_of_variation",
        "fraction_in_half_band",
        "mean",
        "max_ratio",
    ]
    scalars = {key: result.data[key] for key in scalar_keys if key in result.data}
    if scalars:
        lines.append("")
        for key, value in scalars.items():
            lines.append(f"{key}: {float(value):.4g}")

    if "summary" in result.data:
        lines.append("")
        for key, value in dict(result.data["summary"]).items():
            lines.append(f"{key}: {float(value):.6g}")

    if "coefficients_of_variation" in result.data:
        lines.append("")
        for path, cov in result.data["coefficients_of_variation"].items():
            lines.append(f"cov[{path}]: {float(cov):.4g}")

    timelines = result.data.get("recovery_timelines")
    if timelines:
        window = result.data.get("outage_window")
        if window:
            lines.append("")
            lines.append(f"outage window: {float(window[0]):.6g} s .. "
                         f"{float(window[1]):.6g} s")
        for label, timeline in timelines.items():
            lines.append("")
            lines.append(f"-- recovery timeline: {label} --")
            lines.append(format_timeline(timeline))

    if result.notes:
        lines.append("")
        lines.append("Paper reference:")
        lines.extend(f"  {note}" for note in result.notes)
    return "\n".join(lines)
