"""GreedyDual-Size family of cost-aware baselines.

The related-work section of the paper credits two lines of cost-aware Web
caching that the network-aware policies generalise to streaming media:

* **GreedyDual-Size** [Cao & Irani, USITS 97] — each cached object carries a
  credit ``H = L + cost / size`` where ``L`` is an inflation value set to
  the credit of the most recently evicted object; the object with the
  lowest credit is evicted first.
* **Popularity-aware GreedyDual-Size** (GDSP) [Jin & Bestavros, ICDCS 00] —
  the same structure with the credit scaled by the object's observed
  request frequency, ``H = L + F · cost / size``.

Both are implemented here as whole-object policies on top of the shared
replacement engine, with a pluggable *cost model*:

* ``"uniform"`` — cost 1 per object (maximises object hit ratio),
* ``"size"`` — cost equal to the object size (maximises byte hit ratio,
  i.e. traffic reduction),
* ``"delay"`` — cost equal to the startup delay the cache saves for the
  object, ``[T·r − T·b]+ / b``, which injects the same network awareness
  the paper's PB/IB policies have and makes for an interesting ablation.
"""

from __future__ import annotations

from repro.core.policies.base import CachePolicy, PolicyContext
from repro.exceptions import ConfigurationError
from repro.units import positive_part
from repro.workload.catalog import MediaObject

#: The cost models GreedyDual-Size policies understand.
COST_MODELS = ("uniform", "size", "delay")


def _object_cost(obj: MediaObject, ctx: PolicyContext, cost_model: str) -> float:
    """Fetch cost of an object under the given cost model."""
    if cost_model == "uniform":
        return 1.0
    if cost_model == "size":
        return obj.size
    # "delay": the startup delay a miss would incur at the believed bandwidth.
    bandwidth = max(ctx.bandwidth, 1e-9)
    return positive_part(obj.size - obj.duration * bandwidth) / bandwidth


class GreedyDualSizePolicy(CachePolicy):
    """GreedyDual-Size: credit ``L + cost / size``, whole objects only.

    Parameters
    ----------
    cost_model:
        One of :data:`COST_MODELS`; the classic GreedyDual-Size uses
        ``"uniform"`` (then the credit is ``L + 1/size``, favouring small
        objects) or ``"size"`` (credit ``L + 1``, which degenerates to
        FIFO-with-inflation).
    """

    allows_partial = False

    def __init__(self, cost_model: str = "uniform", **kwargs):
        if cost_model not in COST_MODELS:
            raise ConfigurationError(
                f"unknown cost model {cost_model!r}; expected one of {COST_MODELS}"
            )
        super().__init__(**kwargs)
        self.cost_model = cost_model
        self.inflation = 0.0
        self.name = f"GDS({cost_model})"

    def credit(self, obj: MediaObject, ctx: PolicyContext) -> float:
        """The GreedyDual credit of the object, before inflation is added."""
        return _object_cost(obj, ctx, self.cost_model) / obj.size

    def utility(self, obj: MediaObject, ctx: PolicyContext) -> float:
        return self.inflation + self.credit(obj, ctx)

    def target_cache_bytes(self, obj: MediaObject, ctx: PolicyContext) -> float:
        return obj.size

    def on_evict(self, object_id: int, utility: float) -> None:
        # Classic GreedyDual aging: the inflation rises to the evicted
        # object's credit, so long-resident objects gradually lose ground.
        self.inflation = max(self.inflation, utility)

    def reset(self) -> None:
        super().reset()
        self.inflation = 0.0


class PopularityAwareGreedyDualSizePolicy(GreedyDualSizePolicy):
    """GDSP: GreedyDual-Size with the credit scaled by request frequency."""

    def __init__(self, cost_model: str = "uniform", **kwargs):
        super().__init__(cost_model=cost_model, **kwargs)
        self.name = f"GDSP({cost_model})"

    def credit(self, obj: MediaObject, ctx: PolicyContext) -> float:
        return ctx.frequency * _object_cost(obj, ctx, self.cost_model) / obj.size
