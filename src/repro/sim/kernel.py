"""The shared per-request service kernel behind all four replay drivers.

Every replay path in :mod:`repro.sim.simulator` — event calendar, fast,
columnar fast, columnar event — used to carry its own copy of the
per-request service sequence, hand-matched at "identical sequence points"
and guarded only by bit-identity tests.  This module is that sequence's
single home.  The drivers own *iteration* (trace order, auxiliary-event
merging, pre-drawn column access); the kernel owns *service*:

1. **window** — close due metrics-timeline windows,
2. **warmup** — flip from warm-up to measurement at the cutoff index,
3. **resolve** — object / delivery-path / cached-entry resolution,
4. **bandwidth** — origin bandwidth draw + last-mile bottleneck
   composition (``min(origin, uplinks, last-mile)``),
5. **belief** — estimator belief lookup + last-mile base cap,
6. **faults** — fault-injector interception (outages, retries, backoff),
7. **residency** — hierarchy residency / escalation, or flat store read,
8. **delivery** — streaming session or delivery-session arithmetic,
9. **metrics** — metric accumulation (measured requests only),
10. **policy** — policy admit / evict (skipped under a hierarchy, whose
    tiers run their own policies),
11. **passive** — passive bandwidth observation + reactive trigger,
12. **verify** — optional store-consistency verification.

:data:`KERNEL_STAGES` lists the stages in canonical order;
``tests/test_sim_kernel.py`` asserts that every driver emits them in that
order, per request, with identical traces across drivers.

The kernel has two entry points with bit-identical arithmetic:

* :func:`serve_request` — the scalar path, used per request by the
  event-calendar driver (and by every driver when a ``stage_observer``
  is installed, so instrumentation never perturbs the hot loop), and
* :func:`serve_batch` — the chunk-oriented path the three tight-loop
  drivers feed with ``[start, stop)`` runs of the trace.  Chunks are the
  seam for later vectorisation: a driver hands over the longest run of
  requests uninterrupted by auxiliary events, and the kernel is free to
  process it however it likes as long as the observable sequence is
  preserved.  Metric accumulators are *carried across chunks* on the
  context and merged into the collector exactly once
  (:meth:`KernelContext.finish`) — floating-point addition order is part
  of the bit-identity contract.

A :class:`KernelContext` is assembled once per run by
:func:`build_context` from the simulator's configured subsystems.  Each
subsystem exposes its seam through a ``kernel_hooks()`` method
(:class:`~repro.sim.faults.FaultInjector`,
:class:`~repro.sim.hierarchy.HierarchyEngine`,
:class:`~repro.sim.streaming.StreamingDeliveryEngine`,
:class:`~repro.sim.events.ReactiveRekeyer`,
:class:`~repro.obs.timeline.MetricsTimeline`) — adding a subsystem to
the simulator means adding one stage hook here, not four hand-matched
loop edits (see ``docs/architecture.md``).

All pre-draw logic also lives here (it used to be duplicated across the
loops): :func:`predraw_ratios` (batched bandwidth-variability draws),
:func:`last_mile_sequences` (per-request last-mile base / observed /
group), and :func:`pop_sequence` (per-request hierarchy pop affinity)
are resolved once by :func:`build_context` before replay starts, which
is what makes the composition bit-identical across drivers by
construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.sim.faults import stale_quality
from repro.trace.columnar import ColumnarTrace

#: The canonical per-request stage order.  A request's emitted stages are
#: always a subsequence of this tuple (stages whose subsystem is disabled,
#: or that a branch skips — e.g. ``policy`` on a failed fetch — do not
#: fire), and the emitted trace is identical across all four drivers.
KERNEL_STAGES = (
    "window",
    "warmup",
    "resolve",
    "bandwidth",
    "belief",
    "faults",
    "residency",
    "delivery",
    "metrics",
    "policy",
    "passive",
    "verify",
)

_INF = float("inf")


# ----------------------------------------------------------------------
# Pre-draw logic (one home; used by build_context only).
# ----------------------------------------------------------------------
def predraw_ratios(
    topology, rng: np.random.Generator, count: int
) -> Optional[np.ndarray]:
    """Draw all per-request variability ratios in one numpy batch.

    Only legal when every path shares one variability model whose batched
    draws consume the generator exactly like per-request draws
    (``iid_batch_equivalent``) — the batch is then elementwise
    IEEE-identical to the scalar draws it replaces, on *every* driver.
    Returns ``None`` otherwise, in which case the kernel falls back to
    per-request sampling from the live generator.
    """
    model = None
    for path in topology.paths:
        if model is None:
            model = path.variability
        elif path.variability is not model:
            return None
    if model is None or not getattr(model, "iid_batch_equivalent", False):
        return None
    if count == 0:
        return np.empty(0)
    return np.asarray(model.sample_ratio(rng, size=count), dtype=np.float64)


def last_mile_sequences(topology, trace, seed: tuple) -> Optional[tuple]:
    """Per-request last-mile ``(base, observed, group)`` sequences.

    Returns ``None`` when the topology's client cloud has no modeled
    last-mile paths — the kernel then skips the composition entirely,
    reproducing the pre-heterogeneity arithmetic exactly.

    Otherwise every request is resolved to its client's group path
    (``client_id % groups``) and three aligned lists are returned: the
    group's *base* bandwidth (what the cache believes its own last mile
    sustains — the cache knows its client side, so no estimator is
    involved), the *observed* last-mile bandwidth for that request (base
    modulated by the group's variability model), and the request's
    client-group index (consumed by the reactive rekeyer's per-group
    anchors; see :mod:`repro.sim.events`).  All draws come from a
    dedicated generator seeded with ``seed``, in request order, computed
    once per run *before* replay starts.
    """
    cloud = topology.clients
    paths = getattr(cloud, "paths", None)
    if not paths:
        return None
    total = len(trace)
    if isinstance(trace, ColumnarTrace):
        client_ids = trace.client_ids_array.astype(np.int64, copy=False)
    else:
        client_ids = np.fromiter(
            (request.client_id for request in trace), dtype=np.int64, count=total
        )
    groups = client_ids % len(paths)
    base_lut = np.array([path.base_bandwidth for path in paths], dtype=np.float64)
    base = base_lut[groups]

    rng = np.random.default_rng(seed)
    model = paths[0].variability
    shared = all(path.variability is model for path in paths)
    if shared and getattr(model, "iid_batch_equivalent", False) and total:
        ratios = np.asarray(model.sample_ratio(rng, size=total), dtype=np.float64)
        observed = base * ratios
        np.maximum(observed, 1.0, out=observed)
    else:
        observed = np.empty(total, dtype=np.float64)
        group_list = groups.tolist()
        for index in range(total):
            observed[index] = paths[group_list[index]].observed_bandwidth(rng)
    return base.tolist(), observed.tolist(), groups.tolist()


def pop_sequence(trace, num_pops: int) -> Optional[List[int]]:
    """Per-request pop indices (``client_id % num_pops``), resolved once.

    Mirrors the affinity rule of :func:`last_mile_sequences` (clients are
    pinned by id modulo the replica count).  Returns ``None`` for a
    single-pop hierarchy so the kernel skips the lookup entirely.
    """
    if num_pops <= 1:
        return None
    if isinstance(trace, ColumnarTrace):
        return (
            trace.client_ids_array.astype(np.int64, copy=False) % num_pops
        ).tolist()
    return [request.client_id % num_pops for request in trace]


# ----------------------------------------------------------------------
# Per-object resolution.
# ----------------------------------------------------------------------
def _make_entry(catalog_get, path_for, object_id: int) -> tuple:
    """Resolve one object to the kernel's cached per-object tuple.

    ``(obj, base_bw, size, duration, bitrate, quantum, value, server_id,
    path)`` — ``base_bw`` is immutable for the duration of a run (the
    floor from ``build_topology`` is applied before replay starts), so
    caching it is safe.
    """
    obj = catalog_get(object_id)
    path = path_for(obj)
    return (
        obj,
        path.base_bandwidth,
        obj.duration * obj.bitrate,
        obj.duration,
        obj.bitrate,
        1.0 / obj.layers,
        obj.value,
        obj.server_id,
        path,
    )


class _LazyEntries(dict):
    """Per-object entry cache that resolves objects on first touch.

    Used when the trace's object ids are not dense enough for the
    prefilled lookup list — ``entries[object_id]`` stays a plain
    subscript in the hot loop either way.
    """

    __slots__ = ("_catalog_get", "_path_for")

    def __init__(self, catalog_get, path_for):
        super().__init__()
        self._catalog_get = catalog_get
        self._path_for = path_for

    def __missing__(self, object_id):
        entry = _make_entry(self._catalog_get, self._path_for, object_id)
        self[object_id] = entry
        return entry


# ----------------------------------------------------------------------
# The per-run kernel context.
# ----------------------------------------------------------------------
class KernelContext:
    """Everything one run's service sequence needs, bound once.

    Built by :func:`build_context`; consumed by :func:`serve_request` /
    :func:`serve_batch`.  The ``m_*`` metric accumulators and the
    ``measuring`` / ``tl_boundary`` cursors are *run state* carried
    across driver chunks; everything else is read-only for the run.
    Call :meth:`finish` exactly once after the driver completes to merge
    the accumulated metrics into the collector.
    """

    __slots__ = (
        # Static bindings (read-only during replay).
        "warmup_cutoff",
        "verify_store",
        "verify_consistency",
        "store",
        "store_cached",
        "policy",
        "policy_on_request",
        "collector",
        "estimator_estimate",
        "estimator_observe",
        "rekeyer_request",
        "intercept",
        "record_unserved",
        "serve_stale",
        "stream_serve",
        "stream_failed",
        "stream_ids",
        "hier_serve",
        "hier_edge",
        "tl_close",
        "rng",
        "entries",
        "observed_seq",
        "ratios",
        "lm_base",
        "lm_observed",
        "lm_groups",
        "pops",
        "dense_bound",
        "stage_observer",
        # Run state (carried across chunks).
        "measuring",
        "tl_boundary",
        "m_requests",
        "m_bytes_cache",
        "m_bytes_server",
        "m_delay",
        "m_quality",
        "m_value",
        "m_hits",
        "m_immediate",
        "m_delayed",
        "m_delay_delayed",
        "m_failed",
        "m_stale",
        "m_retried",
        "m_retries",
        "warmup_count",
        "hits_by_object",
    )

    def snapshot_core(self) -> tuple:
        """The fourteen core accumulators, in ``MetricsCollector.snapshot``
        order — the payload of every metrics-timeline marker."""
        return (
            self.m_requests,
            self.m_bytes_cache,
            self.m_bytes_server,
            self.m_delay,
            self.m_quality,
            self.m_value,
            self.m_hits,
            self.m_immediate,
            self.m_delayed,
            self.m_delay_delayed,
            self.m_failed,
            self.m_stale,
            self.m_retried,
            self.m_retries,
        )

    def finish(self) -> None:
        """Merge the carried accumulators into the collector, once.

        The collector starts the measurement phase all-zero, so this
        single :meth:`~repro.sim.metrics.MetricsCollector.absorb` call
        is bit-identical to having recorded every request individually
        (adding a sum to ``0.0`` is exact).
        """
        collector = self.collector
        collector.measuring = self.measuring
        collector.absorb(
            requests=self.m_requests,
            bytes_from_cache=self.m_bytes_cache,
            bytes_from_server=self.m_bytes_server,
            delay_sum=self.m_delay,
            quality_sum=self.m_quality,
            value_sum=self.m_value,
            hits=self.m_hits,
            immediate=self.m_immediate,
            delayed=self.m_delayed,
            delay_sum_delayed=self.m_delay_delayed,
            warmup_requests=self.warmup_count,
            failed=self.m_failed,
            stale_served=self.m_stale,
            retried=self.m_retried,
            total_retries=self.m_retries,
            per_object_hits=self.hits_by_object,
        )


def build_context(
    *,
    catalog,
    trace,
    topology,
    policy,
    store,
    collector,
    estimator=None,
    rekeyer=None,
    injector=None,
    timeline=None,
    streaming=None,
    hierarchy=None,
    rng: np.random.Generator,
    mode: str,
    dense_bound: Optional[int],
    warmup_cutoff: int,
    verify_store: bool,
    num_pops: int = 1,
    client_cloud_seed: tuple = (0,),
    stage_observer=None,
) -> KernelContext:
    """Assemble the per-run :class:`KernelContext`.

    Binds each configured subsystem through its ``kernel_hooks()`` seam,
    resolves every pre-drawn sequence (variability ratios, last-mile
    draws, pop affinity), and — for dense-id columnar traces on a
    tight-loop ``mode`` — prefills the per-object entry table and the
    fully vectorised observed-bandwidth column.

    ``rekeyer`` is the *passive-reactive* rekeyer (already gated by the
    config); ``mode`` is the resolved replay path, which decides the
    entry-table representation.  ``stage_observer``, when given, is
    called as ``observer(index, stage)`` at every executed stage — the
    drivers then route each request through the scalar path so the hot
    loop never carries instrumentation branches.
    """
    catalog_get = catalog.get
    path_for = topology.path_for
    total = len(trace)

    ctx = KernelContext()
    ctx.warmup_cutoff = warmup_cutoff
    ctx.verify_store = verify_store
    ctx.store = store
    ctx.store_cached = store.cached_bytes
    ctx.policy = policy
    ctx.policy_on_request = policy.on_request
    ctx.collector = collector
    ctx.estimator_estimate = estimator.estimate if estimator is not None else None
    ctx.estimator_observe = estimator.observe if estimator is not None else None
    ctx.rng = rng
    ctx.dense_bound = dense_bound
    ctx.stage_observer = stage_observer

    rekeyer_hooks = rekeyer.kernel_hooks() if rekeyer is not None else None
    ctx.rekeyer_request = (
        rekeyer_hooks["observe_request"] if rekeyer_hooks is not None else None
    )

    fault_hooks = injector.kernel_hooks() if injector is not None else None
    if fault_hooks is not None:
        ctx.intercept = fault_hooks["intercept"]
        ctx.record_unserved = fault_hooks["record_unserved"]
        ctx.serve_stale = fault_hooks["serve_stale"]
    else:
        ctx.intercept = None
        ctx.record_unserved = None
        ctx.serve_stale = False

    stream_hooks = streaming.kernel_hooks() if streaming is not None else None
    if stream_hooks is not None:
        ctx.stream_serve = stream_hooks["serve"]
        ctx.stream_failed = stream_hooks["record_failed"]
        ctx.stream_ids = stream_hooks["stream_ids"]
    else:
        ctx.stream_serve = None
        ctx.stream_failed = None
        ctx.stream_ids = None

    hier_hooks = hierarchy.kernel_hooks() if hierarchy is not None else None
    if hier_hooks is not None:
        ctx.hier_serve = hier_hooks["serve"]
        ctx.hier_edge = hier_hooks["edge_cached"]
        ctx.verify_consistency = hier_hooks["verify_consistency"]
    else:
        ctx.hier_serve = None
        ctx.hier_edge = None
        ctx.verify_consistency = store.verify_consistency

    timeline_hooks = timeline.kernel_hooks() if timeline is not None else None
    if timeline_hooks is not None:
        ctx.tl_close = timeline_hooks["close"]
        ctx.tl_boundary = timeline_hooks["first_boundary"]
    else:
        ctx.tl_close = None
        ctx.tl_boundary = _INF

    # Pre-drawn sequences: one home for all four drivers.
    last_mile = last_mile_sequences(topology, trace, client_cloud_seed)
    ctx.lm_base, ctx.lm_observed, ctx.lm_groups = (
        last_mile if last_mile is not None else (None, None, None)
    )
    ctx.pops = pop_sequence(trace, num_pops) if hierarchy is not None else None

    ratio_array = predraw_ratios(topology, rng, total)
    ctx.ratios = ratio_array.tolist() if ratio_array is not None else None
    ctx.observed_seq = None

    dense = (
        mode in ("fast", "columnar", "columnar-event")
        and dense_bound is not None
        and isinstance(trace, ColumnarTrace)
    )
    if dense:
        # Resolve every distinct object once (dense ids, list-indexed)
        # and — when the variability model allows batched draws —
        # vectorise the whole observed-bandwidth column (elementwise
        # IEEE-identical to the scalar form).
        ids_array = trace.object_ids_array
        entries: List[Optional[tuple]] = [None] * (dense_bound + 1)
        for object_id in np.unique(ids_array).tolist() if total else []:
            entries[object_id] = _make_entry(catalog_get, path_for, object_id)
        ctx.entries = entries
        if ratio_array is not None and total:
            base_lut = np.zeros(dense_bound + 1, dtype=np.float64)
            for object_id, entry in enumerate(entries):
                if entry is not None:
                    base_lut[object_id] = entry[1]
            observed_array = base_lut[ids_array] * ratio_array
            np.maximum(observed_array, 1.0, out=observed_array)
            ctx.observed_seq = observed_array.tolist()
            ctx.ratios = None
    else:
        ctx.entries = _LazyEntries(catalog_get, path_for)

    # Run state.
    ctx.measuring = collector.measuring
    ctx.m_requests = 0
    ctx.m_bytes_cache = 0.0
    ctx.m_bytes_server = 0.0
    ctx.m_delay = 0.0
    ctx.m_quality = 0.0
    ctx.m_value = 0.0
    ctx.m_hits = 0
    ctx.m_immediate = 0
    ctx.m_delayed = 0
    ctx.m_delay_delayed = 0.0
    ctx.m_failed = 0
    ctx.m_stale = 0
    ctx.m_retried = 0
    ctx.m_retries = 0
    ctx.warmup_count = 0
    ctx.hits_by_object = {}
    return ctx


# ----------------------------------------------------------------------
# The scalar service path.
# ----------------------------------------------------------------------
def serve_request(ctx: KernelContext, index: int, object_id: int, now: float) -> None:
    """Serve one request through the canonical stage sequence.

    Bit-identical to one iteration of :func:`serve_batch` (the batch
    loop is this function with the context unpacked into locals).  Used
    per request by the event-calendar driver, and by every driver when
    ``ctx.stage_observer`` is installed.
    """
    observer = ctx.stage_observer

    if now >= ctx.tl_boundary:
        if observer is not None:
            observer(index, "window")
        ctx.tl_boundary = ctx.tl_close(now, ctx.snapshot_core())
    if index == ctx.warmup_cutoff:
        if observer is not None:
            observer(index, "warmup")
        ctx.measuring = True
        ctx.collector.measuring = True
    measuring = ctx.measuring

    if observer is not None:
        observer(index, "resolve")
    entry = ctx.entries[object_id]
    obj, base_bw, size, duration, bitrate, quantum, value, server_id, path = entry

    if observer is not None:
        observer(index, "bandwidth")
    observed_seq = ctx.observed_seq
    ratios = ctx.ratios
    if observed_seq is not None:
        observed = observed_seq[index]
    elif ratios is not None:
        observed = base_bw * ratios[index]
        if observed < 1.0:
            observed = 1.0
    else:
        observed = path.observed_bandwidth(ctx.rng)
    origin_observed = observed
    lm_observed = ctx.lm_observed
    if lm_observed is not None:
        cap = lm_observed[index]
        if cap < observed:
            observed = cap

    if observer is not None:
        observer(index, "belief")
    estimator_estimate = ctx.estimator_estimate
    if estimator_estimate is not None:
        believed = estimator_estimate(server_id)
    else:
        believed = base_bw
    prior_estimate = believed
    lm_base = ctx.lm_base
    if lm_base is not None:
        cap = lm_base[index]
        if cap < believed:
            believed = cap
    lm_groups = ctx.lm_groups

    disposition = None
    intercept = ctx.intercept
    if intercept is not None:
        if observer is not None:
            observer(index, "faults")
        disposition = intercept(
            now,
            server_id,
            lm_groups[index] if lm_groups is not None else None,
            origin_observed,
            lm_observed[index] if lm_observed is not None else None,
        )

    hier_serve = ctx.hier_serve
    pops = ctx.pops
    if disposition is None or disposition[0] == 0:  # FETCH_OK
        if disposition is not None:
            observed = disposition[1]
            origin_observed = disposition[2]
        if hier_serve is not None:
            if observer is not None:
                observer(index, "residency")
            cached, observed = hier_serve(
                pops[index] if pops is not None else 0,
                object_id,
                obj,
                size,
                observed,
                lm_observed[index] if lm_observed is not None else None,
                believed,
                prior_estimate,
                now,
                measuring,
            )
        stream_serve = ctx.stream_serve
        if stream_serve is not None and object_id in ctx.stream_ids:
            if observer is not None:
                observer(index, "delivery")
            s_cache, s_server, s_delay, s_quality, s_full = stream_serve(
                object_id,
                observed,
                now,
                measuring,
                disposition[3] if disposition is not None else 0.0,
            )
            if measuring:
                if observer is not None:
                    observer(index, "metrics")
                ctx.m_requests += 1
                ctx.m_bytes_cache += s_cache
                ctx.m_bytes_server += s_server
                ctx.m_delay += s_delay
                ctx.m_quality += s_quality
                if s_delay <= 0.0:
                    if s_full:
                        ctx.m_value += value
                    ctx.m_immediate += 1
                else:
                    ctx.m_delayed += 1
                    ctx.m_delay_delayed += s_delay
                if s_cache > 0:
                    ctx.m_hits += 1
                    hits_by_object = ctx.hits_by_object
                    hits_by_object[object_id] = hits_by_object.get(object_id, 0) + 1
                if disposition is not None and disposition[4]:
                    ctx.m_retried += 1
                    ctx.m_retries += disposition[4]
            else:
                ctx.warmup_count += 1
        elif measuring:
            if hier_serve is None:
                if observer is not None:
                    observer(index, "residency")
                cached = ctx.store_cached(object_id)

            if observer is not None:
                observer(index, "delivery")
            # DeliverySession.outcome(), with identical floating-point
            # operation order.
            if cached > size:
                cached = size
            missing = size - duration * observed - cached
            if missing <= 0:
                delay = 0.0
            elif observed <= 0:
                delay = _INF
            else:
                delay = missing / observed
            supported_rate = cached / duration + (observed if observed > 0.0 else 0.0)
            fraction = supported_rate / bitrate
            if fraction >= 1.0:
                quality = 1.0
            else:
                quality = int(fraction / quantum + 1e-9) * quantum
            if disposition is not None and disposition[3] > 0.0:
                # Retry backoff delays playout start.
                delay = delay + disposition[3]

            if observer is not None:
                observer(index, "metrics")
            # MetricsCollector.record(), in the same order.
            ctx.m_requests += 1
            ctx.m_bytes_cache += cached
            ctx.m_bytes_server += size - cached
            ctx.m_delay += delay
            ctx.m_quality += quality
            if delay <= 0.0:
                ctx.m_value += value
                ctx.m_immediate += 1
            else:
                ctx.m_delayed += 1
                ctx.m_delay_delayed += delay
            if cached > 0:
                ctx.m_hits += 1
                hits_by_object = ctx.hits_by_object
                hits_by_object[object_id] = hits_by_object.get(object_id, 0) + 1
            if disposition is not None and disposition[4]:
                ctx.m_retried += 1
                ctx.m_retries += disposition[4]
        else:
            ctx.warmup_count += 1

        if hier_serve is None:
            if observer is not None:
                observer(index, "policy")
            ctx.policy_on_request(obj, believed, now, ctx.store)
        estimator_observe = ctx.estimator_observe
        if estimator_observe is not None:
            if observer is not None:
                observer(index, "passive")
            estimator_observe(server_id, origin_observed)
            rekeyer_request = ctx.rekeyer_request
            if rekeyer_request is not None:
                rekeyer_request(
                    now,
                    server_id,
                    lm_groups[index] if lm_groups is not None else None,
                    prior_estimate,
                    observed,
                )
    else:
        # Fetch failed after the retry budget: serve the cached prefix
        # stale, or fail the request outright.  No policy stage — the
        # origin is unreachable, so there is nothing to fetch or admit.
        if observer is not None:
            observer(index, "residency")
        hier_edge = ctx.hier_edge
        if hier_edge is not None:
            cached = hier_edge(pops[index] if pops is not None else 0, object_id)
        else:
            cached = ctx.store_cached(object_id)
        if observer is not None:
            observer(index, "delivery")
        if cached > size:
            cached = size
        stale = ctx.serve_stale and cached > 0.0
        ctx.record_unserved(stale)
        if measuring:
            if observer is not None:
                observer(index, "metrics")
            waited = disposition[3]
            ctx.m_requests += 1
            if stale:
                sq = stale_quality(cached, duration, bitrate, quantum)
                ctx.m_bytes_cache += cached
                ctx.m_quality += sq
                ctx.m_hits += 1
                hits_by_object = ctx.hits_by_object
                hits_by_object[object_id] = hits_by_object.get(object_id, 0) + 1
                ctx.m_stale += 1
            else:
                sq = 0.0
                ctx.m_failed += 1
            ctx.m_delay += waited
            ctx.m_delayed += 1
            ctx.m_delay_delayed += waited
            if disposition[4]:
                ctx.m_retried += 1
                ctx.m_retries += disposition[4]
            stream_failed = ctx.stream_failed
            if stream_failed is not None and object_id in ctx.stream_ids:
                stream_failed(waited, sq)
        else:
            ctx.warmup_count += 1
        estimator_observe = ctx.estimator_observe
        if estimator_observe is not None:
            if observer is not None:
                observer(index, "passive")
            estimator_observe(server_id, disposition[2])
            rekeyer_request = ctx.rekeyer_request
            if rekeyer_request is not None:
                rekeyer_request(
                    now,
                    server_id,
                    lm_groups[index] if lm_groups is not None else None,
                    prior_estimate,
                    disposition[1],
                )
    if ctx.verify_store:
        if observer is not None:
            observer(index, "verify")
        if not ctx.verify_consistency():
            raise AssertionError(
                "cache store accounting became inconsistent "
                f"after request {index} (object {object_id})"
            )


# ----------------------------------------------------------------------
# The chunk-oriented service path.
# ----------------------------------------------------------------------
def serve_batch(
    ctx: KernelContext,
    ids: Sequence[int],
    times: Sequence[float],
    start: int,
    stop: int,
) -> None:
    """Serve the trace run ``[start, stop)`` through the kernel.

    The drivers guarantee no auxiliary event is due inside the run, so
    the kernel owns the whole chunk: the context is unpacked into locals
    once per chunk, the per-request sequence is the inlined twin of
    :func:`serve_request` (same floating-point operation order — the
    bit-identity contract), and the carried accumulators are written
    back once at the end.  With a ``stage_observer`` installed the chunk
    is routed through the scalar path instead, so the hot loop never
    pays an instrumentation branch.
    """
    if stop <= start:
        return
    if ctx.stage_observer is not None:
        for index in range(start, stop):
            serve_request(ctx, index, ids[index], times[index])
        return

    # Unpack the context once per chunk.
    warmup_cutoff = ctx.warmup_cutoff
    verify_store = ctx.verify_store
    verify_consistency = ctx.verify_consistency
    store = ctx.store
    store_cached = ctx.store_cached
    policy_on_request = ctx.policy_on_request
    collector = ctx.collector
    estimator_estimate = ctx.estimator_estimate
    estimator_observe = ctx.estimator_observe
    rekeyer_request = ctx.rekeyer_request
    intercept = ctx.intercept
    record_unserved = ctx.record_unserved
    serve_stale = ctx.serve_stale
    stream_serve = ctx.stream_serve
    stream_failed = ctx.stream_failed
    stream_ids = ctx.stream_ids
    hier_serve = ctx.hier_serve
    hier_edge = ctx.hier_edge
    tl_close = ctx.tl_close
    rng = ctx.rng
    entries = ctx.entries
    observed_seq = ctx.observed_seq
    ratios = ctx.ratios
    lm_base = ctx.lm_base
    lm_observed = ctx.lm_observed
    lm_groups = ctx.lm_groups
    pops = ctx.pops
    inf = _INF

    measuring = ctx.measuring
    tl_boundary = ctx.tl_boundary
    m_requests = ctx.m_requests
    m_bytes_cache = ctx.m_bytes_cache
    m_bytes_server = ctx.m_bytes_server
    m_delay = ctx.m_delay
    m_quality = ctx.m_quality
    m_value = ctx.m_value
    m_hits = ctx.m_hits
    m_immediate = ctx.m_immediate
    m_delayed = ctx.m_delayed
    m_delay_delayed = ctx.m_delay_delayed
    m_failed = ctx.m_failed
    m_stale = ctx.m_stale
    m_retried = ctx.m_retried
    m_retries = ctx.m_retries
    warmup_count = ctx.warmup_count
    hits_by_object = ctx.hits_by_object

    id_run = ids if start == 0 and stop == len(ids) else ids[start:stop]
    for index, object_id in enumerate(id_run, start):
        req_time = times[index]
        if req_time >= tl_boundary:
            tl_boundary = tl_close(
                req_time,
                (
                    m_requests,
                    m_bytes_cache,
                    m_bytes_server,
                    m_delay,
                    m_quality,
                    m_value,
                    m_hits,
                    m_immediate,
                    m_delayed,
                    m_delay_delayed,
                    m_failed,
                    m_stale,
                    m_retried,
                    m_retries,
                ),
            )
        if index == warmup_cutoff:
            measuring = True
            collector.measuring = True

        entry = entries[object_id]
        obj, base_bw, size, duration, bitrate, quantum, value, server_id, path = entry

        if observed_seq is not None:
            observed = observed_seq[index]
        elif ratios is not None:
            observed = base_bw * ratios[index]
            if observed < 1.0:
                observed = 1.0
        else:
            observed = path.observed_bandwidth(rng)
        origin_observed = observed
        if lm_observed is not None:
            cap = lm_observed[index]
            if cap < observed:
                observed = cap

        if estimator_estimate is not None:
            believed = estimator_estimate(server_id)
        else:
            believed = base_bw
        prior_estimate = believed
        if lm_base is not None:
            cap = lm_base[index]
            if cap < believed:
                believed = cap

        disposition = None
        if intercept is not None:
            disposition = intercept(
                req_time,
                server_id,
                lm_groups[index] if lm_groups is not None else None,
                origin_observed,
                lm_observed[index] if lm_observed is not None else None,
            )

        if disposition is None or disposition[0] == 0:  # FETCH_OK
            if disposition is not None:
                observed = disposition[1]
                origin_observed = disposition[2]
            if hier_serve is not None:
                cached, observed = hier_serve(
                    pops[index] if pops is not None else 0,
                    object_id,
                    obj,
                    size,
                    observed,
                    lm_observed[index] if lm_observed is not None else None,
                    believed,
                    prior_estimate,
                    req_time,
                    measuring,
                )
            if stream_serve is not None and object_id in stream_ids:
                # Segment-aware session through the shared streaming
                # engine; the accumulation below mirrors
                # MetricsCollector.record_streaming() operation-for-
                # operation.
                s_cache, s_server, s_delay, s_quality, s_full = stream_serve(
                    object_id,
                    observed,
                    req_time,
                    measuring,
                    disposition[3] if disposition is not None else 0.0,
                )
                if measuring:
                    m_requests += 1
                    m_bytes_cache += s_cache
                    m_bytes_server += s_server
                    m_delay += s_delay
                    m_quality += s_quality
                    if s_delay <= 0.0:
                        if s_full:
                            m_value += value
                        m_immediate += 1
                    else:
                        m_delayed += 1
                        m_delay_delayed += s_delay
                    if s_cache > 0:
                        m_hits += 1
                        hits_by_object[object_id] = (
                            hits_by_object.get(object_id, 0) + 1
                        )
                    if disposition is not None and disposition[4]:
                        m_retried += 1
                        m_retries += disposition[4]
                else:
                    warmup_count += 1
            elif measuring:
                if hier_serve is None:
                    cached = store_cached(object_id)

                # DeliverySession.outcome(), inlined with identical
                # floating-point operation order.
                if cached > size:
                    cached = size
                missing = size - duration * observed - cached
                if missing <= 0:
                    delay = 0.0
                elif observed <= 0:
                    delay = inf
                else:
                    delay = missing / observed
                supported_rate = cached / duration + (
                    observed if observed > 0.0 else 0.0
                )
                fraction = supported_rate / bitrate
                if fraction >= 1.0:
                    quality = 1.0
                else:
                    quality = int(fraction / quantum + 1e-9) * quantum
                if disposition is not None and disposition[3] > 0.0:
                    # Retry backoff delays playout start.
                    delay = delay + disposition[3]

                # MetricsCollector.record(), inlined in the same order.
                m_requests += 1
                m_bytes_cache += cached
                m_bytes_server += size - cached
                m_delay += delay
                m_quality += quality
                if delay <= 0.0:
                    m_value += value
                    m_immediate += 1
                else:
                    m_delayed += 1
                    m_delay_delayed += delay
                if cached > 0:
                    m_hits += 1
                    hits_by_object[object_id] = hits_by_object.get(object_id, 0) + 1
                if disposition is not None and disposition[4]:
                    m_retried += 1
                    m_retries += disposition[4]
            else:
                warmup_count += 1

            if hier_serve is None:
                policy_on_request(obj, believed, req_time, store)
            if estimator_observe is not None:
                estimator_observe(server_id, origin_observed)
                if rekeyer_request is not None:
                    rekeyer_request(
                        req_time,
                        server_id,
                        lm_groups[index] if lm_groups is not None else None,
                        prior_estimate,
                        observed,
                    )
        else:
            # Fetch failed after the retry budget: serve the cached
            # prefix stale, or fail the request outright.  No
            # policy_on_request — the origin is unreachable, so there
            # is nothing to fetch or admit.
            if hier_edge is not None:
                cached = hier_edge(
                    pops[index] if pops is not None else 0, object_id
                )
            else:
                cached = store_cached(object_id)
            if cached > size:
                cached = size
            stale = serve_stale and cached > 0.0
            record_unserved(stale)
            if measuring:
                waited = disposition[3]
                m_requests += 1
                if stale:
                    sq = stale_quality(cached, duration, bitrate, quantum)
                    m_bytes_cache += cached
                    m_quality += sq
                    m_hits += 1
                    hits_by_object[object_id] = hits_by_object.get(object_id, 0) + 1
                    m_stale += 1
                else:
                    sq = 0.0
                    m_failed += 1
                m_delay += waited
                m_delayed += 1
                m_delay_delayed += waited
                if disposition[4]:
                    m_retried += 1
                    m_retries += disposition[4]
                if stream_failed is not None and object_id in stream_ids:
                    stream_failed(waited, sq)
            else:
                warmup_count += 1
            if estimator_observe is not None:
                estimator_observe(server_id, disposition[2])
                if rekeyer_request is not None:
                    rekeyer_request(
                        req_time,
                        server_id,
                        lm_groups[index] if lm_groups is not None else None,
                        prior_estimate,
                        disposition[1],
                    )
        if verify_store and not verify_consistency():
            raise AssertionError(
                "cache store accounting became inconsistent "
                f"after request {index} (object {object_id})"
            )

    # Write the carried state back for the next chunk / finish().
    ctx.measuring = measuring
    ctx.tl_boundary = tl_boundary
    ctx.m_requests = m_requests
    ctx.m_bytes_cache = m_bytes_cache
    ctx.m_bytes_server = m_bytes_server
    ctx.m_delay = m_delay
    ctx.m_quality = m_quality
    ctx.m_value = m_value
    ctx.m_hits = m_hits
    ctx.m_immediate = m_immediate
    ctx.m_delayed = m_delayed
    ctx.m_delay_delayed = m_delay_delayed
    ctx.m_failed = m_failed
    ctx.m_stale = m_stale
    ctx.m_retried = m_retried
    ctx.m_retries = m_retries
    ctx.warmup_count = warmup_count
    ctx.hits_by_object = hits_by_object
