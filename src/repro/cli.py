"""Command-line front-end: ``repro-sim`` / ``python -m repro``.

Three sub-commands cover the common uses:

* ``repro-sim run`` — run one policy on a Table 1-style workload and print
  the headline metrics,
* ``repro-sim experiment`` — regenerate one of the paper's figures
  (``fig2`` … ``fig12`` or ``tab1``) and print its series,
* ``repro-sim ingest`` — parse a real proxy access log (Squid native or
  Common/Combined Log Format) into a columnar trace, print a
  catalog-sizing summary, optionally archive the trace as ``.npz``
  (``--append`` stitches rolling multi-day segments onto an existing
  archive) and run a policy comparison on the ingested workload.

``repro-sim run`` also exposes the bandwidth-knowledge model:
``--knowledge passive`` switches policies from oracle bandwidth to the
passive estimator, ``--remeasure-every SECONDS`` adds periodic bandwidth
re-measurement between requests, and ``--reactive-threshold FRACTION``
re-keys the policy heap the moment a believed bandwidth shifts — probe
driven by default, with ``--reactive-passive`` extending the trigger to
every request's passive observation, ``--reactive-hysteresis`` bounding
churn with a re-arm band, and ``--reactive-rekey-cap`` capping re-keys
per server (see ``docs/events.md``).  ``--client-clouds GROUPS`` (on ``run`` and on
``ingest --compare``) models per-client last-mile bandwidth — one
cache-to-client path per client group, homogeneous with
``--client-bandwidth`` or NLANR-heterogeneous by default (see
``docs/clients.md``).  The ``run --fault-*`` family injects origin
outages and bandwidth flaps with retry/timeout/serve-stale degradation
(``docs/faults.md``); ``repro-sim experiment faults`` runs the matching
ablation.  ``run --streaming-fraction`` marks that share of the catalog
as media streams delivered as segment-wise sessions with partial-object
(prefix) caching and per-session QoE metrics — ``--streaming-whole-object``
flips the ablation baseline, and ``repro-sim experiment streaming`` runs
the full prefix-vs-whole grid (``docs/streaming.md``).  ``ingest
--max-errors N`` tolerates up to ``N`` malformed log lines instead of
giving up on the first one.

Observability (``docs/observability.md``): ``run --metrics-out`` records
a windowed metrics timeline (``--metrics-window`` sets the bucket
width), ``run --trace-out`` writes a structured JSONL event trace
(``--trace-level``/``--trace-sample`` filter it), and ``run --profile``
prints a per-stage wall-clock breakdown.  The global ``-v``/``--quiet``
flags steer the stderr diagnostics through :mod:`repro.obs.log`.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Callable, Dict, Optional, Sequence

from repro.analysis import experiments as exp
from repro.analysis.report import format_timeline, render_experiment
from repro.core.policies import PolicySpec, make_policy
from repro.network.distributions import NLANRBandwidthDistribution
from repro.obs import ObservabilityConfig
from repro.obs.log import configure as _configure_logging
from repro.obs.log import get_logger
from repro.network.variability import (
    ConstantVariability,
    MeasuredPathVariability,
    NLANRRatioVariability,
)
from repro.sim.config import BandwidthKnowledge, ClientCloudConfig, SimulationConfig
from repro.sim.events import RemeasurementConfig
from repro.sim.faults import FaultConfig
from repro.sim.simulator import REPLAY_PATHS, ProxyCacheSimulator
from repro.sim.streaming import StreamingConfig
from repro.workload.gismo import GismoWorkloadGenerator, WorkloadConfig

#: Experiment name to entry-point mapping for the ``experiment`` sub-command.
EXPERIMENTS: Dict[str, Callable[..., exp.ExperimentResult]] = {
    "fig2": exp.experiment_fig2_bandwidth_distribution,
    "fig3": exp.experiment_fig3_bandwidth_variability,
    "fig4": exp.experiment_fig4_measured_paths,
    "fig5": exp.experiment_fig5_constant_bandwidth,
    "fig6": exp.experiment_fig6_zipf_sweep,
    "fig7": exp.experiment_fig7_high_variability,
    "fig8": exp.experiment_fig8_low_variability,
    "fig9": exp.experiment_fig9_estimator_sweep,
    "fig10": exp.experiment_fig10_value_constant,
    "fig11": exp.experiment_fig11_value_variable,
    "fig12": exp.experiment_fig12_value_estimator,
    "faults": exp.experiment_fault_tolerance,
    "hetero": exp.experiment_client_heterogeneity,
    "hierarchy": exp.experiment_hierarchy,
    "reactive": exp.experiment_reactive_rekeying,
    "streaming": exp.experiment_streaming_delivery,
    "tab1": exp.experiment_table1_workload,
}

VARIABILITY_MODELS = {
    "constant": ConstantVariability,
    "nlanr": NLANRRatioVariability,
    "measured": lambda: MeasuredPathVariability("average"),
}

#: CLI diagnostics go through the shared ``repro`` logger so ``-v`` /
#: ``--quiet`` control them uniformly (stdout results are plain prints).
_log = get_logger("cli")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Network-aware partial caching simulator (Jin et al., ICDCS 2002).",
    )
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="show debug diagnostics on stderr (repeatable)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress notes and warnings on stderr "
                             "(errors still print)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run one policy and print its metrics")
    run.add_argument("--policy", default="PB", help="IF, PB, IB, PB-V, IB-V, LRU, LFU")
    run.add_argument("--estimator-e", type=float, default=None,
                     help="bandwidth under-estimation factor for PB/PB-V")
    run.add_argument("--cache-gb", type=float, default=8.0, help="cache size in GB")
    run.add_argument("--scale", type=float, default=0.1,
                     help="fraction of the paper's workload volume")
    run.add_argument("--variability", choices=sorted(VARIABILITY_MODELS), default="constant")
    run.add_argument("--knowledge", choices=("oracle", "passive"), default="oracle",
                     help="how the cache learns path bandwidth: exact long-term "
                          "averages (oracle) or passive per-transfer estimates")
    run.add_argument("--remeasure-every", type=float, default=None, metavar="SECONDS",
                     help="periodically re-measure every path's bandwidth between "
                          "requests on this cadence (feeds the passive estimator; "
                          "implies the event-capable replay path)")
    run.add_argument("--reactive-threshold", type=float, default=None, metavar="FRACTION",
                     help="re-key the policy's heap entries as soon as a path's "
                          "believed bandwidth shifts by more than this fraction "
                          "(requires --knowledge passive plus --remeasure-every "
                          "and/or --reactive-passive; see docs/events.md)")
    run.add_argument("--reactive-passive", action="store_true",
                     help="let every request's passive bandwidth observation "
                          "drive reactive re-keying too, not only periodic "
                          "probes (requires --reactive-threshold)")
    run.add_argument("--reactive-hysteresis", type=float, default=None,
                     metavar="FRACTION",
                     help="re-arm band for reactive re-keying: after a re-key "
                          "the shifted path must return within this fraction of "
                          "its new anchor before it may trigger again "
                          "(bounds churn under oscillating bandwidth)")
    run.add_argument("--reactive-rekey-cap", type=int, default=None, metavar="N",
                     help="hard per-server budget of reactive re-keys per run; "
                          "shifts past the budget are counted but not applied")
    run.add_argument("--client-clouds", type=int, default=None, metavar="GROUPS",
                     help="model per-client last-mile bandwidth: the workload gets "
                          "this many distinct clients, hashed into as many last-mile "
                          "groups, each with its own cache-to-client path "
                          "(see docs/clients.md)")
    run.add_argument("--client-bandwidth", type=float, default=None, metavar="KBPS",
                     help="homogeneous last-mile base bandwidth for --client-clouds; "
                          "default draws one base per group from the NLANR "
                          "distribution (heterogeneous clouds)")
    run.add_argument("--fault-origin-outages", type=int, default=0, metavar="N",
                     help="inject this many random origin-server outages "
                          "(bandwidth to one server drops to zero for the "
                          "episode; see docs/faults.md)")
    run.add_argument("--fault-bandwidth-flaps", type=int, default=0, metavar="N",
                     help="inject this many random origin bandwidth flaps "
                          "(one path collapses to --fault-severity of its base)")
    run.add_argument("--fault-link-flaps", type=int, default=0, metavar="N",
                     help="inject this many random last-mile link flaps "
                          "(requires --client-clouds)")
    run.add_argument("--fault-mean-duration", type=float, default=600.0,
                     metavar="SECONDS",
                     help="mean episode duration for the random faults "
                          "(exponentially distributed)")
    run.add_argument("--fault-severity", type=float, default=0.1, metavar="FRACTION",
                     help="bandwidth multiplier a flapping path collapses to")
    run.add_argument("--fault-timeout-factor", type=float, default=4.0, metavar="X",
                     help="a fetch times out when the degraded transfer would "
                          "take more than X times its expected time")
    run.add_argument("--fault-max-retries", type=int, default=2, metavar="N",
                     help="retries per timed-out fetch (exponential backoff)")
    run.add_argument("--fault-backoff", type=float, default=1.0, metavar="SECONDS",
                     help="base backoff delay before the first retry")
    run.add_argument("--fault-no-serve-stale", action="store_true",
                     help="fail requests to unreachable origins outright "
                          "instead of serving the cached prefix stale")
    run.add_argument("--fault-seed", type=int, default=0,
                     help="seed of the dedicated fault random stream")
    run.add_argument("--streaming-fraction", type=float, default=None,
                     metavar="FRACTION",
                     help="treat this fraction of the catalog as media streams "
                          "fetched as segment-wise sessions with partial-object "
                          "(prefix) caching and per-session QoE metrics "
                          "(see docs/streaming.md); enables streaming delivery")
    run.add_argument("--streaming-whole-object", action="store_true",
                     help="ablation: cache selected streams whole-or-nothing "
                          "instead of as segment-quantised prefixes "
                          "(requires --streaming-fraction)")
    run.add_argument("--streaming-segment-kb", type=float, default=256.0,
                     metavar="KB",
                     help="base segment size for the streaming segmentation "
                          "scheme (segments grow exponentially from this)")
    run.add_argument("--streaming-prefetch", type=int, default=1, metavar="N",
                     help="extra segments prefetched past each admission "
                          "target while a session is playing")
    run.add_argument("--streaming-abandon-after", type=float, default=60.0,
                     metavar="SECONDS",
                     help="a session abandons rather than wait longer than "
                          "this for full-quality startup (it degrades to a "
                          "sustainable layer subset first when possible)")
    run.add_argument("--tiers", type=int, default=None, metavar="N",
                     help="replay against an N-tier cache hierarchy (edge pop "
                          "-> parents -> origin) instead of one proxy; each "
                          "tier runs its own cache and policy instance "
                          "(see docs/hierarchy.md)")
    run.add_argument("--tier-cache-kb", default=None, metavar="KB[,KB...]",
                     help="per-tier cache capacities for --tiers, edge first "
                          "(one value is reused for every tier)")
    run.add_argument("--tier-uplink", default=None, metavar="KBPS[,KBPS...]",
                     help="per-tier uplink bandwidths toward the next tier "
                          "(default: unconstrained inter-tier links)")
    run.add_argument("--pops", type=int, default=1, metavar="N",
                     help="edge pops in the fleet; clients are pinned to pops "
                          "by id (requires --tiers; widens the workload to at "
                          "least N clients)")
    run.add_argument("--sibling-lookup", action="store_true",
                     help="ICP-style whole-object lookup at the other pops' "
                          "edge caches before parent escalation "
                          "(requires --pops >= 2)")
    run.add_argument("--sibling-bandwidth", type=float, default=None,
                     metavar="KBPS",
                     help="bandwidth of a sibling-served transfer "
                          "(default: unconstrained)")
    run.add_argument("--shards", type=int, default=None, metavar="N",
                     help="partition the trace into N client-group shards and "
                          "replay each in its own worker process, then merge "
                          "deterministically (incompatible with "
                          "--sibling-lookup)")
    run.add_argument("--metrics-out", default=None, metavar="FILE",
                     help="record a windowed metrics timeline and write it to "
                          "this JSON file (also prints a short table; see "
                          "docs/observability.md)")
    run.add_argument("--metrics-window", type=float, default=60.0,
                     metavar="SECONDS",
                     help="simulated-time window width for --metrics-out")
    run.add_argument("--trace-out", default=None, metavar="FILE",
                     help="write a structured JSONL event trace (admissions, "
                          "evictions, re-keys, fault episodes, retries) to "
                          "this file")
    run.add_argument("--trace-level", choices=("info", "debug"), default="info",
                     help="lowest event level kept by --trace-out (debug adds "
                          "per-object cache admissions/evictions and retries)")
    run.add_argument("--trace-sample", type=float, default=1.0,
                     metavar="FRACTION",
                     help="deterministically keep this fraction of sampled "
                          "trace events (run-start/run-end are always kept)")
    run.add_argument("--profile", action="store_true",
                     help="time the run's stages (workload draw, topology "
                          "build, replay, policy ops, estimator, fault "
                          "evaluation) and print a wall-clock breakdown")
    run.add_argument("--replay", choices=REPLAY_PATHS, default=None,
                     metavar="PATH",
                     help="force a specific replay driver instead of "
                          f"auto-selection: one of {', '.join(REPLAY_PATHS)} "
                          "(all drivers produce bit-identical metrics; "
                          "'fast' and 'columnar' reject runs that schedule "
                          "auxiliary events, and the columnar drivers "
                          "require the dense-id columnar trace the CLI "
                          "builds)")
    run.add_argument("--seed", type=int, default=0)

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's figures/tables"
    )
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))
    experiment.add_argument("--scale", type=float, default=None,
                            help="workload scale (simulation experiments only)")
    experiment.add_argument("--runs", type=int, default=None,
                            help="number of runs to average (simulation experiments only)")
    experiment.add_argument("--jobs", "-j", type=int, default=1,
                            help="worker processes for the simulation runs "
                                 "(-1 = one per CPU; simulation experiments only)")
    experiment.add_argument("--seed", type=int, default=0)

    ingest = subparsers.add_parser(
        "ingest", help="turn a proxy access log into a columnar request trace"
    )
    ingest.add_argument("logfile", help="Squid native or Common/Combined Log Format file")
    ingest.add_argument("--format", choices=("auto", "squid", "clf"), default="auto",
                        help="log format (default: probe the first lines)")
    ingest.add_argument("--methods", default="GET",
                        help="comma-separated HTTP methods to keep ('*' keeps all)")
    ingest.add_argument("--max-status", type=int, default=399,
                        help="highest HTTP status code to keep")
    ingest.add_argument("--bitrate", type=float, default=None,
                        help="CBR bitrate (KB/s) used to derive object durations")
    ingest.add_argument("--max-errors", type=int, default=None, metavar="N",
                        help="abort once more than N lines fail to parse "
                             "(default: tolerate any number; malformed lines "
                             "are always counted and the first few quoted in "
                             "the summary)")
    ingest.add_argument("--out", default=None,
                        help="write the ingested trace to this .npz file")
    ingest.add_argument("--append", action="store_true",
                        help="stitch the ingested trace onto an existing --out "
                             "archive (the new segment is shifted to start where "
                             "the archived trace ends, preserving its spacing)")
    ingest.add_argument("--compare", action="store_true",
                        help="run compare_policies on the ingested workload")
    ingest.add_argument("--policies", default="PB,IB,LRU",
                        help="comma-separated policies for --compare")
    ingest.add_argument("--cache-gb", type=float, default=None,
                        help="cache size for --compare (default: 10%% of unique bytes)")
    ingest.add_argument("--client-clouds", type=int, default=None, metavar="GROUPS",
                        help="for --compare: hash the log's real client addresses "
                             "into this many last-mile groups, each with its own "
                             "cache-to-client path (see docs/clients.md)")
    ingest.add_argument("--client-bandwidth", type=float, default=None, metavar="KBPS",
                        help="homogeneous last-mile base bandwidth for "
                             "--client-clouds; default draws per group from the "
                             "NLANR distribution")
    ingest.add_argument("--runs", type=int, default=1,
                        help="runs to average for --compare")
    ingest.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes for --compare (-1 = one per CPU)")
    ingest.add_argument("--seed", type=int, default=0)
    return parser


def _client_cloud_config(args: argparse.Namespace) -> Optional[ClientCloudConfig]:
    """Build a :class:`ClientCloudConfig` from the shared CLI flags."""
    if args.client_clouds is None:
        if args.client_bandwidth is not None:
            _log.error("--client-bandwidth requires --client-clouds")
            raise SystemExit(2)
        return None
    if args.client_bandwidth is not None:
        return ClientCloudConfig(
            groups=args.client_clouds, bandwidth=args.client_bandwidth
        )
    return ClientCloudConfig(
        groups=args.client_clouds, distribution=NLANRBandwidthDistribution()
    )


def _fault_config(args: argparse.Namespace) -> Optional[FaultConfig]:
    """Build a :class:`FaultConfig` from the ``run --fault-*`` flags."""
    if not (args.fault_origin_outages or args.fault_bandwidth_flaps
            or args.fault_link_flaps):
        return None
    if args.fault_link_flaps and args.client_clouds is None:
        _log.error("--fault-link-flaps requires --client-clouds (there is no "
                   "modeled last mile to fail)")
        raise SystemExit(2)
    return FaultConfig(
        random_origin_outages=args.fault_origin_outages,
        random_bandwidth_flaps=args.fault_bandwidth_flaps,
        random_link_flaps=args.fault_link_flaps,
        mean_duration_s=args.fault_mean_duration,
        severity=args.fault_severity,
        seed=args.fault_seed,
        timeout_factor=args.fault_timeout_factor,
        max_retries=args.fault_max_retries,
        backoff_base_s=args.fault_backoff,
        serve_stale=not args.fault_no_serve_stale,
    )


def _streaming_config(args: argparse.Namespace) -> Optional[StreamingConfig]:
    """Build a :class:`StreamingConfig` from the ``run --streaming-*`` flags."""
    if args.streaming_fraction is None:
        if args.streaming_whole_object:
            _log.error("--streaming-whole-object requires --streaming-fraction")
            raise SystemExit(2)
        return None
    return StreamingConfig(
        fraction=args.streaming_fraction,
        prefix_caching=not args.streaming_whole_object,
        base_segment_kb=args.streaming_segment_kb,
        prefetch_segments=args.streaming_prefetch,
        abandon_after_s=args.streaming_abandon_after,
        seed=args.seed,
    )


def _parse_tier_values(raw: Optional[str], tiers: int, flag: str,
                       default: float) -> list:
    """Expand a comma-separated per-tier flag to exactly ``tiers`` floats."""
    if raw is None:
        return [default] * tiers
    try:
        values = [float(part) for part in raw.split(",") if part.strip()]
    except ValueError:
        _log.error("%s expects comma-separated numbers, got %r", flag, raw)
        raise SystemExit(2)
    if len(values) == 1:
        return values * tiers
    if len(values) != tiers:
        _log.error("%s needs 1 or %d value(s), got %d", flag, tiers, len(values))
        raise SystemExit(2)
    return values


def _hierarchy_config(args: argparse.Namespace):
    """Build a :class:`HierarchyConfig` from the ``run --tiers`` family."""
    from repro.sim.hierarchy import CacheTier, HierarchyConfig

    if args.tiers is None:
        for flag, value in (("--tier-cache-kb", args.tier_cache_kb),
                            ("--tier-uplink", args.tier_uplink),
                            ("--sibling-lookup", args.sibling_lookup or None),
                            ("--shards", args.shards)):
            if value is not None:
                _log.error("%s requires --tiers", flag)
                raise SystemExit(2)
        if args.pops != 1:
            _log.error("--pops requires --tiers")
            raise SystemExit(2)
        return None
    if args.tiers < 1:
        _log.error("--tiers must be at least 1, got %d", args.tiers)
        raise SystemExit(2)
    if args.tier_cache_kb is None:
        _log.error("--tiers requires --tier-cache-kb")
        raise SystemExit(2)
    caches = _parse_tier_values(args.tier_cache_kb, args.tiers,
                                "--tier-cache-kb", 0.0)
    uplinks = _parse_tier_values(args.tier_uplink, args.tiers,
                                 "--tier-uplink", float("inf"))
    names = ["edge"] + [
        f"parent{index}" if args.tiers > 2 else "parent"
        for index in range(1, args.tiers)
    ]
    tiers = tuple(
        # Tier policies must come from the registry, so the tiers reuse the
        # run policy's registry name (estimator hybrids stay edge-only).
        CacheTier(name=name, cache_kb=cache, policy=args.policy,
                  uplink_bandwidth=uplink)
        for name, cache, uplink in zip(names, caches, uplinks)
    )
    return HierarchyConfig(
        tiers=tiers,
        num_pops=args.pops,
        sibling_lookup=args.sibling_lookup,
        sibling_bandwidth=(args.sibling_bandwidth
                           if args.sibling_bandwidth is not None
                           else float("inf")),
    )


def _observability_config(args: argparse.Namespace) -> Optional[ObservabilityConfig]:
    """Build an :class:`ObservabilityConfig` from the ``run`` obs flags."""
    if not (args.metrics_out or args.trace_out or args.profile):
        return None
    return ObservabilityConfig(
        window_s=args.metrics_window,
        timeline=args.metrics_out is not None,
        trace_path=args.trace_out,
        trace_level=args.trace_level,
        trace_sample=args.trace_sample,
        profile=args.profile,
    )


def _run_single(args: argparse.Namespace) -> int:
    import time as _time

    workload_config = WorkloadConfig(seed=args.seed)
    if args.scale != 1.0:
        workload_config = workload_config.scaled(args.scale)
    client_clouds = _client_cloud_config(args)
    hierarchy = _hierarchy_config(args)
    if client_clouds is not None:
        # One distinct client per last-mile group keeps the CLI surface
        # simple; the library supports many clients per group.
        workload_config = replace(workload_config, num_clients=client_clouds.groups)
    if hierarchy is not None and hierarchy.num_pops > workload_config.num_clients:
        # Pops (and fleet shards) partition clients by id, so the workload
        # needs at least one client per pop to exercise every chain.
        workload_config = replace(workload_config, num_clients=hierarchy.num_pops)
    if args.shards is not None and args.shards > workload_config.num_clients:
        workload_config = replace(workload_config, num_clients=args.shards)
    # Columnar workload: metrics are bit-identical to the object trace, the
    # replay skips Request boxing, and re-measurement runs take the columnar
    # event path instead of the classic calendar.
    draw_started = _time.perf_counter()
    workload = GismoWorkloadGenerator(workload_config).generate(columnar=True)
    workload_draw_s = _time.perf_counter() - draw_started
    remeasurement = None
    if args.remeasure_every is not None:
        remeasurement = RemeasurementConfig(interval=args.remeasure_every)
    config = SimulationConfig(
        cache_size_gb=args.cache_gb,
        variability=VARIABILITY_MODELS[args.variability](),
        bandwidth_knowledge=BandwidthKnowledge(args.knowledge),
        remeasurement=remeasurement,
        client_clouds=client_clouds,
        reactive_threshold=args.reactive_threshold,
        reactive_passive=args.reactive_passive,
        reactive_hysteresis=args.reactive_hysteresis,
        reactive_rekey_cap=args.reactive_rekey_cap,
        faults=_fault_config(args),
        streaming=_streaming_config(args),
        hierarchy=hierarchy,
        observability=_observability_config(args),
        seed=args.seed,
    )
    fleet = None
    if args.shards is not None:
        from repro.analysis.parallel import run_sharded_fleet

        if args.shards < 1:
            _log.error("--shards must be at least 1, got %d", args.shards)
            raise SystemExit(2)
        if args.replay is not None and args.replay != "auto":
            # Shard traces are per-client slices whose object-id density
            # differs from the full trace, so a forced driver that is legal
            # on the whole workload can be illegal on a shard.
            _log.error("--replay %s cannot be combined with --shards; "
                       "each shard picks its driver automatically",
                       args.replay)
            raise SystemExit(2)
        fleet = run_sharded_fleet(
            workload,
            config,
            PolicySpec(args.policy, estimator_e=args.estimator_e),
            num_shards=args.shards,
            n_jobs=args.shards,
        )
        result = fleet.merged
    else:
        policy = make_policy(args.policy, estimator_e=args.estimator_e)
        result = ProxyCacheSimulator(workload, config).run(
            policy, replay=args.replay
        )
    print(f"policy: {result.policy_name}")
    print(f"cache size: {args.cache_gb} GB "
          f"({config.cache_fraction_of(workload.catalog.total_size):.1%} of unique bytes)")
    print(f"replay path: {result.replay_path}")
    if remeasurement is not None:
        print(f"bandwidth re-measurements: {result.auxiliary_events_fired} "
              f"(every {args.remeasure_every:g} s per path)")
    if client_clouds is not None:
        mode = (
            f"homogeneous {args.client_bandwidth:g} KB/s"
            if args.client_bandwidth is not None
            else "NLANR-distributed"
        )
        print(f"client clouds: {client_clouds.groups} last-mile groups ({mode})")
    if args.reactive_threshold is not None:
        sources = "probes + passive requests" if args.reactive_passive else "probes"
        print(f"reactive re-keying: {result.reactive_shifts} belief shifts "
              f"re-keyed {result.reactive_rekeys} heap entries "
              f"(threshold {args.reactive_threshold:g}, driven by {sources})")
        if args.reactive_hysteresis is not None:
            print(f"reactive hysteresis: re-arm band {args.reactive_hysteresis:g}")
        if args.reactive_rekey_cap is not None:
            print(f"reactive re-key cap: {args.reactive_rekey_cap} per server "
                  f"({result.reactive_suppressed} shifts suppressed)")
    if result.fault_report is not None:
        report = result.fault_report
        print(f"fault episodes: {report.episodes} "
              f"({report.origin_episodes} origin, {report.link_episodes} last-mile)")
        print(f"fault outcomes: {report.degraded_requests} degraded, "
              f"{report.retried_requests} retried ({report.total_retries} retries), "
              f"{report.failed_fetches} fetches failed -> "
              f"{report.stale_serves} served stale + {report.failed_requests} failed")
        if report.mean_time_to_recovery_s is not None:
            print(f"estimate recovery: {len(report.recoveries)} outage(s) recovered, "
                  f"mean time to recovery {report.mean_time_to_recovery_s:.6g} s")
    if result.streaming_report is not None:
        report = result.streaming_report
        mode = "prefix" if config.streaming.prefix_caching else "whole-object"
        print(f"streaming: {report.stream_objects} stream object(s), "
              f"{report.sessions} session(s), {mode} caching")
        print(f"streaming sessions: {report.waited_sessions} waited, "
              f"{report.degraded_sessions} degraded, "
              f"{report.abandoned_sessions} abandoned")
        print(f"streaming QoE: startup {report.mean_startup_delay_s:.6g} s, "
              f"rebuffer {report.rebuffer_ratio:.6g}, "
              f"quality {report.mean_quality:.6g}, "
              f"abandonment {report.abandonment_rate:.6g}")
        if config.streaming.prefix_caching:
            print(f"streaming cache: {report.prefetch_extensions} prefetch "
                  f"extension(s), {report.fragment_trims} fragment trim(s), "
                  f"{report.pressure_trimmed_kb:.6g} KB trimmed under pressure")
    if fleet is not None:
        shard_requests = [s.metrics.requests for s in fleet.shard_results]
        print(f"fleet shards: {fleet.num_shards} client-group shard(s), "
              f"per-shard measured requests {shard_requests}, "
              f"merged deterministically")
    if result.hierarchy_report is not None:
        report = result.hierarchy_report
        names = report.tier_names
        pops = config.hierarchy.num_pops
        print(f"hierarchy: {len(names)} tier(s) x {pops} pop(s)")
        for tier, requests, hits, ratio, byte_ratio in zip(
            names,
            report.tier_requests,
            report.tier_hits,
            report.tier_hit_ratios,
            report.tier_byte_hit_ratios,
        ):
            print(f"  tier {tier}: {requests} request(s), {hits} hit(s), "
                  f"hit ratio {ratio:.6g}, byte hit ratio {byte_ratio:.6g}")
        if config.hierarchy.sibling_lookup:
            print(f"  siblings: {report.sibling_hits} whole-object hit(s), "
                  f"{report.sibling_bytes:.6g} KB")
        print(f"  origin: {report.origin_bytes:.6g} KB "
              f"({report.origin_byte_ratio:.6g} of client bytes); "
              f"tiers absorbed {report.tier_absorbed_bytes:.6g} KB")
    for key, value in result.metrics.as_dict().items():
        print(f"{key}: {value:.6g}")
    if result.heap_statistics is not None:
        _log.debug("policy heap: %s", result.heap_statistics)
    if result.timeline is not None and args.metrics_out:
        import json as _json
        from pathlib import Path

        payload = result.timeline.as_dict()
        Path(args.metrics_out).write_text(_json.dumps(payload) + "\n")
        print(f"metrics timeline: {result.timeline.num_windows} window(s) of "
              f"{args.metrics_window:g} s -> {args.metrics_out}")
        print(format_timeline(result.timeline))
    if args.trace_out:
        print(f"event trace: {args.trace_out}")
    if args.profile and result.profile is not None:
        profile = dict(result.profile)
        # The workload is drawn before the simulator exists, so the CLI
        # times that stage itself and folds it into the table.
        profile["workload_draw"] = {"seconds": workload_draw_s, "calls": 1}
        print("profile (wall-clock):")
        for stage in sorted(profile, key=lambda s: -profile[s]["seconds"]):
            entry = profile[stage]
            print(f"  {stage:<16} {entry['seconds']:10.4f} s "
                  f"{int(entry['calls']):>10} call(s)")
    return 0


def _run_experiment(args: argparse.Namespace) -> int:
    entry_point = EXPERIMENTS[args.name]
    kwargs = {"seed": args.seed}
    if args.name not in ("fig2", "fig3", "fig4", "tab1"):
        if args.scale is not None:
            kwargs["scale"] = args.scale
        if args.runs is not None:
            kwargs["num_runs"] = args.runs
        if args.jobs != 1:
            kwargs["n_jobs"] = args.jobs
    elif args.name == "tab1" and args.scale is not None:
        kwargs["scale"] = args.scale
    result = entry_point(**kwargs)
    print(render_experiment(result))
    return 0


def _run_ingest(args: argparse.Namespace) -> int:
    from repro.exceptions import TraceFormatError
    from repro.trace.ingest import ingest_access_log
    from repro.units import DEFAULT_BITRATE_KBPS

    if args.append and not args.out:
        _log.error("--append requires --out")
        return 2
    # Validate the shared client-cloud flags up front (the bandwidth-
    # without-groups error in particular), and be loud about the one case
    # where they would otherwise be silently ignored.
    client_clouds = _client_cloud_config(args)
    if client_clouds is not None and not args.compare:
        _log.info("--client-clouds only affects --compare; the archived "
                  "trace always keeps the per-client ids for later runs")

    methods = None
    if args.methods and args.methods.strip() != "*":
        methods = tuple(m.strip().upper() for m in args.methods.split(",") if m.strip())
    bitrate = args.bitrate if args.bitrate is not None else DEFAULT_BITRATE_KBPS
    try:
        result = ingest_access_log(
            args.logfile,
            log_format=args.format,
            methods=methods,
            status_range=(100, args.max_status),
            max_errors=args.max_errors,
        )
    except TraceFormatError as error:
        _log.error("%s", error)
        return 1
    for key, value in result.summary.as_dict().items():
        if key == "malformed_samples":
            for sample in value:
                print(f"malformed sample: {sample}")
            continue
        if isinstance(value, float):
            print(f"{key}: {value:.6g}")
        else:
            print(f"{key}: {value}")

    if args.out:
        import json
        from pathlib import Path

        import numpy as np

        from repro.trace.columnar import ColumnarTrace

        out_path = Path(args.out)
        # Object and client ids are per-ingest first-seen indices, so
        # rolling segments only share an id space through the maps archived
        # next to the trace; --append remaps the new segment through them.
        # Sidecar schema: {"urls": {url: id}, "clients": {address: id}}
        # (legacy sidecars held the flat url map only — still readable, but
        # client ids then cannot be aligned across segments).
        sidecar = out_path.with_suffix(".urls.json")
        if args.append and out_path.exists():
            existing = ColumnarTrace.from_npz(out_path)
            new_trace = result.trace
            if sidecar.exists():
                stored = json.loads(sidecar.read_text())
                if "urls" in stored and isinstance(stored["urls"], dict):
                    merged = stored["urls"]
                    merged_clients = stored.get("clients")
                else:
                    merged = stored  # legacy flat url map
                    merged_clients = None
                if merged_clients is None:
                    merged_clients = {}
                    _log.warning(
                        "%s has no client map (legacy sidecar); client ids of "
                        "the archived segments cannot be aligned — the "
                        "appended segment's clients are renumbered after the "
                        "archive's %d observed ids",
                        sidecar.name,
                        int(existing.client_ids_array.max(initial=-1)) + 1,
                    )
                    # Renumber past the archive's id space so the new
                    # segment's clients at least never collide with it.
                    next_free = int(existing.client_ids_array.max(initial=-1)) + 1
                    merged_clients = {
                        f"unaligned-{index}": index for index in range(next_free)
                    }
                archived_count = len(merged)
                archived_clients = len(merged_clients)
                lut = np.empty(max(len(result.url_ids), 1), dtype=np.int64)
                for url, segment_id in result.url_ids.items():
                    merged_id = merged.get(url)
                    if merged_id is None:
                        merged_id = len(merged)
                        merged[url] = merged_id
                    lut[segment_id] = merged_id
                client_lut = np.empty(max(len(result.client_ids), 1), dtype=np.int32)
                for client, segment_id in result.client_ids.items():
                    merged_id = merged_clients.get(client)
                    if merged_id is None:
                        merged_id = len(merged_clients)
                        merged_clients[client] = merged_id
                    client_lut[segment_id] = merged_id
                new_trace = ColumnarTrace(
                    new_trace.times_array,
                    lut[new_trace.object_ids_array],
                    client_lut[new_trace.client_ids_array],
                    validate=False,
                )
            else:
                merged = None
                merged_clients = None
                _log.warning(
                    "%s not found next to the archive; appending with this "
                    "ingest's first-seen object and client ids, which may "
                    "not align with the archived segments",
                    sidecar.name,
                )
            stitched = ColumnarTrace.concat([existing, new_trace], rebase=True)
            # Archive first, sidecar second: a failure in between leaves a
            # map that merely lacks the newest URLs (repairable by
            # re-appending) rather than ids the archive never received.
            stitched.to_npz(out_path)
            if merged is not None:
                sidecar.write_text(
                    json.dumps({"urls": merged, "clients": merged_clients})
                )
                print(f"url map: {archived_count} archived urls, "
                      f"{len(merged) - archived_count} new ({sidecar.name})")
                print(f"client map: {archived_clients} archived clients, "
                      f"{len(merged_clients) - archived_clients} new")
            print(f"trace appended: {args.out} ({len(existing)} archived + "
                  f"{len(new_trace)} new = {len(stitched)} requests)")
        else:
            result.trace.to_npz(out_path)
            sidecar.write_text(
                json.dumps({"urls": result.url_ids, "clients": result.client_ids})
            )
            print(f"trace written: {args.out} ({len(result.trace)} requests)")

    if args.compare:
        if not len(result.trace):
            print("nothing to simulate: the filtered trace is empty")
            return 1
        if args.append:
            print("\nnote: --compare simulates the newly ingested segment only, "
                  "not the stitched archive (per-segment catalogs are not merged)")
        workload = result.to_workload(bitrate=bitrate)
        cache_gb = args.cache_gb
        if cache_gb is None:
            cache_gb = max(0.1 * workload.catalog.total_size_gb, 1e-6)
        config = SimulationConfig(
            cache_size_gb=cache_gb, client_clouds=client_clouds, seed=args.seed
        )
        if client_clouds is not None:
            print(f"\nclient clouds: {result.summary.unique_clients} ingested "
                  f"clients hashed into {client_clouds.groups} last-mile groups")
        factories = {
            name.strip().upper(): PolicySpec(name.strip().upper())
            for name in args.policies.split(",")
            if name.strip()
        }
        from repro.sim.runner import compare_policies

        comparison = compare_policies(
            workload, factories, config, num_runs=args.runs, n_jobs=args.jobs
        )
        print(f"\ncompare_policies on ingested workload "
              f"(cache {cache_gb:.4g} GB, {args.runs} run(s)):")
        metrics = ("traffic_reduction_ratio", "average_service_delay",
                   "average_stream_quality", "hit_ratio")
        header = "policy".ljust(8) + "".join(m.rjust(26) for m in metrics)
        print(header)
        for name in comparison.policies():
            row = comparison.metrics_by_policy[name]
            print(name.ljust(8) + "".join(
                f"{getattr(row, m):26.6g}" for m in metrics
            ))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by the ``repro-sim`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(verbosity=args.verbose, quiet=args.quiet)
    if args.command == "run":
        return _run_single(args)
    if args.command == "experiment":
        return _run_experiment(args)
    if args.command == "ingest":
        return _run_ingest(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
