"""Windowed time-series metrics: the :class:`MetricsTimeline` recorder.

The replay loops keep their per-request accumulators in local variables
for speed, so the timeline cannot poll them from outside; instead every
loop checks one precomputed boundary time per request and, when a window
boundary has passed, hands the recorder a *cumulative snapshot* of the
fourteen core accumulators (the exact tuple order of
:meth:`repro.sim.metrics.MetricsCollector.snapshot`).  The recorder
extends the snapshot with the eviction / reactive / fault counters read
from the bound component objects and stores it as a plain-Python marker.

Recording cumulative snapshots — not per-window sums — is what makes the
acceptance criteria cheap to satisfy:

* the final cumulative row *is* the end-of-run aggregate, bit-exactly,
  because it is read from the very accumulators the run finalises;
* per-window deltas are differences of exact cumulatives, so integer
  deltas sum back to the aggregate exactly and float deltas telescope to
  it by construction;
* all four replay paths take the snapshot at the same sequence point
  (after pending auxiliary events fire, before the request is served),
  so the markers — and every derived series — are path-identical.

Windows are fixed-width in simulated time, anchored at the trace start.
A marker taken at time ``t`` closes every window that ended at or before
``t``; counter movement between two requests (e.g. probe-driven re-keys
fired from the auxiliary calendar) is attributed to the window of the
request that follows it, identically on every path.  Derived per-window
series (hit ratio, byte-hit ratio, mean latency, fault state, ...) are
computed lazily with numpy and never stored, so a finished timeline
pickles as plain Python data and compares by value.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["CUMULATIVE_FIELDS", "GAUGE_FIELDS", "MetricsTimeline"]

#: Field names of one cumulative snapshot row, in storage order.  The
#: first fourteen mirror :meth:`MetricsCollector.snapshot`; the rest are
#: read from the cache store, the reactive re-keyer, the fault injector,
#: and the streaming delivery engine at snapshot time.
CUMULATIVE_FIELDS = (
    "requests",
    "bytes_from_cache",
    "bytes_from_server",
    "delay_sum",
    "quality_sum",
    "value_sum",
    "hits",
    "immediate",
    "delayed",
    "delay_sum_delayed",
    "failed",
    "stale_served",
    "retried",
    "total_retries",
    "evictions",
    "reactive_shifts",
    "reactive_rekeys",
    "fault_degraded",
    "fault_failed_fetches",
    "fault_stale_serves",
    "streaming_sessions",
    "streaming_startup_sum",
    "streaming_rebuffer_sum",
    "streaming_watch_sum",
    "streaming_quality_sum",
    "streaming_abandoned",
)

#: Instantaneous gauges sampled alongside each snapshot (not cumulative).
GAUGE_FIELDS = ("cache_occupancy", "cached_objects")

#: Cumulative fields whose per-window deltas are exact integers.
_INTEGER_FIELDS = frozenset(CUMULATIVE_FIELDS) - {
    "bytes_from_cache",
    "bytes_from_server",
    "delay_sum",
    "quality_sum",
    "value_sum",
    "delay_sum_delayed",
    "streaming_startup_sum",
    "streaming_rebuffer_sum",
    "streaming_watch_sum",
    "streaming_quality_sum",
}

_N_FIELDS = len(CUMULATIVE_FIELDS)


class MetricsTimeline:
    """Fixed-window time series of simulation metrics for one run.

    Lifecycle: the simulator constructs the timeline with the window
    width and the trace start time, :meth:`bind`\\ s the component objects
    whose counters extend each snapshot, receives boundary-crossing
    snapshots from the replay loop via :meth:`close`, and seals the
    record with :meth:`finish`.  All read accessors (:meth:`cumulative`,
    :meth:`delta`, :meth:`series`, :meth:`totals`, :meth:`as_dict`)
    require a finished timeline.
    """

    def __init__(self, window_s: float, start_time: float) -> None:
        """Create an empty timeline with windows of ``window_s`` seconds
        anchored at ``start_time`` (the first request's timestamp)."""
        self.window_s = float(window_s)
        self.start_time = float(start_time)
        #: Markers ``(window_index, cumulative_tuple, occupancy, objects)``
        #: in strictly increasing window order; plain Python only.
        self._marks: List[Tuple[int, tuple, float, int]] = []
        self.num_windows = 0
        self._finished = False
        self._store = None
        self._rekeyer = None
        self._injector = None
        self._streaming = None
        self._cum: Optional[np.ndarray] = None
        self._occ: Optional[np.ndarray] = None
        self._objs: Optional[np.ndarray] = None

    @property
    def first_boundary(self) -> float:
        """End time of the first window — the loop's initial threshold."""
        return self.start_time + self.window_s

    @property
    def finished(self) -> bool:
        """Whether :meth:`finish` has sealed the record."""
        return self._finished

    def bind(self, store=None, rekeyer=None, injector=None, streaming=None) -> None:
        """Attach the components whose counters extend each snapshot.

        ``store`` supplies evictions and the occupancy gauges,
        ``rekeyer`` the reactive shift/re-key counters, ``injector``
        the fault counters, and ``streaming`` the per-session QoE
        accumulators; any of them may be ``None`` (the corresponding
        fields record zero).  References are dropped by :meth:`finish`
        so a finished timeline holds no simulator state.
        """
        self._store = store
        self._rekeyer = rekeyer
        self._injector = injector
        self._streaming = streaming

    def _extras(self) -> tuple:
        store = self._store
        rekeyer = self._rekeyer
        injector = self._injector
        streaming = self._streaming
        return (
            store.evictions if store is not None else 0,
            rekeyer.shifts if rekeyer is not None else 0,
            rekeyer.entries_rekeyed if rekeyer is not None else 0,
            injector.degraded_requests if injector is not None else 0,
            injector.failed_fetches if injector is not None else 0,
            injector.stale_serves if injector is not None else 0,
            streaming.sessions if streaming is not None else 0,
            streaming.startup_sum if streaming is not None else 0.0,
            streaming.rebuffer_sum if streaming is not None else 0.0,
            streaming.watch_sum if streaming is not None else 0.0,
            streaming.quality_sum if streaming is not None else 0.0,
            streaming.abandoned if streaming is not None else 0,
        )

    def kernel_hooks(self) -> dict:
        """The window-stage hooks for :mod:`repro.sim.kernel`.

        ``close`` records a boundary crossing at the kernel's *window*
        stage; ``first_boundary`` seeds the kernel context's boundary
        cursor (one float compare per request — with no timeline the
        cursor is ``+inf`` and the stage never fires).
        """
        return {"close": self.close, "first_boundary": self.first_boundary}

    def close(self, now: float, core: tuple) -> float:
        """Record a boundary crossing observed at simulated time ``now``.

        ``core`` is the fourteen-element cumulative tuple in
        :meth:`MetricsCollector.snapshot` order; the marker closes every
        window that ended at or before ``now``.  Returns the next
        boundary time the replay loop should test against.
        """
        index = int((now - self.start_time) / self.window_s)
        store = self._store
        self._marks.append(
            (
                index,
                tuple(core) + self._extras(),
                store.occupancy if store is not None else 0.0,
                len(store) if store is not None else 0,
            )
        )
        return self.start_time + (index + 1) * self.window_s

    def finish(self, end_time: float, core: tuple) -> None:
        """Seal the record at ``end_time`` with the final accumulators.

        The final cumulative row is, by construction, bit-identical to
        the end-of-run aggregates.  Component references taken by
        :meth:`bind` are released so the timeline is self-contained.
        """
        span = max(end_time - self.start_time, 0.0)
        self.num_windows = int(span / self.window_s) + 1
        store = self._store
        self._marks.append(
            (
                self.num_windows,
                tuple(core) + self._extras(),
                store.occupancy if store is not None else 0.0,
                len(store) if store is not None else 0,
            )
        )
        self._finished = True
        self._store = None
        self._rekeyer = None
        self._injector = None
        self._streaming = None

    # -- read accessors -------------------------------------------------

    def _require_finished(self) -> None:
        if not self._finished:
            raise RuntimeError("timeline accessors require finish() first")

    def _expand(self) -> None:
        """Densify the sparse markers into per-window cumulative arrays.

        Window ``w``'s row is the last snapshot taken at or before the
        end of window ``w``; windows with no intervening marker carry
        the next marker's value (no requests were processed in them, so
        the accumulators did not move between those boundaries).
        """
        if self._cum is not None:
            return
        self._require_finished()
        n = self.num_windows
        cum = np.zeros((n, _N_FIELDS), dtype=np.float64)
        occ = np.zeros(n, dtype=np.float64)
        objs = np.zeros(n, dtype=np.int64)
        prev = 0
        for index, snapshot, occupancy, objects in self._marks:
            upto = min(index, n)
            if upto > prev:
                cum[prev:upto] = snapshot
                occ[prev:upto] = occupancy
                objs[prev:upto] = objects
                prev = upto
        self._cum = cum
        self._occ = occ
        self._objs = objs

    def window_starts(self) -> np.ndarray:
        """Start time of each window, as a float array."""
        self._require_finished()
        return self.start_time + self.window_s * np.arange(
            self.num_windows, dtype=np.float64
        )

    def cumulative(self, field: str) -> np.ndarray:
        """Cumulative value of ``field`` at the end of each window."""
        self._expand()
        return self._cum[:, CUMULATIVE_FIELDS.index(field)].copy()

    def delta(self, field: str) -> np.ndarray:
        """Per-window increment of ``field`` (differences of cumulatives)."""
        self._expand()
        column = self._cum[:, CUMULATIVE_FIELDS.index(field)]
        out = np.diff(column, prepend=0.0)
        if field in _INTEGER_FIELDS:
            return np.rint(out).astype(np.int64)
        return out

    def gauge(self, name: str) -> np.ndarray:
        """Sampled gauge series (``cache_occupancy`` or ``cached_objects``)."""
        self._expand()
        if name == "cache_occupancy":
            return self._occ.copy()
        if name == "cached_objects":
            return self._objs.astype(np.float64)
        raise KeyError(f"unknown gauge {name!r}; expected one of {GAUGE_FIELDS}")

    def totals(self) -> Dict[str, float]:
        """Final cumulative value per field — the end-of-run aggregates."""
        self._require_finished()
        final = self._marks[-1][1]
        return {
            field: (int(value) if field in _INTEGER_FIELDS else float(value))
            for field, value in zip(CUMULATIVE_FIELDS, final)
        }

    def series(self) -> Dict[str, np.ndarray]:
        """All derived per-window series, keyed by name.

        Ratios guard division by zero with zero; ``fault_state`` encodes
        the per-window fault condition as ``0`` (healthy), ``1``
        (degraded: slowed fetches or stale serves), or ``2`` (failed:
        at least one fetch failure in the window).  The ``streaming_*``
        series are per-session QoE averages over the window — startup
        delay, rebuffer ratio (stall time over stall-plus-watch time),
        delivered quality, and abandonment rate — and are all-zero when
        the run had no streaming workload.
        """
        self._expand()
        requests = self.delta("requests").astype(np.float64)
        hits = self.delta("hits").astype(np.float64)
        from_cache = self.delta("bytes_from_cache")
        from_server = self.delta("bytes_from_server")
        delay = self.delta("delay_sum")
        total_bytes = from_cache + from_server
        safe_requests = np.where(requests > 0, requests, 1.0)
        safe_bytes = np.where(total_bytes > 0, total_bytes, 1.0)
        degraded = (
            (self.delta("fault_degraded") > 0)
            | (self.delta("fault_stale_serves") > 0)
        )
        failed = self.delta("fault_failed_fetches") > 0
        fault_state = np.where(failed, 2, np.where(degraded, 1, 0)).astype(
            np.int64
        )
        sessions = self.delta("streaming_sessions").astype(np.float64)
        startup = self.delta("streaming_startup_sum")
        rebuffer = self.delta("streaming_rebuffer_sum")
        watch = self.delta("streaming_watch_sum")
        stream_quality = self.delta("streaming_quality_sum")
        abandoned = self.delta("streaming_abandoned").astype(np.float64)
        safe_sessions = np.where(sessions > 0, sessions, 1.0)
        stall_and_watch = rebuffer + watch
        safe_stall_watch = np.where(stall_and_watch > 0, stall_and_watch, 1.0)
        return {
            "requests": requests.astype(np.int64),
            "hits": hits.astype(np.int64),
            "hit_ratio": np.where(requests > 0, hits / safe_requests, 0.0),
            "byte_hit_ratio": np.where(
                total_bytes > 0, from_cache / safe_bytes, 0.0
            ),
            "mean_delay": np.where(requests > 0, delay / safe_requests, 0.0),
            "cache_occupancy": self.gauge("cache_occupancy"),
            "cached_objects": self._objs.copy(),
            "evictions": self.delta("evictions"),
            "reactive_shifts": self.delta("reactive_shifts"),
            "reactive_rekeys": self.delta("reactive_rekeys"),
            "fault_state": fault_state,
            "streaming_startup_delay": np.where(
                sessions > 0, startup / safe_sessions, 0.0
            ),
            "streaming_rebuffer_ratio": np.where(
                stall_and_watch > 0, rebuffer / safe_stall_watch, 0.0
            ),
            "streaming_quality": np.where(
                sessions > 0, stream_quality / safe_sessions, 0.0
            ),
            "streaming_abandonment_rate": np.where(
                sessions > 0, abandoned / safe_sessions, 0.0
            ),
        }

    def as_dict(self) -> dict:
        """JSON-serialisable form: window grid, derived series, totals."""
        self._require_finished()
        return {
            "schema": 1,
            "window_s": self.window_s,
            "start_time": self.start_time,
            "num_windows": self.num_windows,
            "window_starts": self.window_starts().tolist(),
            "series": {
                name: values.tolist() for name, values in self.series().items()
            },
            "totals": self.totals(),
        }

    def __eq__(self, other: object) -> bool:
        """Value equality on the recorded markers and window grid."""
        if not isinstance(other, MetricsTimeline):
            return NotImplemented
        return (
            self.window_s == other.window_s
            and self.start_time == other.start_time
            and self.num_windows == other.num_windows
            and self._finished == other._finished
            and self._marks == other._marks
        )

    def __ne__(self, other: object) -> bool:
        """Inverse of :meth:`__eq__`."""
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __getstate__(self) -> dict:
        """Pickle only the plain-Python record, never cached arrays."""
        return {
            "window_s": self.window_s,
            "start_time": self.start_time,
            "num_windows": self.num_windows,
            "_marks": self._marks,
            "_finished": self._finished,
        }

    def __setstate__(self, state: dict) -> None:
        """Restore from :meth:`__getstate__`; caches rebuild lazily."""
        self.window_s = state["window_s"]
        self.start_time = state["start_time"]
        self.num_windows = state["num_windows"]
        self._marks = state["_marks"]
        self._finished = state["_finished"]
        self._store = None
        self._rekeyer = None
        self._injector = None
        self._streaming = None
        self._cum = None
        self._occ = None
        self._objs = None

    def __repr__(self) -> str:
        """Compact summary: window width, count, and marker count."""
        return (
            f"MetricsTimeline(window_s={self.window_s}, "
            f"num_windows={self.num_windows}, marks={len(self._marks)})"
        )
