#!/usr/bin/env python
"""Quickstart: run one network-aware partial-caching simulation.

This script walks through the library's core loop in a few lines:

1. generate a GISMO-style workload (a scaled-down version of the paper's
   Table 1 workload),
2. configure a simulation (cache size, bandwidth model),
3. run the trace against two policies — the network-unaware IF baseline and
   the paper's partial bandwidth-based PB policy — and
4. print the four metrics the paper reports.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    GismoWorkloadGenerator,
    ProxyCacheSimulator,
    SimulationConfig,
    WorkloadConfig,
    make_policy,
)


def main() -> None:
    # A 1/10-scale Table 1 workload: 500 objects, 10,000 requests, Zipf 0.73
    # popularity, ~55-minute objects encoded at 48 KB/s.
    workload_config = WorkloadConfig(seed=1).scaled(0.1)
    workload = GismoWorkloadGenerator(workload_config).generate()
    print(f"workload: {len(workload.catalog)} objects, {len(workload.trace)} requests, "
          f"{workload.catalog.total_size_gb:.1f} GB unique bytes")

    # An 8 GB edge cache (~10% of the unique bytes at this scale); per-server
    # base bandwidth follows the NLANR-derived distribution of Figure 2.
    config = SimulationConfig(
        cache_size_gb=0.1 * workload.catalog.total_size_gb,
        seed=7,
    )

    print(f"\ncache: {config.cache_size_gb:.1f} GB "
          f"({config.cache_fraction_of(workload.catalog.total_size):.1%} of unique bytes)\n")
    header = f"{'policy':8} {'traffic reduction':>18} {'avg delay (s)':>14} {'avg quality':>12} {'added value':>12}"
    print(header)
    print("-" * len(header))

    for name in ("IF", "IB", "PB"):
        result = ProxyCacheSimulator(workload, config).run(make_policy(name))
        metrics = result.metrics
        print(
            f"{name:8} {metrics.traffic_reduction_ratio:18.3f} "
            f"{metrics.average_service_delay:14.1f} "
            f"{metrics.average_stream_quality:12.3f} "
            f"{metrics.total_added_value:12.0f}"
        )

    print(
        "\nExpected shape (paper, Figure 5): IF reduces the most backbone traffic,"
        "\nbut PB gives clients the lowest startup delay and the best stream quality;"
        "\nIB sits in between on every metric."
    )


if __name__ == "__main__":
    main()
