"""The network-aware policies: PB, IB, and the hybrid estimator-``e`` family.

These are the paper's contribution (Sections 2.3–2.5):

* **PB (Partial Bandwidth-based)** approximates the fractional-knapsack
  optimum online: objects are prioritised by ``F_i / b_i`` and only the
  prefix ``(r_i − b_i) T_i`` that is actually needed to hide the bandwidth
  deficit is cached.  Objects whose path already delivers at least the
  bit-rate are not cached at all.
* **IB (Integral Bandwidth-based)** uses the same priority but caches whole
  objects.  It is the most conservative point of the over-provisioning
  heuristic of Section 2.5 and is robust to bandwidth variability at the
  cost of fitting fewer objects.
* **HybridPartialBandwidth** spans the spectrum between the two: the path
  bandwidth is deliberately under-estimated by a factor ``e`` in ``(0, 1]``,
  so the cached prefix grows to ``(r_i − e·b_i) T_i``.  ``e = 1`` recovers
  PB; ``e → 0`` approaches IB (Figure 9).

Where the bandwidth ``b_i`` comes from is the simulator's concern, not the
policy's: each request's ``PolicyContext.bandwidth`` is the value the cache
currently *believes* — the oracle long-term average under
``BandwidthKnowledge.ORACLE``, or the passive EWMA estimate under
``BandwidthKnowledge.PASSIVE``, optionally refreshed *between* requests by
periodic re-measurement (:mod:`repro.sim.events`, ``docs/events.md``).
Both policies are ``bandwidth_keyed``: when the believed bandwidth shifts
out of band — a probe lands, or (with
``SimulationConfig.reactive_passive``) an ordinary request's passive
observation moves the estimate — the reactive hook may call
``on_bandwidth_shift`` to refresh their stale heap keys immediately.
The ``estimator_e`` under-estimation composes with either source: it is a
hedge against *variability around* the believed value, while
re-measurement fights *staleness of* the believed value — the two are
ablated jointly by the Figure 9/12 experiments'
``remeasurement_interval`` option.
"""

from __future__ import annotations

from repro.core.policies.base import CachePolicy, PolicyContext
from repro.exceptions import ConfigurationError
from repro.units import positive_part
from repro.workload.catalog import MediaObject


class HybridPartialBandwidthPolicy(CachePolicy):
    """Partial bandwidth-based caching with bandwidth under-estimation.

    Parameters
    ----------
    estimator_e:
        The under-estimation factor ``e`` of Section 2.5, in ``(0, 1]``.
        The policy behaves as if the path to each origin server had
        bandwidth ``e * b`` rather than ``b``: it caches a prefix of
        ``(r − e·b)+ · T`` kilobytes and keys the priority heap on
        ``F / (e·b)`` (which orders objects identically to ``F / b`` but is
        kept in un-normalised form so mixed-``e`` experiments remain
        comparable).
    """

    allows_partial = True
    bandwidth_keyed = True

    def __init__(self, estimator_e: float = 1.0, **kwargs):
        if not 0.0 < estimator_e <= 1.0:
            raise ConfigurationError(
                f"estimator_e must be in (0, 1], got {estimator_e}"
            )
        super().__init__(**kwargs)
        self.estimator_e = float(estimator_e)
        self.name = f"PB(e={self.estimator_e:g})"

    def effective_bandwidth(self, ctx: PolicyContext) -> float:
        """The deliberately conservative bandwidth estimate ``e * b``."""
        effective = ctx.bandwidth * self.estimator_e
        return effective if effective > 1e-9 else 1e-9

    def utility(self, obj: MediaObject, ctx: PolicyContext) -> float:
        return ctx.frequency / self.effective_bandwidth(ctx)

    def target_cache_bytes(self, obj: MediaObject, ctx: PolicyContext) -> float:
        deficit = positive_part(obj.bitrate - self.effective_bandwidth(ctx))
        return deficit * obj.duration


class PartialBandwidthPolicy(HybridPartialBandwidthPolicy):
    """PB: the pure partial bandwidth-based policy (``e = 1``)."""

    name = "PB"

    def __init__(self, **kwargs):
        super().__init__(estimator_e=1.0, **kwargs)
        self.name = "PB"


class IntegralBandwidthPolicy(CachePolicy):
    """IB: cache whole objects, prioritised by ``F_i / b_i``.

    Like PB it skips objects whose path bandwidth already covers their
    bit-rate; unlike PB it caches the entire object (the most conservative
    over-provisioning choice), which keeps it effective when bandwidth
    varies drastically over time (Section 4.3).
    """

    name = "IB"
    allows_partial = False
    bandwidth_keyed = True

    def utility(self, obj: MediaObject, ctx: PolicyContext) -> float:
        return ctx.frequency / max(ctx.bandwidth, 1e-9)

    def target_cache_bytes(self, obj: MediaObject, ctx: PolicyContext) -> float:
        if obj.bitrate <= ctx.bandwidth:
            return 0.0
        return obj.size
