"""The trace-driven proxy-cache simulator.

The simulator replays a request trace against one proxy cache managed by a
policy, following the paper's methodology (Sections 3 and 4.1):

* each origin server is assigned a base path bandwidth drawn from the
  configured distribution (NLANR-derived by default),
* each request experiences the base bandwidth modulated by the configured
  variability model,
* the first ``warmup_fraction`` of the trace only warms the cache; metrics
  are collected over the remainder,
* for every request the simulator computes the joint cache + server delivery
  outcome *before* letting the policy react, so metrics reflect the cache
  state a real client would have found.

Since the kernel refactor, the per-request service sequence lives in one
place — :mod:`repro.sim.kernel` — and the simulator's replay paths are
thin *drivers* that own only iteration order, auxiliary-event merging,
and pre-drawn column access (see ``docs/architecture.md`` for the
kernel + drivers diagram).  All four produce bit-identical metrics:

* the **event-calendar driver** (:meth:`ProxyCacheSimulator._replay_events`)
  dispatches every request through the discrete-event engine, so arbitrary
  auxiliary events (anything a subclass schedules through
  :meth:`ProxyCacheSimulator.schedule_auxiliary_events`) compose naturally
  with the request stream; each request is served by
  :func:`repro.sim.kernel.serve_request`,
* the **fast driver**, used automatically when no auxiliary events are
  scheduled, hands the whole trace to
  :func:`repro.sim.kernel.serve_batch` as one chunk — no per-request
  ``Event`` allocation, no heap churn, per-request bandwidth-variability
  draws pre-batched through numpy,
* the **columnar fast driver**, used when the workload carries a dense-id
  :class:`~repro.trace.columnar.ColumnarTrace`: the kernel context
  carries prefilled per-object entries and a fully vectorised
  observed-bandwidth column, skipping ``Request`` objects entirely, and
* the **columnar event driver**, used when *typed* periodic events
  (:mod:`repro.sim.events`, e.g. periodic bandwidth re-measurement from
  :attr:`~repro.sim.config.SimulationConfig.remeasurement`) are scheduled
  over a dense-id columnar trace: the driver splits the trace into the
  longest runs uninterrupted by auxiliary events — merged by ``(time,
  priority)`` exactly as the discrete-event engine orders them — and
  serves each run through :func:`repro.sim.kernel.serve_batch`.

Per-client last-mile bandwidth
(:attr:`~repro.sim.config.SimulationConfig.client_clouds`) composes onto
every path identically: the last-mile sequences are resolved once per run
by the kernel context builder
(:func:`repro.sim.kernel.last_mile_sequences`), and each request's
delivered bandwidth becomes the bottleneck of its two hops — see
``docs/clients.md``.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.store import CacheStore
from repro.exceptions import SimulationError
from repro.network.measurement import BandwidthMeasurementLog, PassiveEstimator
from repro.network.topology import DeliveryTopology
from repro.obs.profiling import StageProfiler
from repro.obs.timeline import MetricsTimeline
from repro.obs.tracing import ObservedCacheStore, TraceSink
from repro.sim.config import BandwidthKnowledge, SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.events import (
    AuxiliarySchedule,
    ReactiveRekeyer,
    build_remeasurement_events,
)
from repro.sim.faults import FaultInjector, FaultReport
from repro.sim.hierarchy import HierarchyEngine, HierarchyReport
from repro.sim.kernel import KernelContext, build_context, serve_batch, serve_request
from repro.sim.metrics import MetricsCollector, SimulationMetrics
from repro.sim.streaming import StreamingDeliveryEngine, StreamingReport
from repro.trace.columnar import ColumnarTrace
from repro.workload.gismo import Workload


#: Replay-path names accepted by :meth:`ProxyCacheSimulator.run`'s
#: ``replay`` argument (``"auto"`` resolves to one of the others;
#: ``"columnar"`` forces the dense columnar loop explicitly and is never
#: picked by ``"auto"``, which reports the equivalent run as ``"fast"``).
REPLAY_PATHS = ("auto", "event", "fast", "columnar", "columnar-event")

#: Entropy tag mixed into the client-cloud generator's seed so last-mile
#: construction and per-request last-mile draws never collide with the
#: request stream (bare config seed) or the re-measurement stream.
_CLIENT_CLOUD_STREAM_TAG = 0x434C49


@dataclass
class SimulationResult:
    """Everything a single simulation run produces.

    ``replay_path`` records which replay driver ran (``"event"``,
    ``"fast"``, ``"columnar"``, or ``"columnar-event"``);
    ``used_fast_path`` is kept as the legacy boolean view of the same
    fact (true for both tight-loop drivers).  ``auxiliary_events_fired``
    counts typed periodic-event firings (e.g. bandwidth re-measurements),
    and ``measurement_log`` carries their per-server sample statistics
    when the run had re-measurement configured.  ``reactive_shifts`` /
    ``reactive_rekeys`` count the threshold crossings and heap entries
    re-keyed by the reactive hook
    (:attr:`~repro.sim.config.SimulationConfig.reactive_threshold`);
    ``reactive_suppressed`` counts crossings swallowed by the per-server
    re-key budget
    (:attr:`~repro.sim.config.SimulationConfig.reactive_rekey_cap`), and
    ``reactive_rekeys_by_server`` the per-server re-key counts that budget
    bounds.  ``fault_report`` carries the whole-run fault accounting
    (episode counts, retries, stale serves, estimate recovery times) when
    the run had :attr:`~repro.sim.config.SimulationConfig.faults`
    enabled; the measurement-phase view (availability, failed / stale /
    retried requests) lives on :attr:`metrics`.  ``streaming_report``
    carries the QoE accounting (startup delay, rebuffer ratio, delivered
    quality, abandonment) when the run had
    :attr:`~repro.sim.config.SimulationConfig.streaming` enabled.
    ``hierarchy_report`` carries the per-tier hit/byte accounting (tier-
    absorbed vs origin bytes, sibling hits) when the run had
    :attr:`~repro.sim.config.SimulationConfig.hierarchy` enabled — in
    which case ``final_cache_occupancy`` / ``final_cached_objects``
    aggregate over every tier store in the fleet and ``heap_statistics``
    is ``None`` (each tier owns its own policy heap).

    The observability fields (:mod:`repro.obs`) are populated when the
    config carries an
    :attr:`~repro.sim.config.SimulationConfig.observability` block:
    ``timeline`` is the finished windowed
    :class:`~repro.obs.timeline.MetricsTimeline` (path-identical across
    all four replay drivers), and ``profile`` the per-stage wall-clock
    report of :class:`~repro.obs.profiling.StageProfiler`.
    ``heap_statistics`` is recorded on every run whose policy exposes it
    (the heap-backed paper policies do): peak/live/stale entry counts and
    compaction totals, so heap health is visible per run rather than
    only in the benchmark suite.
    """

    metrics: SimulationMetrics
    policy_name: str
    config: SimulationConfig
    final_cache_occupancy: float
    final_cached_objects: int
    warmup_requests: int
    used_fast_path: bool = False
    replay_path: str = "fast"
    auxiliary_events_fired: int = 0
    measurement_log: Optional[BandwidthMeasurementLog] = None
    reactive_shifts: int = 0
    reactive_rekeys: int = 0
    reactive_suppressed: int = 0
    reactive_rekeys_by_server: Dict[int, int] = field(default_factory=dict)
    fault_report: Optional[FaultReport] = None
    streaming_report: Optional[StreamingReport] = None
    hierarchy_report: Optional[HierarchyReport] = None
    timeline: Optional[MetricsTimeline] = None
    profile: Optional[Dict[str, Dict[str, float]]] = None
    heap_statistics: Optional[Dict[str, int]] = None

    def as_dict(self) -> Dict[str, float]:
        """Flatten result and headline metrics into one dictionary."""
        data = self.metrics.as_dict()
        data.update(
            {
                "final_cache_occupancy": self.final_cache_occupancy,
                "final_cached_objects": float(self.final_cached_objects),
                "warmup_requests": float(self.warmup_requests),
            }
        )
        return data


def _dense_id_bound(trace: ColumnarTrace) -> Optional[int]:
    """Largest object id when the trace's ids are dense and non-negative.

    Dense means the ids fit a modest lookup table (bounded by a small
    multiple of the trace length) — true for generated and ingested
    catalogs, whose ids are 0..N-1.  Returns ``None`` otherwise, sending
    the replay down the generic loop.
    """
    ids = trace.object_ids_array
    if ids.size == 0:
        return 0
    min_id = int(ids.min())
    max_id = int(ids.max())
    if min_id >= 0 and max_id < 4 * ids.size + 1024:
        return max_id
    return None


class ProxyCacheSimulator:
    """Replay a workload against one policy-managed proxy cache."""

    def __init__(self, workload: Workload, config: Optional[SimulationConfig] = None):
        self.workload = workload
        self.config = config or SimulationConfig()

    def build_topology(self, rng: np.random.Generator) -> DeliveryTopology:
        """Draw per-server base bandwidths and assemble the topology.

        When the config carries a
        :class:`~repro.sim.config.ClientCloudConfig`, the client cloud's
        last-mile paths are built here too — from a dedicated generator, so
        attaching a cloud never perturbs the origin-path draws (the
        unconstrained-cloud bit-identity of ``tests/test_sim_clients.py``).
        """
        topology = DeliveryTopology.build(
            catalog=self.workload.catalog,
            cache_capacity_kb=self.config.cache_size_kb,
            bandwidth_distribution=self.config.bandwidth_distribution,
            variability=self.config.variability,
            rng=rng,
        )
        floor = self.config.min_path_bandwidth
        if floor > 0:
            for path in topology.paths:
                if path.base_bandwidth < floor:
                    path.base_bandwidth = floor
        if self.config.client_clouds is not None:
            cloud_rng = np.random.default_rng(self._client_cloud_seed(0))
            topology.clients = self.config.client_clouds.build_cloud(cloud_rng)
        return topology

    def _client_cloud_seed(self, purpose: int) -> tuple:
        """Seed of one client-cloud random stream.

        ``purpose`` separates the cloud's two uses of randomness —
        construction (group base-bandwidth draws, 0) and per-request
        last-mile variability (1) — so the request-time ratio stream never
        replays the values that provisioned the groups.
        """
        cloud_seed = (
            self.config.client_clouds.seed
            if self.config.client_clouds is not None
            else 0
        )
        return (
            _CLIENT_CLOUD_STREAM_TAG,
            purpose,
            self.config.seed & 0xFFFFFFFF,
            cloud_seed & 0xFFFFFFFF,
        )

    def schedule_auxiliary_events(
        self,
        engine: SimulationEngine,
        topology: DeliveryTopology,
        store: CacheStore,
        collector: MetricsCollector,
    ) -> None:
        """Extension hook: schedule non-request events before replay starts.

        Subclasses override this to add periodic bandwidth re-measurement,
        prefetch completions, consistency timers, etc.  Scheduling anything
        here makes :meth:`run` take the event-calendar path so the auxiliary
        events interleave correctly with the request stream; the default
        (no auxiliary events) lets the replay use the fast path.
        """

    def build_auxiliary_schedule(
        self,
        topology: DeliveryTopology,
        estimator: Optional[PassiveEstimator],
        measurement_log: Optional[BandwidthMeasurementLog],
        rekeyer: Optional[ReactiveRekeyer] = None,
    ) -> AuxiliarySchedule:
        """Expand the config's typed periodic events into a schedule.

        Currently this covers periodic bandwidth re-measurement
        (:attr:`~repro.sim.config.SimulationConfig.remeasurement`), with
        ``rekeyer`` attached to every stream when the run is reactive
        (:attr:`~repro.sim.config.SimulationConfig.reactive_threshold`);
        subclasses adding further *typed* event families extend this and
        keep access to the columnar event path, whereas arbitrary engine
        events go through :meth:`schedule_auxiliary_events` and force the
        classic event-calendar path.
        """
        if self.config.remeasurement is None:
            return AuxiliarySchedule()
        trace = self.workload.trace
        return AuxiliarySchedule(
            build_remeasurement_events(
                self.config.remeasurement,
                topology,
                estimator,
                measurement_log,
                trace_start=trace.start_time,
                trace_end=trace.end_time,
                base_seed=self.config.seed,
                listener=rekeyer,
            )
        )

    def run(
        self,
        policy,
        topology: Optional[DeliveryTopology] = None,
        use_fast_path: Optional[bool] = None,
        replay: Optional[str] = None,
        stage_observer=None,
    ) -> SimulationResult:
        """Run the simulation for one policy.

        Parameters
        ----------
        policy:
            Any object with the :class:`~repro.core.policies.base.CachePolicy`
            interface (``name``, ``on_request``) — including
            :class:`~repro.core.policies.optimal.StaticAllocationPolicy`.
        topology:
            Optionally reuse a pre-built topology so several policies can be
            compared on *identical* bandwidth assignments; when omitted a new
            topology is drawn from the config's seed.
        use_fast_path:
            Legacy boolean view of ``replay``: ``True`` maps to
            ``replay="fast"``, ``False`` to ``replay="event"``.  Ignored
            when ``replay`` is given.
        replay:
            Which replay driver to use — one of :data:`REPLAY_PATHS`.
            ``None``/``"auto"`` (default) picks automatically: the fast
            path when no auxiliary events exist, the columnar event path
            when only *typed* periodic events are scheduled over a dense-id
            columnar trace, the classic event-calendar path otherwise.
            Forcing ``"fast"`` or ``"columnar"`` raises
            :class:`~repro.exceptions.SimulationError` if auxiliary events
            would be dropped; ``"columnar"`` and ``"columnar-event"``
            additionally require a dense-id columnar workload trace.  All
            drivers produce bit-identical metrics.
        stage_observer:
            Kernel-conformance instrumentation hook: a callable invoked as
            ``observer(index, stage)`` at every executed kernel stage (see
            :data:`repro.sim.kernel.KERNEL_STAGES`).  Installing one routes
            every request through the scalar kernel path —
            bit-identical, but slower; intended for tests.
        """
        obs = self.config.observability
        profiler: Optional[StageProfiler] = None
        sink: Optional[TraceSink] = None
        if obs is not None and obs.profile:
            profiler = StageProfiler()
        if obs is not None and obs.trace_path is not None:
            sink = TraceSink(
                obs.trace_path, level=obs.trace_level, sample=obs.trace_sample
            )

        rng = np.random.default_rng(self.config.seed)
        if topology is None:
            if profiler is not None:
                with profiler.stage("topology_build"):
                    topology = self.build_topology(rng)
            else:
                topology = self.build_topology(rng)

        if sink is not None:
            store: CacheStore = ObservedCacheStore(self.config.cache_size_kb, sink)
        else:
            store = CacheStore(self.config.cache_size_kb)
        hierarchy: Optional[HierarchyEngine] = None
        if self.config.hierarchy is not None:
            # The run policy's registry name seeds the per-tier policy
            # instances; the instance itself is never installed — each
            # tier owns a fresh policy on its own store.
            hierarchy = HierarchyEngine(
                self.config.hierarchy,
                self.workload.catalog,
                default_policy=getattr(policy, "name", type(policy).__name__),
            )
        elif hasattr(policy, "install"):
            policy.install(store, self.workload.catalog)

        streaming: Optional[StreamingDeliveryEngine] = None
        if self.config.streaming is not None:
            streaming = StreamingDeliveryEngine(
                self.config.streaming,
                self.workload.catalog,
                store,
                sim_seed=self.config.seed,
            )
            # Heap-engine policies get the segment-aware admission /
            # trimming hooks for the run; policies without the hooks
            # (e.g. static allocations) still serve sessions, they just
            # keep their own byte targets.
            if hasattr(policy, "stream_quantize"):
                policy.stream_quantize = streaming.admission_target
                if self.config.streaming.prefix_caching:
                    policy.stream_trim = streaming.trim_victim

        collector = MetricsCollector()
        estimator: Optional[PassiveEstimator] = None
        if self.config.bandwidth_knowledge is BandwidthKnowledge.PASSIVE:
            estimator = PassiveEstimator(smoothing=self.config.passive_smoothing)

        measurement_log: Optional[BandwidthMeasurementLog] = None
        if self.config.remeasurement is not None:
            measurement_log = BandwidthMeasurementLog()
        rekeyer: Optional[ReactiveRekeyer] = None
        if (
            self.config.reactive_threshold is not None
            and estimator is not None
            and hasattr(policy, "on_bandwidth_shift")
        ):
            # With a modeled client cloud, a request from group g never
            # believes more than that group's last-mile base; the rekeyer
            # keeps one anchor per (server, group) view so shift detection
            # and heap keys stay consistent with the per-request
            # composition.  An all-inf cloud degrades to the uncapped view.
            group_caps = topology.last_mile_caps()
            if group_caps is not None and all(
                cap == float("inf") for cap in group_caps
            ):
                group_caps = None
            rekeyer = ReactiveRekeyer(
                policy,
                estimator,
                self.config.reactive_threshold,
                group_caps=group_caps,
                hysteresis=self.config.reactive_hysteresis,
                rekey_cap=self.config.reactive_rekey_cap,
                group_estimation=(
                    self.config.client_clouds is not None
                    and self.config.client_clouds.estimate_last_mile
                ),
            )
        schedule = self.build_auxiliary_schedule(
            topology, estimator, measurement_log, rekeyer
        )

        trace = self.workload.trace
        total_requests = len(trace)
        warmup_cutoff = int(self.config.warmup_fraction * total_requests)
        if warmup_cutoff == 0:
            collector.measuring = True

        injector: Optional[FaultInjector] = None
        if self.config.faults is not None:
            fault_schedule = self.config.faults.build_schedule(
                topology,
                trace_start=trace.start_time,
                trace_end=trace.end_time,
                base_seed=self.config.seed,
            )
            injector = FaultInjector(
                fault_schedule, self.config.faults, estimator=estimator
            )

        timeline: Optional[MetricsTimeline] = None
        if obs is not None and obs.timeline:
            timeline = MetricsTimeline(
                obs.window_s, trace.start_time if total_requests else 0.0
            )
            timeline.bind(
                store=store if hierarchy is None else hierarchy.primary_edge_store,
                rekeyer=rekeyer,
                injector=injector,
                streaming=streaming,
            )
        if sink is not None:
            if rekeyer is not None:
                rekeyer.trace = sink
            if injector is not None:
                injector.trace = sink

        engine = SimulationEngine()
        self.schedule_auxiliary_events(engine, topology, store, collector)
        have_hook_events = len(engine.queue) > 0
        have_typed_events = bool(schedule)
        dense_bound = (
            _dense_id_bound(trace) if isinstance(trace, ColumnarTrace) else None
        )

        mode = self._resolve_replay_path(
            replay, use_fast_path, have_hook_events, have_typed_events, dense_bound
        )

        if profiler is not None:
            # Instance-attribute wrappers shadow the bound methods the
            # kernel context binds; detach_all() removes them again so
            # profiling leaves no trace on the shared objects.  The
            # context is built *after* attach so it captures the
            # wrappers.
            profiler.attach(policy, "on_request", "policy_ops")
            if estimator is not None:
                profiler.attach(estimator, "estimate", "estimator")
                profiler.attach(estimator, "observe", "estimator")
            if injector is not None:
                profiler.attach(injector, "intercept", "fault_evaluation")

        # One kernel context per run: every driver delegates the whole
        # per-request service sequence (repro.sim.kernel) to it, and the
        # passive-driven rekeyer is notified after every request's
        # estimator update, in the same position on every driver
        # (docs/events.md).
        ctx = build_context(
            catalog=self.workload.catalog,
            trace=trace,
            topology=topology,
            policy=policy,
            store=store,
            collector=collector,
            estimator=estimator,
            rekeyer=rekeyer if self.config.reactive_passive else None,
            injector=injector,
            timeline=timeline,
            streaming=streaming,
            hierarchy=hierarchy,
            rng=rng,
            mode=mode,
            dense_bound=dense_bound,
            warmup_cutoff=warmup_cutoff,
            verify_store=self.config.verify_store,
            num_pops=(
                self.config.hierarchy.num_pops if hierarchy is not None else 1
            ),
            client_cloud_seed=self._client_cloud_seed(1),
            stage_observer=stage_observer,
        )

        if sink is not None:
            sink.emit(
                "info",
                "run-start",
                trace.start_time if total_requests else 0.0,
                policy=getattr(policy, "name", type(policy).__name__),
                replay=mode,
                seed=self.config.seed,
                requests=total_requests,
            )

        replay_started = _time.perf_counter() if profiler is not None else 0.0
        try:
            if mode == "fast":
                self._replay_fast(ctx)
            elif mode == "columnar":
                self._replay_fast_columnar(ctx)
            elif mode == "columnar-event":
                self._replay_events_columnar(ctx, schedule)
            else:
                schedule.schedule_into(engine)
                self._replay_events(ctx, engine)
            ctx.finish()

            if timeline is not None:
                timeline.finish(
                    trace.end_time if total_requests else 0.0,
                    collector.snapshot(),
                )

            metrics = collector.finalize()
            if sink is not None:
                sink.emit(
                    "info",
                    "run-end",
                    trace.end_time if total_requests else 0.0,
                    requests=metrics.requests,
                    hit_ratio=metrics.hit_ratio,
                    byte_hit_ratio=metrics.byte_hit_ratio,
                    evictions=store.evictions,
                )
        finally:
            if streaming is not None and hasattr(policy, "stream_quantize"):
                policy.stream_quantize = None
                policy.stream_trim = None
            if profiler is not None:
                profiler.add("replay", _time.perf_counter() - replay_started)
                profiler.detach_all()
            if sink is not None:
                sink.close()
            if rekeyer is not None:
                rekeyer.trace = None
            if injector is not None:
                injector.trace = None

        return SimulationResult(
            metrics=metrics,
            policy_name=getattr(policy, "name", type(policy).__name__),
            config=self.config,
            final_cache_occupancy=(
                store.occupancy if hierarchy is None else hierarchy.final_occupancy()
            ),
            final_cached_objects=(
                len(store) if hierarchy is None else hierarchy.total_cached_objects()
            ),
            warmup_requests=collector.warmup_requests,
            used_fast_path=mode in ("fast", "columnar"),
            replay_path=mode,
            auxiliary_events_fired=schedule.fired,
            measurement_log=measurement_log,
            reactive_shifts=rekeyer.shifts if rekeyer is not None else 0,
            reactive_rekeys=rekeyer.entries_rekeyed if rekeyer is not None else 0,
            reactive_suppressed=rekeyer.suppressed if rekeyer is not None else 0,
            reactive_rekeys_by_server=(
                dict(rekeyer.rekeys_by_server) if rekeyer is not None else {}
            ),
            fault_report=injector.report() if injector is not None else None,
            streaming_report=streaming.report() if streaming is not None else None,
            hierarchy_report=hierarchy.report() if hierarchy is not None else None,
            timeline=timeline,
            profile=profiler.report() if profiler is not None else None,
            heap_statistics=(
                policy.heap_statistics()
                if hierarchy is None and hasattr(policy, "heap_statistics")
                else None
            ),
        )

    @staticmethod
    def _resolve_replay_path(
        replay: Optional[str],
        use_fast_path: Optional[bool],
        have_hook_events: bool,
        have_typed_events: bool,
        dense_bound: Optional[int],
    ) -> str:
        """Pick the replay driver from the request and the scheduled events."""
        if replay is None:
            replay = {None: "auto", True: "fast", False: "event"}[use_fast_path]
        if replay not in REPLAY_PATHS:
            raise SimulationError(
                f"unknown replay path {replay!r}; expected one of {REPLAY_PATHS}"
            )
        if replay == "auto":
            if have_hook_events:
                return "event"
            if have_typed_events:
                return "columnar-event" if dense_bound is not None else "event"
            return "fast"
        if replay in ("fast", "columnar") and (have_hook_events or have_typed_events):
            raise SimulationError(
                f"replay={replay!r} but auxiliary events are scheduled; "
                "this driver would not dispatch them"
            )
        if replay == "columnar" and dense_bound is None:
            raise SimulationError(
                "replay='columnar' requires a dense-id ColumnarTrace "
                "workload; use replay='fast' for this trace"
            )
        if replay == "columnar-event":
            if have_hook_events:
                raise SimulationError(
                    "replay='columnar-event' cannot dispatch untyped events "
                    "from schedule_auxiliary_events; use replay='event'"
                )
            if dense_bound is None:
                raise SimulationError(
                    "replay='columnar-event' requires a dense-id ColumnarTrace "
                    "workload; use replay='event' for this trace"
                )
        return replay

    # ------------------------------------------------------------------
    # The event-calendar driver.
    # ------------------------------------------------------------------
    def _replay_events(self, ctx: KernelContext, engine: SimulationEngine) -> None:
        """Dispatch every request through the discrete-event engine.

        The driver owns scheduling only: every request becomes one engine
        event, interleaved with whatever auxiliary events were scheduled,
        and the handler delegates the entire service sequence to
        :func:`repro.sim.kernel.serve_request`.  The engine fires
        same-time auxiliary events (negative priority) before the request
        handler, so the kernel's timeline snapshot sits at exactly the
        sequence point the columnar drivers snapshot at — that is what
        makes the markers path-identical.
        """

        def handle_request(engine: SimulationEngine, payload) -> None:
            index, request = payload
            serve_request(ctx, index, request.object_id, engine.now)

        for index, request in enumerate(self.workload.trace):
            engine.schedule(request.time, handle_request, (index, request))
        engine.run()

    # ------------------------------------------------------------------
    # The fast driver.
    # ------------------------------------------------------------------
    def _replay_fast(self, ctx: KernelContext) -> None:
        """Serve the whole trace as one kernel chunk, no event calendar.

        The driver owns column extraction only: it pulls the two request
        fields the kernel needs (object id, time) into flat lists — one
        batch ``tolist`` per column for a columnar trace, one attribute
        pass for ``Request`` objects — and hands the full range to
        :func:`repro.sim.kernel.serve_batch`.  Dense-id columnar traces
        take the dedicated columnar driver, whose kernel context carries
        prefilled entries and a vectorised bandwidth column.
        """
        trace = self.workload.trace
        if isinstance(trace, ColumnarTrace):
            if ctx.dense_bound is not None:
                return self._replay_fast_columnar(ctx)
            ids = trace.object_ids_array.tolist()
            times = trace.times_array.tolist()
        else:
            ids = [request.object_id for request in trace]
            times = [request.time for request in trace]
        serve_batch(ctx, ids, times, 0, len(ids))

    # ------------------------------------------------------------------
    # The columnar fast driver.
    # ------------------------------------------------------------------
    def _replay_fast_columnar(self, ctx: KernelContext) -> None:
        """Array-native replay for dense-id :class:`ColumnarTrace` workloads.

        This is :meth:`_replay_events_columnar` with an empty auxiliary
        schedule: the event merge degenerates to a single full-trace
        kernel chunk, so one driver serves both the columnar fast path
        and the columnar event path.
        """
        self._replay_events_columnar(ctx, AuxiliarySchedule())

    # ------------------------------------------------------------------
    # The columnar event driver: chunked replay + auxiliary events.
    # ------------------------------------------------------------------
    def _replay_events_columnar(
        self, ctx: KernelContext, schedule: AuxiliarySchedule
    ) -> None:
        """Event-capable replay over a dense-id columnar trace.

        The driver owns the auxiliary-event merge only: it splits the
        trace into the longest runs of requests uninterrupted by an
        auxiliary event — ordered by ``(time, priority)`` exactly as the
        discrete-event engine would interleave them (auxiliary priorities
        are non-zero by construction, so the merge is never ambiguous) —
        fires the due events between runs, and serves each run through
        :func:`repro.sim.kernel.serve_batch`.  Auxiliary events draw from
        their own random generators (see :mod:`repro.sim.events`), so the
        kernel's pre-drawn bandwidth ratios stay valid even while events
        fire between chunks.  With no auxiliary events scheduled the
        whole trace is one chunk — the columnar fast path.
        """
        trace: ColumnarTrace = self.workload.trace
        times_array = trace.times_array
        ids = trace.object_ids_array.tolist()
        times = times_array.tolist()
        total = len(ids)

        aux_heap = schedule.begin()
        fire_before = schedule.fire_before

        start = 0
        while start < total:
            if not aux_heap:
                serve_batch(ctx, ids, times, start, total)
                break
            head_time = aux_heap[0][0]
            head_priority = aux_heap[0][1]
            if (head_time, head_priority) < (times[start], 0):
                # The engine would run this event before the next
                # request (strictly earlier time, or same time with a
                # negative priority).
                fire_before(times[start])
                continue
            # The longest run the head event does not interrupt: requests
            # strictly before the event under the engine's (time,
            # priority) order.  Guaranteed non-empty — the head is not
            # due before request ``start`` (checked above).
            stop = int(
                np.searchsorted(
                    times_array,
                    head_time,
                    side="left" if head_priority < 0 else "right",
                )
            )
            if stop > total:
                stop = total
            serve_batch(ctx, ids, times, start, stop)
            start = stop

        # Auxiliary events scheduled after the last request still fire,
        # just as the engine would have drained them.
        schedule.drain()
