"""Tests for the discrete-event simulation engine."""

import pytest

from repro.exceptions import SimulationError
from repro.sim.engine import EventQueue, SimulationEngine


class TestEventQueue:
    def test_pop_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(3.0, lambda e, p: order.append(p), "c")
        queue.push(1.0, lambda e, p: order.append(p), "a")
        queue.push(2.0, lambda e, p: order.append(p), "b")
        while True:
            event = queue.pop()
            if event is None:
                break
            event.handler(None, event.payload)
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_priority_then_sequence(self):
        queue = EventQueue()
        queue.push(1.0, lambda e, p: None, "second", priority=1)
        queue.push(1.0, lambda e, p: None, "first", priority=0)
        queue.push(1.0, lambda e, p: None, "third", priority=1)
        assert queue.pop().payload == "first"
        assert queue.pop().payload == "second"
        assert queue.pop().payload == "third"

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda e, p: None, "x")
        event.cancel()
        assert queue.pop() is None

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda e, p: None)
        queue.push(2.0, lambda e, p: None)
        first.cancel()
        assert queue.peek_time() == 2.0
        assert len(queue) == 1


class TestSimulationEngine:
    def test_clock_advances_with_events(self):
        engine = SimulationEngine()
        times = []
        engine.schedule(5.0, lambda e, p: times.append(e.now))
        engine.schedule(2.0, lambda e, p: times.append(e.now))
        processed = engine.run()
        assert processed == 2
        assert times == [2.0, 5.0]
        assert engine.now == 5.0

    def test_handlers_can_schedule_more_events(self):
        engine = SimulationEngine()
        seen = []

        def handler(eng, payload):
            seen.append(payload)
            if payload < 3:
                eng.schedule_after(1.0, handler, payload + 1)

        engine.schedule(0.0, handler, 0)
        engine.run()
        assert seen == [0, 1, 2, 3]
        assert engine.events_processed == 4

    def test_run_until_limit(self):
        engine = SimulationEngine()
        seen = []
        for t in (1.0, 2.0, 3.0):
            engine.schedule(t, lambda e, p: seen.append(p), t)
        engine.run(until=2.5)
        assert seen == [1.0, 2.0]
        assert engine.now == 2.5
        engine.run()
        assert seen == [1.0, 2.0, 3.0]

    def test_max_events_limit(self):
        engine = SimulationEngine()
        for t in range(10):
            engine.schedule(float(t), lambda e, p: None)
        assert engine.run(max_events=4) == 4

    def test_scheduling_in_the_past_rejected(self):
        engine = SimulationEngine(start_time=10.0)
        with pytest.raises(SimulationError):
            engine.schedule(5.0, lambda e, p: None)
        with pytest.raises(SimulationError):
            engine.schedule_after(-1.0, lambda e, p: None)

    def test_stop_cancels_outstanding_events(self):
        engine = SimulationEngine()
        seen = []

        def stopper(eng, payload):
            seen.append("stop")
            eng.stop()

        engine.schedule(1.0, stopper)
        engine.schedule(2.0, lambda e, p: seen.append("should not run"))
        engine.run()
        assert seen == ["stop"]
