"""The paper's primary contribution: network-aware (partial) cache management.

* :mod:`repro.core.store` — the proxy's cache store with byte-accurate
  accounting of (possibly partial) cached objects,
* :mod:`repro.core.frequency` — online request-frequency estimation,
* :mod:`repro.core.policies` — the cache management policies compared in the
  paper (IF, PB, IB, hybrid estimator-e, PB-V, IB-V, LRU/LFU baselines, and
  the offline optimal fractional-knapsack solution),
* :mod:`repro.core.admission` — optional admission filters.
"""

from repro.core.admission import AdmissionFilter, AlwaysAdmit, SizeThresholdAdmission
from repro.core.frequency import FrequencyTracker
from repro.core.policies import (
    CachePolicy,
    HybridPartialBandwidthPolicy,
    IntegralBandwidthPolicy,
    IntegralBandwidthValuePolicy,
    IntegralFrequencyPolicy,
    LRUPolicy,
    PartialBandwidthPolicy,
    PartialBandwidthValuePolicy,
    PolicyContext,
    StaticAllocationPolicy,
    make_policy,
    optimal_allocation,
)
from repro.core.store import CacheStore, CachedObjectState

__all__ = [
    "AdmissionFilter",
    "AlwaysAdmit",
    "CachePolicy",
    "CacheStore",
    "CachedObjectState",
    "FrequencyTracker",
    "HybridPartialBandwidthPolicy",
    "IntegralBandwidthPolicy",
    "IntegralBandwidthValuePolicy",
    "IntegralFrequencyPolicy",
    "LRUPolicy",
    "PartialBandwidthPolicy",
    "PartialBandwidthValuePolicy",
    "PolicyContext",
    "SizeThresholdAdmission",
    "StaticAllocationPolicy",
    "make_policy",
    "optimal_allocation",
]
