"""Tests for the media-object catalog model."""

import pytest

from repro.exceptions import ConfigurationError, UnknownObjectError
from repro.workload.catalog import Catalog, CatalogBuilder, MediaObject


class TestMediaObject:
    def test_size_is_duration_times_bitrate(self):
        obj = MediaObject(object_id=1, duration=100.0, bitrate=48.0)
        assert obj.size == pytest.approx(4800.0)

    def test_frames_assume_24_fps(self):
        obj = MediaObject(object_id=1, duration=10.0, bitrate=48.0)
        assert obj.frames == pytest.approx(240.0)

    def test_invalid_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            MediaObject(object_id=1, duration=0.0, bitrate=48.0)

    def test_invalid_bitrate_rejected(self):
        with pytest.raises(ConfigurationError):
            MediaObject(object_id=1, duration=10.0, bitrate=-1.0)

    def test_negative_value_rejected(self):
        with pytest.raises(ConfigurationError):
            MediaObject(object_id=1, duration=10.0, bitrate=48.0, value=-5.0)

    def test_zero_layers_rejected(self):
        with pytest.raises(ConfigurationError):
            MediaObject(object_id=1, duration=10.0, bitrate=48.0, layers=0)

    def test_minimum_prefix_zero_when_bandwidth_sufficient(self):
        obj = MediaObject(object_id=1, duration=100.0, bitrate=48.0)
        assert obj.minimum_prefix_for_bandwidth(48.0) == 0.0
        assert obj.minimum_prefix_for_bandwidth(100.0) == 0.0

    def test_minimum_prefix_matches_paper_formula(self):
        # (r - b) * T for r > b.
        obj = MediaObject(object_id=1, duration=100.0, bitrate=48.0)
        assert obj.minimum_prefix_for_bandwidth(20.0) == pytest.approx(2800.0)

    def test_minimum_prefix_rejects_negative_bandwidth(self):
        obj = MediaObject(object_id=1, duration=100.0, bitrate=48.0)
        with pytest.raises(ConfigurationError):
            obj.minimum_prefix_for_bandwidth(-1.0)

    def test_startup_delay_zero_with_enough_bandwidth(self):
        obj = MediaObject(object_id=1, duration=100.0, bitrate=48.0)
        assert obj.startup_delay(48.0) == 0.0

    def test_startup_delay_formula_no_cache(self):
        # [T*r - T*b]+ / b = (4800 - 2400) / 24 = 100 seconds.
        obj = MediaObject(object_id=1, duration=100.0, bitrate=48.0)
        assert obj.startup_delay(24.0) == pytest.approx(100.0)

    def test_startup_delay_reduced_by_cached_prefix(self):
        obj = MediaObject(object_id=1, duration=100.0, bitrate=48.0)
        full_prefix = obj.minimum_prefix_for_bandwidth(24.0)
        assert obj.startup_delay(24.0, cached_bytes=full_prefix) == 0.0
        assert obj.startup_delay(24.0, cached_bytes=full_prefix / 2) == pytest.approx(50.0)

    def test_startup_delay_infinite_without_bandwidth_or_cache(self):
        obj = MediaObject(object_id=1, duration=100.0, bitrate=48.0)
        assert obj.startup_delay(0.0) == float("inf")
        assert obj.startup_delay(0.0, cached_bytes=obj.size) == 0.0

    def test_stream_quality_full_with_enough_bandwidth(self):
        obj = MediaObject(object_id=1, duration=100.0, bitrate=48.0, layers=4)
        assert obj.stream_quality(48.0) == 1.0

    def test_stream_quality_quantised_to_layers(self):
        obj = MediaObject(object_id=1, duration=100.0, bitrate=48.0, layers=4)
        # 30/48 = 0.625 -> 2 of 4 layers -> 0.5
        assert obj.stream_quality(30.0) == pytest.approx(0.5)

    def test_stream_quality_includes_cache_contribution(self):
        obj = MediaObject(object_id=1, duration=100.0, bitrate=48.0, layers=4)
        # cache supplies 12 KB/s-equivalent (1200 KB over 100 s), server 24.
        assert obj.stream_quality(24.0, cached_bytes=1200.0) == pytest.approx(0.75)

    def test_stream_quality_zero_bandwidth_zero_cache(self):
        obj = MediaObject(object_id=1, duration=100.0, bitrate=48.0, layers=4)
        assert obj.stream_quality(0.0) == 0.0


class TestCatalog:
    def test_len_and_iteration(self, small_catalog):
        assert len(small_catalog) == 4
        assert sorted(obj.object_id for obj in small_catalog) == [0, 1, 2, 3]

    def test_contains_and_get(self, small_catalog):
        assert 2 in small_catalog
        assert small_catalog.get(2).bitrate == 96.0
        assert 99 not in small_catalog

    def test_get_unknown_raises(self, small_catalog):
        with pytest.raises(UnknownObjectError):
            small_catalog.get(99)

    def test_duplicate_ids_rejected(self):
        obj = MediaObject(object_id=1, duration=10.0, bitrate=48.0)
        with pytest.raises(ConfigurationError):
            Catalog([obj, obj])

    def test_total_size(self, small_catalog):
        expected = 100 * 48 + 200 * 48 + 50 * 96 + 400 * 24
        assert small_catalog.total_size == pytest.approx(expected)
        assert small_catalog.total_size_gb == pytest.approx(expected / 1e6)

    def test_server_ids(self, small_catalog):
        assert small_catalog.server_ids() == [0, 1, 2]

    def test_describe_contains_summary(self, small_catalog):
        summary = small_catalog.describe()
        assert summary["objects"] == 4.0
        assert summary["mean_duration_s"] == pytest.approx((100 + 200 + 50 + 400) / 4)

    def test_empty_catalog_describe(self):
        summary = Catalog([]).describe()
        assert summary["objects"] == 0


class TestCatalogBuilder:
    def test_auto_ids(self):
        builder = CatalogBuilder()
        builder.add(duration=10.0, bitrate=48.0)
        builder.add(duration=20.0, bitrate=48.0)
        catalog = builder.build()
        assert catalog.object_ids() == [0, 1]

    def test_explicit_ids_and_extend(self):
        builder = CatalogBuilder()
        builder.add(duration=10.0, bitrate=48.0, object_id=5)
        builder.extend([MediaObject(object_id=9, duration=5.0, bitrate=10.0)])
        catalog = builder.build()
        assert set(catalog.object_ids()) == {5, 9}
