"""Performance metrics (Section 3.3 of the paper).

Four metrics are collected, each reflecting a different caching objective:

* **traffic reduction ratio** — the fraction of all delivered bytes served
  out of the proxy cache (backbone traffic avoided),
* **average service delay** — the mean startup delay (seconds) a client
  perceives when it chooses to wait for full-quality playout,
* **average stream quality** — the mean fraction of the stream (layers)
  that can be played with zero startup delay when the client chooses to
  degrade instead of wait,
* **total added value** — the summed value ``V_i`` of requests that could be
  served immediately at full quality (the revenue objective of Section 2.6).

The collector also tracks conventional cache statistics (request hit ratio,
byte hit ratio) because they help explain the headline metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.streaming.session import DeliveryOutcome


@dataclass(frozen=True)
class SimulationMetrics:
    """Aggregated metrics over the measurement phase of one simulation run.

    The fault-model fields (``availability`` and the failed / stale /
    retried counters) stay at their no-fault defaults unless the run had
    :attr:`~repro.sim.config.SimulationConfig.faults` enabled:
    ``availability`` is the fraction of measured requests that were served
    at all (stale serves count as served — degraded, not failed), and
    ``stale_served_requests`` counts requests answered from the cached
    prefix of an unreachable origin (:mod:`repro.sim.faults`).
    """

    requests: int
    traffic_reduction_ratio: float
    average_service_delay: float
    average_stream_quality: float
    total_added_value: float
    hit_ratio: float
    byte_hit_ratio: float
    immediate_service_ratio: float
    average_delay_among_delayed: float
    delayed_request_ratio: float
    bytes_from_cache_gb: float
    bytes_from_server_gb: float
    availability: float = 1.0
    failed_requests: int = 0
    stale_served_requests: int = 0
    retried_requests: int = 0
    total_retries: int = 0

    def as_dict(self) -> Dict[str, float]:
        """Return the metrics as a plain dictionary (for tables and JSON)."""
        return {
            "requests": float(self.requests),
            "traffic_reduction_ratio": self.traffic_reduction_ratio,
            "average_service_delay": self.average_service_delay,
            "average_stream_quality": self.average_stream_quality,
            "total_added_value": self.total_added_value,
            "hit_ratio": self.hit_ratio,
            "byte_hit_ratio": self.byte_hit_ratio,
            "immediate_service_ratio": self.immediate_service_ratio,
            "average_delay_among_delayed": self.average_delay_among_delayed,
            "delayed_request_ratio": self.delayed_request_ratio,
            "bytes_from_cache_gb": self.bytes_from_cache_gb,
            "bytes_from_server_gb": self.bytes_from_server_gb,
            "availability": self.availability,
            "failed_requests": float(self.failed_requests),
            "stale_served_requests": float(self.stale_served_requests),
            "retried_requests": float(self.retried_requests),
            "total_retries": float(self.total_retries),
        }

    @staticmethod
    def average(metrics: List["SimulationMetrics"]) -> "SimulationMetrics":
        """Average a list of metrics (the paper averages ten runs per point)."""
        if not metrics:
            raise ValueError("cannot average an empty list of metrics")
        count = len(metrics)

        def mean(attribute: str) -> float:
            return sum(getattr(m, attribute) for m in metrics) / count

        return SimulationMetrics(
            requests=int(mean("requests")),
            traffic_reduction_ratio=mean("traffic_reduction_ratio"),
            average_service_delay=mean("average_service_delay"),
            average_stream_quality=mean("average_stream_quality"),
            total_added_value=mean("total_added_value"),
            hit_ratio=mean("hit_ratio"),
            byte_hit_ratio=mean("byte_hit_ratio"),
            immediate_service_ratio=mean("immediate_service_ratio"),
            average_delay_among_delayed=mean("average_delay_among_delayed"),
            delayed_request_ratio=mean("delayed_request_ratio"),
            bytes_from_cache_gb=mean("bytes_from_cache_gb"),
            bytes_from_server_gb=mean("bytes_from_server_gb"),
            availability=mean("availability"),
            failed_requests=int(mean("failed_requests")),
            stale_served_requests=int(mean("stale_served_requests")),
            retried_requests=int(mean("retried_requests")),
            total_retries=int(mean("total_retries")),
        )


@dataclass
class MetricsCollector:
    """Accumulate per-request outcomes and finalise into metrics.

    Only requests recorded while :attr:`measuring` is True contribute to the
    final metrics; the simulator flips the flag once the warm-up phase ends.
    """

    measuring: bool = False
    _requests: int = 0
    _bytes_from_cache: float = 0.0
    _bytes_from_server: float = 0.0
    _delay_sum: float = 0.0
    _quality_sum: float = 0.0
    _value_sum: float = 0.0
    _hits: int = 0
    _immediate: int = 0
    _delayed: int = 0
    _delay_sum_delayed: float = 0.0
    _warmup_requests: int = 0
    _failed: int = 0
    _stale_served: int = 0
    _retried: int = 0
    _total_retries: int = 0
    _per_object_hits: Dict[int, int] = field(default_factory=dict)

    def record(self, outcome: DeliveryOutcome) -> None:
        """Record one served request (warm-up requests are counted separately)."""
        if not self.measuring:
            self._warmup_requests += 1
            return
        self._requests += 1
        self._bytes_from_cache += outcome.bytes_from_cache
        self._bytes_from_server += outcome.bytes_from_server
        self._delay_sum += outcome.service_delay
        self._quality_sum += outcome.stream_quality
        if outcome.immediate_full_quality:
            self._value_sum += outcome.value
            self._immediate += 1
        else:
            self._delayed += 1
            self._delay_sum_delayed += outcome.service_delay
        if outcome.bytes_from_cache > 0:
            self._hits += 1
            self._per_object_hits[outcome.object_id] = (
                self._per_object_hits.get(outcome.object_id, 0) + 1
            )

    def record_served_fault(
        self,
        object_id: int,
        bytes_from_cache: float,
        bytes_from_server: float,
        delay: float,
        quality: float,
        value: float,
        retries: int,
    ) -> None:
        """Record one request served through the fault machinery.

        Same accumulation as :meth:`record` — the caller has already
        folded any retry-backoff wait into ``delay`` (a request that
        waited is by definition not immediate) — plus the retry counters.
        Used by the event-calendar replay path; the tight loops inline the
        identical arithmetic (:mod:`repro.sim.faults`).
        """
        if not self.measuring:
            self._warmup_requests += 1
            return
        self._requests += 1
        self._bytes_from_cache += bytes_from_cache
        self._bytes_from_server += bytes_from_server
        self._delay_sum += delay
        self._quality_sum += quality
        if delay <= 0.0:
            self._value_sum += value
            self._immediate += 1
        else:
            self._delayed += 1
            self._delay_sum_delayed += delay
        if bytes_from_cache > 0:
            self._hits += 1
            self._per_object_hits[object_id] = (
                self._per_object_hits.get(object_id, 0) + 1
            )
        if retries:
            self._retried += 1
            self._total_retries += retries

    def record_streaming(
        self,
        object_id: int,
        bytes_from_cache: float,
        bytes_from_server: float,
        delay: float,
        quality: float,
        value: float,
        full_quality: bool,
        retries: int,
    ) -> None:
        """Record one streaming session served by the delivery engine.

        Same accumulation shape as :meth:`record_served_fault`, except
        value accrues only for immediate *full-quality* sessions — a
        session that degraded to fewer layers starts instantly but does
        not earn the object's revenue (Section 2.6's full-quality
        condition).  Used by the event-calendar replay path; the tight
        loops inline the identical arithmetic.
        """
        if not self.measuring:
            self._warmup_requests += 1
            return
        self._requests += 1
        self._bytes_from_cache += bytes_from_cache
        self._bytes_from_server += bytes_from_server
        self._delay_sum += delay
        self._quality_sum += quality
        if delay <= 0.0:
            if full_quality:
                self._value_sum += value
            self._immediate += 1
        else:
            self._delayed += 1
            self._delay_sum_delayed += delay
        if bytes_from_cache > 0:
            self._hits += 1
            self._per_object_hits[object_id] = (
                self._per_object_hits.get(object_id, 0) + 1
            )
        if retries:
            self._retried += 1
            self._total_retries += retries

    def record_unserved(
        self,
        object_id: int,
        cached: float,
        delay: float,
        quality: float,
        retries: int,
        stale: bool,
    ) -> None:
        """Record one request whose fetch failed after every retry.

        ``stale`` means the cached prefix was served in place of the
        unreachable origin (a stale serve: cache bytes and quality count,
        the request is a hit, but it is never immediate and earns no
        value); otherwise the request failed outright and contributes only
        its backoff ``delay``.  Both count as delayed — a client that
        waited through the retry budget did not get immediate service.
        """
        if not self.measuring:
            self._warmup_requests += 1
            return
        self._requests += 1
        if stale:
            self._bytes_from_cache += cached
            self._quality_sum += quality
            self._hits += 1
            self._per_object_hits[object_id] = (
                self._per_object_hits.get(object_id, 0) + 1
            )
            self._stale_served += 1
        else:
            self._failed += 1
        self._delay_sum += delay
        self._delayed += 1
        self._delay_sum_delayed += delay
        if retries:
            self._retried += 1
            self._total_retries += retries

    @property
    def warmup_requests(self) -> int:
        """Number of requests processed during warm-up."""
        return self._warmup_requests

    def snapshot(self) -> tuple:
        """The fourteen core cumulative accumulators, as a tuple.

        Order matches the keyword order of :meth:`absorb` (minus the
        warm-up counter and per-object hit map); this is the core of
        each :class:`repro.obs.timeline.MetricsTimeline` marker, so the
        fast replay paths build the identical tuple from their local
        accumulators without calling this method.
        """
        return (
            self._requests,
            self._bytes_from_cache,
            self._bytes_from_server,
            self._delay_sum,
            self._quality_sum,
            self._value_sum,
            self._hits,
            self._immediate,
            self._delayed,
            self._delay_sum_delayed,
            self._failed,
            self._stale_served,
            self._retried,
            self._total_retries,
        )

    def absorb(
        self,
        *,
        requests: int = 0,
        bytes_from_cache: float = 0.0,
        bytes_from_server: float = 0.0,
        delay_sum: float = 0.0,
        quality_sum: float = 0.0,
        value_sum: float = 0.0,
        hits: int = 0,
        immediate: int = 0,
        delayed: int = 0,
        delay_sum_delayed: float = 0.0,
        warmup_requests: int = 0,
        failed: int = 0,
        stale_served: int = 0,
        retried: int = 0,
        total_retries: int = 0,
        per_object_hits: Optional[Dict[int, int]] = None,
    ) -> None:
        """Merge pre-accumulated totals into the collector.

        The simulator's fast replay path accumulates per-request quantities
        in local variables (in exactly the order :meth:`record` would have
        added them, so floating-point sums are bit-identical) and merges
        them here once per run instead of paying a method call per request.
        """
        self._requests += requests
        self._bytes_from_cache += bytes_from_cache
        self._bytes_from_server += bytes_from_server
        self._delay_sum += delay_sum
        self._quality_sum += quality_sum
        self._value_sum += value_sum
        self._hits += hits
        self._immediate += immediate
        self._delayed += delayed
        self._delay_sum_delayed += delay_sum_delayed
        self._warmup_requests += warmup_requests
        self._failed += failed
        self._stale_served += stale_served
        self._retried += retried
        self._total_retries += total_retries
        if per_object_hits:
            existing = self._per_object_hits
            for object_id, count in per_object_hits.items():
                existing[object_id] = existing.get(object_id, 0) + count

    def finalize(self) -> SimulationMetrics:
        """Produce the aggregate metrics for the measurement phase."""
        requests = self._requests
        total_bytes = self._bytes_from_cache + self._bytes_from_server
        return SimulationMetrics(
            requests=requests,
            traffic_reduction_ratio=(
                self._bytes_from_cache / total_bytes if total_bytes > 0 else 0.0
            ),
            average_service_delay=(self._delay_sum / requests if requests > 0 else 0.0),
            average_stream_quality=(
                self._quality_sum / requests if requests > 0 else 1.0
            ),
            total_added_value=self._value_sum,
            hit_ratio=(self._hits / requests if requests > 0 else 0.0),
            byte_hit_ratio=(
                self._bytes_from_cache / total_bytes if total_bytes > 0 else 0.0
            ),
            immediate_service_ratio=(
                self._immediate / requests if requests > 0 else 1.0
            ),
            average_delay_among_delayed=(
                self._delay_sum_delayed / self._delayed if self._delayed > 0 else 0.0
            ),
            delayed_request_ratio=(self._delayed / requests if requests > 0 else 0.0),
            bytes_from_cache_gb=self._bytes_from_cache / 1_000_000.0,
            bytes_from_server_gb=self._bytes_from_server / 1_000_000.0,
            availability=(
                1.0 - self._failed / requests if requests > 0 else 1.0
            ),
            failed_requests=self._failed,
            stale_served_requests=self._stale_served,
            retried_requests=self._retried,
            total_retries=self._total_retries,
        )

    def top_hit_objects(self, count: int = 10) -> List[Optional[int]]:
        """Object ids with the most cache hits (diagnostics)."""
        ranked = sorted(
            self._per_object_hits.items(), key=lambda item: item[1], reverse=True
        )
        return [object_id for object_id, _ in ranked[:count]]
