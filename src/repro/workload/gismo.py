"""GISMO-style synthetic workload generator.

The paper generates its evaluation workloads with the GISMO toolset
[Jin & Bestavros 2001].  :class:`GismoWorkloadGenerator` reproduces the
combination of models Table 1 specifies:

* 5,000 unique objects,
* Zipf-like popularity (default ``alpha = 0.73``),
* 100,000 requests arriving according to a Poisson process,
* lognormal object durations (``mu = 3.85``, ``sigma = 0.56`` minutes),
* constant 48 KB/s bit-rate,
* total unique object size around 790 GB.

The generator also assigns each object to an origin server and draws a
per-object value ``V_i`` (uniform $1–$10) for the revenue experiments of
Section 4.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.units import DEFAULT_BITRATE_KBPS
from repro.workload.arrivals import ArrivalProcess, PoissonArrivalProcess
from repro.workload.catalog import Catalog, MediaObject
from repro.workload.popularity import PopularityModel, ZipfPopularity
from repro.workload.sizes import (
    BitrateModel,
    ConstantBitrateModel,
    DurationModel,
    LognormalDurationModel,
)
from repro.workload.trace import RequestTrace


@dataclass
class WorkloadConfig:
    """Parameters of a synthetic workload (defaults follow Table 1).

    Attributes
    ----------
    num_objects:
        Number of unique streaming media objects (paper: 5,000).
    num_requests:
        Number of requests in the trace (paper: 100,000).
    zipf_alpha:
        Skew of the Zipf-like popularity distribution (paper default 0.73;
        Figure 6 sweeps 0.5–1.2).
    arrival_rate:
        Poisson request arrival rate in requests/second.  The paper does not
        publish the absolute rate; the default of one request per 3 seconds
        spreads 100k requests over about 3.5 days, long relative to every
        object duration, which is all the metrics depend on.
    duration_mu, duration_sigma:
        Lognormal parameters of object duration (minutes).
    bitrate:
        CBR encoding rate of every object in KB/s (paper: 48).
    num_servers:
        How many distinct origin servers host the catalog; each object is
        assigned to one server uniformly at random and inherits that
        server's path bandwidth.
    value_min, value_max:
        Range of the per-object value ``V_i`` in dollars (paper: $1–$10).
    layers:
        Number of encoding layers used by the stream-quality metric.
    num_clients:
        How many distinct clients issue the requests.  The paper assumes a
        homogeneous client cloud, so the default of 1 leaves every
        request's ``client_id`` at 0 — and the generator's draws exactly as
        they have always been.  With more clients each request is assigned
        one uniformly at random (drawn *after* every other column, so
        catalogs and arrival/popularity draws are unchanged); the client
        column is what per-client last-mile modeling keys on
        (``docs/clients.md``).
    seed:
        Seed for the workload's random number generator.
    """

    num_objects: int = 5_000
    num_requests: int = 100_000
    zipf_alpha: float = 0.73
    arrival_rate: float = 1.0 / 3.0
    duration_mu: float = 3.85
    duration_sigma: float = 0.56
    bitrate: float = DEFAULT_BITRATE_KBPS
    num_servers: int = 500
    value_min: float = 1.0
    value_max: float = 10.0
    layers: int = 4
    num_clients: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_objects <= 0:
            raise ConfigurationError("num_objects must be positive")
        if self.num_requests <= 0:
            raise ConfigurationError("num_requests must be positive")
        if self.num_servers <= 0:
            raise ConfigurationError("num_servers must be positive")
        if self.num_clients <= 0:
            raise ConfigurationError("num_clients must be positive")
        if self.value_min < 0 or self.value_max < self.value_min:
            raise ConfigurationError(
                f"invalid value range [{self.value_min}, {self.value_max}]"
            )

    def scaled(self, factor: float) -> "WorkloadConfig":
        """Return a copy with object and request counts scaled by ``factor``.

        Useful for quick smoke tests and CI runs that keep the workload's
        shape but shrink its volume.
        """
        if factor <= 0:
            raise ConfigurationError(f"factor must be positive, got {factor}")
        return replace(
            self,
            num_objects=max(1, int(self.num_objects * factor)),
            num_requests=max(1, int(self.num_requests * factor)),
            num_servers=max(1, int(self.num_servers * factor)),
        )


@dataclass
class Workload:
    """A generated workload: catalog, request trace, and provenance.

    ``trace`` is either an object-per-request :class:`RequestTrace` or a
    numpy-native :class:`~repro.trace.columnar.ColumnarTrace`; both expose
    the same protocol and every consumer accepts either.
    """

    catalog: Catalog
    trace: RequestTrace
    config: WorkloadConfig
    expected_rates: np.ndarray = field(repr=False, default=None)

    def describe(self) -> dict:
        """Summary statistics used by reports and the Table 1 benchmark."""
        summary = dict(self.catalog.describe())
        summary.update(
            {
                "requests": float(len(self.trace)),
                "trace_duration_s": self.trace.duration,
                "zipf_alpha": self.config.zipf_alpha,
            }
        )
        return summary


class GismoWorkloadGenerator:
    """Generate catalogs and request traces in the style of GISMO.

    The generator is deterministic given ``config.seed``; two generators
    built from equal configs produce identical workloads, which is what lets
    experiments compare policies on the *same* trace.
    """

    def __init__(
        self,
        config: Optional[WorkloadConfig] = None,
        popularity: Optional[PopularityModel] = None,
        durations: Optional[DurationModel] = None,
        bitrates: Optional[BitrateModel] = None,
        arrivals: Optional[ArrivalProcess] = None,
    ):
        self.config = config or WorkloadConfig()
        self.popularity = popularity or ZipfPopularity(self.config.zipf_alpha)
        self.durations = durations or LognormalDurationModel(
            mu=self.config.duration_mu, sigma=self.config.duration_sigma
        )
        self.bitrates = bitrates or ConstantBitrateModel(self.config.bitrate)
        self.arrivals = arrivals or PoissonArrivalProcess(self.config.arrival_rate)

    def generate_catalog(self, rng: Optional[np.random.Generator] = None) -> Catalog:
        """Generate only the object catalog."""
        rng = rng or np.random.default_rng(self.config.seed)
        cfg = self.config
        # All four per-object attribute draws are single numpy batches; the
        # arrays are converted to native scalars once (``tolist``) instead of
        # boxing a numpy scalar per object.
        durations = np.asarray(self.durations.sample(cfg.num_objects, rng)).tolist()
        bitrates = np.asarray(self.bitrates.sample(cfg.num_objects, rng)).tolist()
        servers = rng.integers(0, cfg.num_servers, size=cfg.num_objects).tolist()
        values = rng.uniform(cfg.value_min, cfg.value_max, size=cfg.num_objects).tolist()
        layers = cfg.layers
        objects = [
            MediaObject(
                object_id=i,
                duration=duration,
                bitrate=bitrate,
                server_id=server_id,
                value=value,
                layers=layers,
            )
            for i, (duration, bitrate, server_id, value) in enumerate(
                zip(durations, bitrates, servers, values)
            )
        ]
        return Catalog(objects)

    def generate(self, columnar: bool = False) -> Workload:
        """Generate the full workload: catalog plus request trace.

        With ``columnar=True`` the trace is emitted as a
        :class:`~repro.trace.columnar.ColumnarTrace` built directly from the
        sampled numpy arrays — no per-request ``Request`` boxing, and the
        workload becomes eligible for the shared-memory parallel transport.
        Both modes draw from the generator identically and produce
        value-identical traces.
        """
        rng = np.random.default_rng(self.config.seed)
        cfg = self.config
        catalog = self.generate_catalog(rng)
        times = self.arrivals.sample(cfg.num_requests, rng)
        ranks = self.popularity.sample_ranks(cfg.num_objects, cfg.num_requests, rng)
        # Client assignment draws last so that enabling a multi-client
        # population never perturbs the catalog/arrival/popularity draws
        # (single-client workloads skip the draw entirely and stay
        # byte-identical to previous releases).
        clients = None
        if cfg.num_clients > 1:
            clients = rng.integers(0, cfg.num_clients, size=cfg.num_requests)
        if columnar:
            # Imported lazily: repro.trace.columnar consumes this module's
            # types through the package, so a top-level import would cycle.
            from repro.trace.columnar import ColumnarTrace

            trace = ColumnarTrace(times, ranks, clients)
        else:
            trace = RequestTrace.from_arrays(
                times, ranks, clients if clients is not None else ()
            )
        expected = self.popularity.probabilities(cfg.num_objects) * cfg.num_requests
        return Workload(
            catalog=catalog, trace=trace, config=cfg, expected_rates=expected
        )


def table1_workload(
    seed: int = 0, scale: float = 1.0, columnar: bool = False
) -> Workload:
    """Convenience constructor for the paper's Table 1 workload.

    ``scale`` shrinks (or grows) the object and request counts while keeping
    every distributional parameter fixed, which preserves the relative
    behaviour of the caching policies at a fraction of the runtime.
    ``columnar`` selects the numpy-native trace representation.
    """
    config = WorkloadConfig(seed=seed)
    if scale != 1.0:
        config = config.scaled(scale)
    return GismoWorkloadGenerator(config).generate(columnar=columnar)
