"""Parallel experiment orchestration.

Every data point in the paper's figures averages several independent
simulation runs, and the sweeps multiply that by policies and cache sizes —
an embarrassingly parallel grid of ``(seed, policy, sweep-point)`` jobs.
This module fans those jobs out over a :class:`~concurrent.futures.
ProcessPoolExecutor` while keeping the results **deterministic**: each job
carries its own fully-resolved :class:`~repro.sim.config.SimulationConfig`
(seed included), results are re-assembled in submission order, and averages
are computed in exactly the order the serial loops use — so ``n_jobs=4``
produces byte-identical tables to ``n_jobs=1``.

Design notes
------------
* The (potentially large) workload is shipped to each worker **once**, via
  the executor's initializer, rather than being pickled into every job.
* When the workload carries a :class:`~repro.trace.columnar.ColumnarTrace`
  (or ``transport="shm"`` forces a conversion), the trace is published once
  into POSIX shared memory (:mod:`repro.trace.shm`) and workers attach
  zero-copy by name — the initializer then pickles only the catalog and a
  tiny descriptor, so fan-out cost no longer scales with trace length.
  The segment is unlinked in a ``finally`` even when workers crash, and the
  transport silently falls back to pickling when shared memory is
  unavailable.
* Jobs that share a topology (policy comparisons) rebuild it inside the
  worker from the job's seed — bandwidth assignment is a deterministic
  function of the seed, so every policy still faces identical network
  conditions without any cross-process coordination.
* Policy factories must be picklable for ``n_jobs > 1``; use
  :class:`~repro.core.policies.registry.PolicySpec` instead of lambdas.
* A worker crash (OOM kill, segfault) breaks the whole pool and fails every
  in-flight future collectively; rather than losing the sweep, the crashed
  jobs are retried **once** on a fresh pool after a jittered backoff, and
  only jobs that crash twice abort the sweep — with their indices named in
  the error.  Job-raised exceptions still propagate immediately: those are
  deterministic, and a retry would only repeat them.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, SimulationError
from repro.sim.config import SimulationConfig
from repro.sim.hierarchy import HierarchyReport
from repro.sim.metrics import MetricsCollector, SimulationMetrics
from repro.sim.simulator import ProxyCacheSimulator, SimulationResult
from repro.trace.columnar import ColumnarTrace
from repro.trace.shm import (
    SharedTraceDescriptor,
    attach_trace,
    publish_trace,
    shm_available,
)
from repro.workload.gismo import Workload

#: Accepted values of the ``transport`` argument of
#: :func:`run_simulation_jobs`.
TRANSPORTS = ("auto", "shm", "pickle")

#: Below this trace payload size, ``transport="auto"`` pickles instead of
#: publishing to shared memory: for small traces the segment create/copy/
#: attach round-trip costs more than the pickling it saves.  4 MiB is about
#: a 200k-request trace.  ``transport="shm"`` forces shared memory at any
#: size.
SHM_MIN_TRACE_BYTES = 4 * 1024 * 1024


@dataclass(frozen=True)
class SimulationJob:
    """One fully-specified simulation run.

    Attributes
    ----------
    config:
        The run's configuration with its *final* seed and cache size — seed
        assignment happens when the job grid is built, never inside a
        worker, so the schedule is independent of execution order.
    policy_factory:
        Zero-argument callable producing a fresh policy instance.  Must be
        picklable when the job is executed in a worker process.
    share_topology:
        When True the worker pre-builds the topology from a dedicated
        generator seeded with ``config.seed`` (the protocol
        :func:`~repro.sim.runner.compare_policies` uses so every policy sees
        identical bandwidth assignments); when False the simulator draws the
        topology inside :meth:`~repro.sim.simulator.ProxyCacheSimulator.run`
        (the :func:`~repro.sim.runner.run_replications` protocol).
    replay:
        Which replay driver the worker forces — one of
        :data:`~repro.sim.simulator.REPLAY_PATHS`, or ``None``/``"auto"``
        (default) to pick automatically.  All drivers produce
        bit-identical metrics, so forcing one only matters when
        benchmarking a specific loop.
    """

    config: SimulationConfig
    policy_factory: Callable[[], object]
    share_topology: bool = True
    replay: Optional[str] = None


#: Workload installed in each worker process by the pool initializer.
_WORKER_WORKLOAD: Optional[Workload] = None


def _init_worker(workload: Workload) -> None:
    global _WORKER_WORKLOAD
    _WORKER_WORKLOAD = workload


def _init_worker_shm(
    catalog,
    config,
    expected_rates,
    descriptor: SharedTraceDescriptor,
) -> None:
    """Pool initializer for the shared-memory transport.

    Receives everything *except* the trace by pickle and attaches to the
    published trace by name; the reconstructed workload's trace columns are
    zero-copy views on the shared block, which the trace's owner reference
    keeps mapped for the worker's lifetime.
    """
    global _WORKER_WORKLOAD
    _WORKER_WORKLOAD = Workload(
        catalog=catalog,
        trace=attach_trace(descriptor),
        config=config,
        expected_rates=expected_rates,
    )


def _execute_job(job: SimulationJob) -> SimulationMetrics:
    """Run one job against the worker's installed workload."""
    workload = _WORKER_WORKLOAD
    if workload is None:  # pragma: no cover - defensive
        raise ConfigurationError("worker has no workload installed")
    simulator = ProxyCacheSimulator(workload, job.config)
    topology = None
    if job.share_topology:
        topology = simulator.build_topology(np.random.default_rng(job.config.seed))
    result = simulator.run(job.policy_factory(), topology=topology, replay=job.replay)
    return result.metrics


#: Base pause (seconds) before respawning a pool after a worker crash; the
#: actual wait is jittered to ``[1x, 2x)`` of this.
_RETRY_BACKOFF_S = 0.5


def _run_pool(
    jobs: Sequence[object],
    workers: int,
    initializer: Callable,
    initargs: tuple,
    execute: Callable = _execute_job,
) -> Tuple[Dict[int, object], List[int]]:
    """Run jobs on one process pool, absorbing worker-crash failures.

    ``execute`` is the module-level function each job is submitted
    through (:func:`_execute_job` for metric sweeps,
    :func:`_execute_fleet_shard` for sharded fleet replay — it must be
    picklable).  Returns ``(results_by_index, crashed_indices)``.  A
    crashed worker breaks the whole
    :class:`~concurrent.futures.ProcessPoolExecutor` (every in-flight
    future fails with :class:`BrokenProcessPool`), so the crashed indices
    are collected for the caller to retry instead of aborting the sweep.
    Ordinary exceptions raised *by a job* (a misconfigured simulation,
    say) propagate unchanged — those are deterministic and retrying
    cannot fix them.
    """
    results: Dict[int, object] = {}
    crashed: List[int] = []
    with ProcessPoolExecutor(
        max_workers=workers, initializer=initializer, initargs=initargs
    ) as executor:
        try:
            futures = [executor.submit(execute, job) for job in jobs]
        except BrokenProcessPool:
            # The pool died during submission (initializer crash): nothing
            # ran, everything is retryable.
            return results, list(range(len(jobs)))
        for index, future in enumerate(futures):
            try:
                results[index] = future.result()
            except BrokenProcessPool:
                crashed.append(index)
    return results, crashed


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalise an ``n_jobs`` argument to a concrete worker count.

    ``None`` and ``1`` mean serial; ``-1`` (or ``0``) means one worker per
    available CPU; positive values are taken as-is.
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs in (0, -1):
        return max(os.cpu_count() or 1, 1)
    if n_jobs < -1:
        raise ConfigurationError(f"n_jobs must be >= -1, got {n_jobs}")
    return n_jobs


def run_simulation_jobs(
    workload: Workload,
    jobs: Sequence[SimulationJob],
    n_jobs: Optional[int] = 1,
    transport: str = "auto",
) -> List[SimulationMetrics]:
    """Execute a grid of simulation jobs, serially or on a process pool.

    Results are returned in job order regardless of completion order, so
    any downstream averaging is order-stable and the output is independent
    of ``n_jobs`` and ``transport``.

    ``transport`` selects how the workload reaches the workers:

    * ``"auto"`` (default) — shared memory when the trace is columnar, at
      least :data:`SHM_MIN_TRACE_BYTES` big, and the platform supports it;
      pickling otherwise;
    * ``"shm"`` — force shared memory, converting an object trace to
      columnar first (raises if shared memory is unusable);
    * ``"pickle"`` — always pickle the whole workload into the pool
      initializer (the pre-shm behaviour).
    """
    return _dispatch_jobs(workload, jobs, n_jobs, transport, _execute_job)


def _dispatch_jobs(
    workload: Workload,
    jobs: Sequence[object],
    n_jobs: Optional[int],
    transport: str,
    execute: Callable,
) -> List[object]:
    """Shared dispatch core of the job-grid and fleet-shard entry points.

    Handles transport validation, the serial in-process shortcut, the
    shared-memory publish/attach round-trip, and the crash-retry protocol
    identically for every job type; ``execute`` is the module-level
    per-job function submitted to the pool.  Results come back in job
    order regardless of completion order.
    """
    if transport not in TRANSPORTS:
        raise ConfigurationError(
            f"transport must be one of {TRANSPORTS}, got {transport!r}"
        )
    if transport == "shm" and not shm_available():
        # Checked before the serial shortcut so the contract holds for
        # every worker count, not only when a pool is actually spawned.
        raise ConfigurationError(
            "transport='shm' requested but multiprocessing.shared_memory "
            "is unavailable on this platform"
        )
    jobs = list(jobs)
    if not jobs:
        return []
    workers = min(resolve_n_jobs(n_jobs), len(jobs))
    if workers <= 1:
        global _WORKER_WORKLOAD
        previous = _WORKER_WORKLOAD
        _init_worker(workload)
        try:
            return [execute(job) for job in jobs]
        finally:
            _WORKER_WORKLOAD = previous

    shared = None
    if shm_available() and (
        transport == "shm"
        or (
            transport == "auto"
            and isinstance(workload.trace, ColumnarTrace)
            and workload.trace.nbytes >= SHM_MIN_TRACE_BYTES
        )
    ):
        try:
            shared = publish_trace(ColumnarTrace.from_trace(workload.trace))
        except (OSError, ConfigurationError):
            if transport == "shm":
                raise
            shared = None  # auto: fall back to pickling the workload

    if shared is not None:
        initializer, initargs = _init_worker_shm, (
            workload.catalog,
            workload.config,
            workload.expected_rates,
            shared.descriptor,
        )
    else:
        initializer, initargs = _init_worker, (workload,)
    try:
        results, broken = _run_pool(jobs, workers, initializer, initargs, execute)
        if broken:
            # A worker process died (OOM kill, segfault, machine hiccup)
            # and took the whole pool with it — every job still in flight
            # failed collectively, not individually.  One deliberate retry
            # on a fresh pool salvages the sweep from a transient crash;
            # the jittered pause keeps respawned workers from slamming
            # into the same memory spike in lockstep.
            time.sleep(_RETRY_BACKOFF_S * (1.0 + random.random()))
            retried, still_broken = _run_pool(
                [jobs[index] for index in broken],
                min(workers, len(broken)),
                initializer,
                initargs,
                execute,
            )
            for position, index in enumerate(broken):
                if position in retried:
                    results[index] = retried[position]
            if still_broken:
                failed = sorted(broken[position] for position in still_broken)
                raise SimulationError(
                    f"{len(failed)} of {len(jobs)} simulation jobs lost to "
                    f"worker crashes even after a retry on a fresh pool "
                    f"(job indices {failed[:10]}"
                    + ("..." if len(failed) > 10 else "")
                    + "); the workload may not fit the configured worker count"
                )
        return [results[index] for index in range(len(jobs))]
    finally:
        # Guaranteed reclamation of the shared segment, including when a
        # worker died mid-job and both pool attempts above raised.
        if shared is not None:
            shared.unlink()


def replication_jobs(
    config: SimulationConfig,
    policy_factory: Callable[[], object],
    num_runs: int,
    share_topology: bool = False,
) -> List[SimulationJob]:
    """The deterministic seed schedule of a replication experiment.

    Run ``i`` uses seed ``config.seed + i`` — the same assignment the serial
    loops use, so parallel execution replays the identical experiment.
    """
    if num_runs <= 0:
        raise ConfigurationError(f"num_runs must be positive, got {num_runs}")
    return [
        SimulationJob(
            config=config.with_seed(config.seed + run_index),
            policy_factory=policy_factory,
            share_topology=share_topology,
        )
        for run_index in range(num_runs)
    ]


# ----------------------------------------------------------------------
# Sharded fleet replay (hierarchy pops as independent processes).
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FleetShardJob:
    """One pop-group's slice of a fleet replay.

    The worker selects the clients with ``client_id % num_shards ==
    shard`` from its installed workload trace
    (:meth:`~repro.trace.columnar.ColumnarTrace.client_shard`) — the same
    affinity rule that pins clients to hierarchy pops — and replays only
    that slice.  Shipping ``(shard, num_shards)`` instead of the
    sub-trace keeps the fan-out cost independent of trace length: the
    full trace travels once (shared memory when columnar and large), and
    each worker's selection is a local mask over the attached columns.
    """

    config: SimulationConfig
    policy_factory: Callable[[], object]
    shard: int
    num_shards: int
    replay: Optional[str] = None


def _execute_fleet_shard(job: FleetShardJob) -> SimulationResult:
    """Replay one client shard against the worker's installed workload.

    The topology is built from a dedicated generator seeded with the
    config seed — a deterministic function of the seed and the (shared)
    catalog — so every shard faces identical per-server bandwidth
    assignments, exactly as one process replaying the whole trace would.
    """
    workload = _WORKER_WORKLOAD
    if workload is None:  # pragma: no cover - defensive
        raise ConfigurationError("worker has no workload installed")
    shard_trace = ColumnarTrace.from_trace(workload.trace).client_shard(
        job.shard, job.num_shards
    )
    shard_workload = replace(workload, trace=shard_trace)
    simulator = ProxyCacheSimulator(shard_workload, job.config)
    topology = simulator.build_topology(np.random.default_rng(job.config.seed))
    return simulator.run(job.policy_factory(), topology=topology, replay=job.replay)


def merge_shard_results(
    shard_results: Sequence[Tuple[int, SimulationResult]],
) -> SimulationResult:
    """Deterministically reduce per-shard results into one fleet result.

    Accepts ``(shard_index, result)`` pairs in **any** order — workers
    complete unpredictably — and first sorts by shard index, so the
    floating-point accumulation order is a function of the shard
    partition alone and the merged result is bit-identical under every
    completion permutation.

    The reduction reconstructs each shard's metric accumulators from its
    finalized averages (``sum = average x count``), merges them through
    the same :class:`~repro.sim.metrics.MetricsCollector` the replay
    loops feed, and re-applies :meth:`~repro.sim.metrics.
    MetricsCollector.finalize` — so every derived ratio is recomputed
    over fleet-wide totals rather than averaged across shards.
    Hierarchy reports merge tier-by-tier
    (:meth:`~repro.sim.hierarchy.HierarchyReport.merge`); the per-run
    diagnostic blocks that have no cross-process meaning (timeline,
    profile, fault and streaming reports, heap statistics) are dropped
    from the merged result and remain readable per shard.
    """
    if not shard_results:
        raise ConfigurationError("cannot merge an empty list of shard results")
    ordered = sorted(shard_results, key=lambda pair: pair[0])
    results = [result for _, result in ordered]
    collector = MetricsCollector(measuring=True)
    for result in results:
        metrics = result.metrics
        requests = metrics.requests
        delayed = round(metrics.delayed_request_ratio * requests)
        collector.absorb(
            requests=requests,
            bytes_from_cache=metrics.bytes_from_cache_gb * 1_000_000.0,
            bytes_from_server=metrics.bytes_from_server_gb * 1_000_000.0,
            delay_sum=metrics.average_service_delay * requests,
            quality_sum=metrics.average_stream_quality * requests,
            value_sum=metrics.total_added_value,
            hits=round(metrics.hit_ratio * requests),
            immediate=round(metrics.immediate_service_ratio * requests),
            delayed=delayed,
            delay_sum_delayed=metrics.average_delay_among_delayed * delayed,
            warmup_requests=result.warmup_requests,
            failed=metrics.failed_requests,
            stale_served=metrics.stale_served_requests,
            retried=metrics.retried_requests,
            total_retries=metrics.total_retries,
        )
    reports = [result.hierarchy_report for result in results]
    merged_report = (
        HierarchyReport.merge(reports) if all(r is not None for r in reports) else None
    )
    reference = results[0]
    return SimulationResult(
        metrics=collector.finalize(),
        policy_name=reference.policy_name,
        config=reference.config,
        # Every shard runs the same cache capacities, so the fleet-wide
        # occupancy (total used / total capacity) is the plain mean.
        final_cache_occupancy=(
            sum(result.final_cache_occupancy for result in results) / len(results)
        ),
        final_cached_objects=sum(result.final_cached_objects for result in results),
        warmup_requests=sum(result.warmup_requests for result in results),
        used_fast_path=all(result.used_fast_path for result in results),
        replay_path=reference.replay_path,
        auxiliary_events_fired=sum(
            result.auxiliary_events_fired for result in results
        ),
        hierarchy_report=merged_report,
    )


@dataclass(frozen=True)
class FleetReplayResult:
    """Outcome of :func:`run_sharded_fleet`.

    ``merged`` is the deterministic fleet-wide reduction; ``shard_results``
    keeps each shard's full :class:`~repro.sim.simulator.SimulationResult`
    (in shard order) for per-pop inspection.
    """

    merged: SimulationResult
    shard_results: Tuple[SimulationResult, ...]
    num_shards: int


def run_sharded_fleet(
    workload: Workload,
    config: SimulationConfig,
    policy_factory: Callable[[], object],
    num_shards: int,
    n_jobs: Optional[int] = 1,
    transport: str = "auto",
    replay: Optional[str] = None,
) -> FleetReplayResult:
    """Replay a workload as ``num_shards`` client-group shards and reduce.

    Each shard replays the clients with ``client_id % num_shards ==
    shard`` in its own job — in-process when ``n_jobs`` resolves to one
    worker, otherwise across a process pool fed by the same workload
    transports as :func:`run_simulation_jobs` (shared memory for large
    columnar traces).  The merged result is produced by
    :func:`merge_shard_results` and is identical for every ``n_jobs`` and
    ``transport`` choice: the partition, each shard's replay, and the
    reduction order are all deterministic in ``config.seed``.

    Hierarchy configs compose per shard — every shard runs its own full
    tier chain, which matches the per-pop fleet semantics of
    :mod:`repro.sim.hierarchy` exactly as long as pops do not read each
    other's caches; ``sibling_lookup`` couples pops cross-shard and is
    therefore rejected here.

    ``replay`` forces a specific replay driver in every shard (see
    :data:`~repro.sim.simulator.REPLAY_PATHS`); leave it ``None`` to let
    each shard pick automatically — a shard's trace is a client slice
    whose object-id density can differ from the full trace's, so a
    driver that is legal on the whole workload may be rejected on a
    shard.
    """
    if num_shards <= 0:
        raise ConfigurationError(
            f"num_shards must be positive, got {num_shards}"
        )
    if config.hierarchy is not None and config.hierarchy.sibling_lookup:
        raise ConfigurationError(
            "sharded fleet replay cannot run with sibling_lookup: sibling "
            "reads couple pops across shard boundaries, so the partition "
            "would change the result; run single-process or disable "
            "sibling lookups"
        )
    jobs = [
        FleetShardJob(
            config=config,
            policy_factory=policy_factory,
            shard=shard,
            num_shards=num_shards,
            replay=replay,
        )
        for shard in range(num_shards)
    ]
    results = _dispatch_jobs(workload, jobs, n_jobs, transport, _execute_fleet_shard)
    merged = merge_shard_results(list(enumerate(results)))
    return FleetReplayResult(
        merged=merged,
        shard_results=tuple(results),
        num_shards=num_shards,
    )
