"""Raw simulation-core throughput: event calendar vs fast path vs columnar.

Unlike the figure benchmarks (which time whole experiments), this
microbenchmark isolates the replay loop itself: one ~200k-request trace is
replayed against identical topologies through the discrete-event calendar
(the pre-optimisation baseline), through the fast path over an
object-per-request trace (PR 1), through the fast path over a numpy-native
:class:`~repro.trace.columnar.ColumnarTrace`, and through the **columnar
event path** (the calendar iterating the numpy columns directly, with and
without periodic bandwidth re-measurement) — and the requests/second of
all of them, the speedups, the re-measurement overhead ratio, the
passive-driven reactive re-keying overhead ratio (``reactive``, see
``docs/events.md``), and the policy heap's peak size are written to
``BENCH_perf.json`` at the repository root.  A ``client_clouds`` section records the cost of
per-client last-mile bandwidth composition (``docs/clients.md``) against
the same replay with the hop unmodeled, a ``faults`` section the cost of
an active fault schedule (``docs/faults.md``) against the same replay
with faults disabled, a ``streaming`` section the cost of serving every
request as a segment-aware delivery session against the same replay with
streaming disabled (``docs/streaming.md``), an ``observability`` section
the cost of a
configured-but-disabled and of a timeline-enabled run against the bare
replay (``docs/observability.md``), a ``dispatch`` section the
parallel-dispatch overhead of shipping the workload to worker processes
via shared memory versus pickling, and a ``hierarchy`` section the cost
of routing every request through a 2-tier pop fleet plus the wall-clock
speedup of sharding the fleet replay across worker processes
(``docs/hierarchy.md``), and a ``kernel`` section the machine-normalised
cost of the unified request-service kernel (:mod:`repro.sim.kernel`)
against the frozen pre-kernel loop kept in
``benchmarks/_prekernel_reference.py`` — its
``overhead_ratio_vs_pre_kernel`` is gated at 1.05 by
``scripts/check_bench.py``.  That file is the
repo's performance trajectory: the ``smoke`` section it records is the
baseline the quick regression gate (:func:`test_throughput_smoke_regression`,
``make bench-smoke``) compares against.

All replay paths must also agree *bit-for-bit* on every metric — the
speedups are only worth having if they are free of behavioural drift.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.experiments import build_workload
from repro.analysis.parallel import (
    replication_jobs,
    run_sharded_fleet,
    run_simulation_jobs,
)
from repro.core.policies import PolicySpec, make_policy
from repro.network.distributions import NLANRBandwidthDistribution
from repro.network.variability import NLANRRatioVariability
from repro.obs import ObservabilityConfig
from repro.sim.config import BandwidthKnowledge, ClientCloudConfig, SimulationConfig
from repro.sim.events import RemeasurementConfig
from repro.sim.faults import FaultConfig
from repro.sim.hierarchy import CacheTier, HierarchyConfig
from repro.sim.simulator import ProxyCacheSimulator
from repro.sim.streaming import StreamingConfig

from benchmarks._prekernel_reference import (
    ProxyCacheSimulator as PreKernelSimulator,
)

#: Where the throughput record lives (repository root, next to ROADMAP.md).
BENCH_PERF_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

#: Workload scale for the full benchmark: 2x the paper's volume = 200k
#: requests over 10k objects, enough for per-request costs to dominate.
FULL_SCALE = 2.0

#: Workload scale for the smoke regression gate (20k requests).
SMOKE_SCALE = 0.2

#: The benchmark policy and network model: PB under the high-variability
#: NLANR ratio model, the paper's most demanding headline configuration.
BENCH_POLICY = "PB"
BENCH_CACHE_GB = 16.0
BENCH_SEED = 0

#: A smoke run slower than ``1 - SMOKE_REGRESSION_TOLERANCE`` times the
#: recorded baseline fails the gate.
SMOKE_REGRESSION_TOLERANCE = 0.30

#: Jobs and workers used by the dispatch-overhead (shm vs pickle) section.
DISPATCH_RUNS = 2
DISPATCH_WORKERS = 2

#: Client population / last-mile groups of the per-client-draw section.
CLIENT_COUNT = 256
CLIENT_GROUPS = 64

#: Stochastic bandwidth flaps of the fault-overhead section.  Severity 0.5
#: stays above the timeout threshold (1 / timeout_factor = 0.25), so the
#: flaps degrade transfers without triggering retries — the ratio then
#: isolates the per-request interception cost plus the degraded-path
#: accounting, not the (workload-dependent) retry arithmetic.
FAULT_FLAPS = 8
FAULT_SEVERITY = 0.5

#: Shards and workers of the sharded-fleet-replay section.
FLEET_SHARDS = 4
FLEET_WORKERS = 2

#: Fleet shape of the hierarchy-overhead section: a 2-tier, 4-pop fleet
#: whose edge matches the baseline cache and whose parent is 4x it.
HIER_POPS = 4
HIER_EDGE_KB = BENCH_CACHE_GB * 1e6
HIER_PARENT_KB = 4.0 * HIER_EDGE_KB


def _build_simulator(scale: float, columnar: bool = False):
    workload = build_workload(scale=scale, seed=BENCH_SEED, columnar=columnar)
    config = SimulationConfig(
        cache_size_gb=BENCH_CACHE_GB,
        variability=NLANRRatioVariability(),
        seed=BENCH_SEED,
    )
    simulator = ProxyCacheSimulator(workload, config)
    topology = simulator.build_topology(np.random.default_rng(BENCH_SEED))
    return workload, simulator, topology


def _timed_run(simulator, topology, use_fast_path=None, replay=None, repeats: int = 1):
    """Run ``repeats`` times, returning the last result and best elapsed."""
    best = None
    for _ in range(repeats):
        policy = make_policy(BENCH_POLICY)
        start = time.perf_counter()
        result = simulator.run(
            policy, topology=topology, use_fast_path=use_fast_path, replay=replay
        )
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return result, policy, best


def _paired_measurement(runs, rounds: int = 5):
    """Best elapsed per label plus median per-round elapsed ratios.

    The two contenders run back-to-back within each round (alternating
    order every round), so transient machine load hits both equally; the
    per-round ratio of their elapsed times is therefore far more stable
    than the ratio of independently-measured bests, and its median is
    robust to load spikes.  Returns ``(best, ratio)`` where ``ratio`` maps
    ``(a, b)`` to the median of ``elapsed_a / elapsed_b``.
    """
    best = {label: None for label, _, _ in runs}
    per_round = []
    for round_index in range(rounds):
        ordered = runs if round_index % 2 == 0 else list(reversed(runs))
        elapsed_by_label = {}
        for label, simulator, topology in ordered:
            start = time.perf_counter()
            simulator.run(
                make_policy(BENCH_POLICY), topology=topology, use_fast_path=True
            )
            elapsed = time.perf_counter() - start
            elapsed_by_label[label] = elapsed
            if best[label] is None or elapsed < best[label]:
                best[label] = elapsed
        per_round.append(elapsed_by_label)

    def ratio(numerator: str, denominator: str) -> float:
        ratios = sorted(
            sample[numerator] / sample[denominator] for sample in per_round
        )
        return ratios[len(ratios) // 2]

    return best, ratio


def test_throughput_full_200k():
    """Replay 200k requests on all three paths; record the trajectory file."""
    workload, simulator, topology = _build_simulator(FULL_SCALE)
    requests = len(workload.trace)
    assert requests == 200_000

    event_result, _, event_elapsed = _timed_run(simulator, topology, use_fast_path=False)
    fast_result, fast_policy, _ = _timed_run(simulator, topology, use_fast_path=True)

    # The columnar workload is value-identical (same generator draws); its
    # topology is rebuilt from the same seed, so the replay is the same
    # simulation with a different trace representation.
    col_workload, col_simulator, col_topology = _build_simulator(
        FULL_SCALE, columnar=True
    )
    col_result, _, _ = _timed_run(col_simulator, col_topology, use_fast_path=True)

    # The columnar *event* path — the calendar iterating the numpy columns
    # directly, here with no auxiliary events scheduled — must also agree
    # bit-for-bit, while replaying far faster than the boxing event path.
    colev_result, _, colev_elapsed = _timed_run(
        col_simulator, col_topology, replay="columnar-event", repeats=2
    )

    # The whole point: same simulation, bit-identical metrics on all paths.
    assert fast_result.used_fast_path and not event_result.used_fast_path
    assert fast_result.as_dict() == event_result.as_dict()
    assert col_result.used_fast_path
    assert col_result.as_dict() == fast_result.as_dict()
    assert colev_result.replay_path == "columnar-event"
    assert colev_result.as_dict() == col_result.as_dict()

    # Time the two fast variants back-to-back in alternating rounds, so
    # transient load cannot bias one contender.
    contenders = [
        ("fast", simulator, topology),
        ("columnar", col_simulator, col_topology),
    ]
    best, paired_ratio = _paired_measurement(contenders)
    # Median of per-round (fast elapsed / columnar elapsed): > 1 means the
    # columnar replay is faster than the object fast path.
    col_vs_fast = paired_ratio("fast", "columnar")
    if col_vs_fast < 1.0:
        # A load spike during the block can invert a few-percent margin;
        # re-sample once a few seconds later and keep the better block.
        best_retry, ratio_retry = _paired_measurement(contenders)
        if ratio_retry("fast", "columnar") > col_vs_fast:
            col_vs_fast = ratio_retry("fast", "columnar")
            best = {
                label: min(best[label], best_retry[label]) for label in best
            }
    event_rps = requests / event_elapsed
    fast_rps = requests / best["fast"]
    col_rps = requests / best["columnar"]
    colev_rps = requests / colev_elapsed
    speedup = fast_rps / event_rps
    heap_stats = fast_policy.heap_statistics()

    # Kernel overhead: the live (kernel-unified) columnar replay against
    # the frozen pre-kernel loop (benchmarks/_prekernel_reference.py), run
    # back-to-back on the same workload in the same process.  The paired
    # ratio is machine-normalised — throughput records committed on one
    # machine say nothing about another, but this ratio compares the two
    # loop bodies under identical load — and the <=1.05 gate is the
    # refactor's acceptance criterion: the shared kernel must cost the
    # columnar fast path at most 5%.
    prekernel_simulator = PreKernelSimulator(
        col_workload,
        SimulationConfig(
            cache_size_gb=BENCH_CACHE_GB,
            variability=NLANRRatioVariability(),
            seed=BENCH_SEED,
        ),
    )
    prekernel_topology = prekernel_simulator.build_topology(
        np.random.default_rng(BENCH_SEED)
    )
    prekernel_result, _, _ = _timed_run(
        prekernel_simulator, prekernel_topology, use_fast_path=True
    )
    # The kernel refactor is bit-identical to the frozen loop, not merely
    # close: every metric must agree exactly.
    assert prekernel_result.as_dict() == col_result.as_dict()
    kernel_contenders = [
        ("prekernel", prekernel_simulator, prekernel_topology),
        ("kernel", col_simulator, col_topology),
    ]
    kernel_best, kernel_ratio = _paired_measurement(kernel_contenders)
    kernel_overhead = kernel_ratio("kernel", "prekernel")
    if kernel_overhead > 1.05:
        # Near-identical work on both sides: anything past a few percent
        # is a load spike, so re-sample once and keep the better block.
        kernel_best_retry, kernel_ratio_retry = _paired_measurement(
            kernel_contenders
        )
        if kernel_ratio_retry("kernel", "prekernel") < kernel_overhead:
            kernel_overhead = kernel_ratio_retry("kernel", "prekernel")
            kernel_best = {
                label: min(kernel_best[label], kernel_best_retry[label])
                for label in kernel_best
            }
    assert kernel_overhead <= 1.05, (
        f"kernel-unified columnar replay costs {kernel_overhead:.3f}x the "
        f"frozen pre-kernel loop "
        f"({requests / kernel_best['kernel']:,.0f} vs "
        f"{requests / kernel_best['prekernel']:,.0f} req/s)"
    )

    # Conservative floor so a loaded CI machine does not flap the suite; the
    # recorded speedup (see BENCH_perf.json) is the real trajectory number.
    assert speedup >= 2.5, f"fast path only {speedup:.2f}x over the event path"
    # The columnar path strictly removes work from the object fast path (no
    # Request boxing, vectorised bandwidth draws), so its throughput must be
    # at least the object fast path's.  The assert uses the same
    # conservative-floor slack as the speedup above — timer noise on a
    # loaded machine is several percent even for the paired median — while
    # the recorded ratio carries the real (>= 1.0) trajectory number.
    assert col_vs_fast >= 0.90, (
        f"columnar replay median paired ratio {col_vs_fast:.3f} vs the "
        f"object fast path (columnar {col_rps:,.0f} req/s, "
        f"fast {fast_rps:,.0f} req/s)"
    )
    # Compaction must be bounding the heap: live entries never exceed the
    # catalog size, so the peak can never stray past twice that plus slack.
    assert heap_stats["peak_size"] <= 2 * len(workload.catalog) + 128
    # The columnar event path skips per-event Request/Event boxing, so even
    # as an *event* path it must clearly outrun the classic calendar
    # (conservative floor; the recorded ratio is the trajectory number).
    assert colev_rps >= 1.5 * event_rps, (
        f"columnar event path only {colev_rps / event_rps:.2f}x over the "
        f"boxing event path ({colev_rps:,.0f} vs {event_rps:,.0f} req/s)"
    )

    # Re-measurement overhead: periodic bandwidth re-measurement feeding a
    # passive estimator, with the cadence chosen so the auxiliary events
    # add about 10% to the event count (spread over every path in the
    # topology).  The baseline is the *passive-estimation* columnar event
    # replay with re-measurement disabled — same per-request estimator
    # cost, so the ratio isolates the auxiliary-event machinery itself.
    num_paths = len(col_topology.paths)
    remeasure_interval = max(
        col_workload.trace.duration * num_paths / (0.1 * requests), 1.0
    )
    passive_config = SimulationConfig(
        cache_size_gb=BENCH_CACHE_GB,
        variability=NLANRRatioVariability(),
        bandwidth_knowledge=BandwidthKnowledge.PASSIVE,
        seed=BENCH_SEED,
    )
    passive_simulator = ProxyCacheSimulator(col_workload, passive_config)
    passive_result, _, passive_elapsed = _timed_run(
        passive_simulator, col_topology, replay="columnar-event", repeats=2
    )
    assert passive_result.replay_path == "columnar-event"
    remeasure_config = SimulationConfig(
        cache_size_gb=BENCH_CACHE_GB,
        variability=NLANRRatioVariability(),
        bandwidth_knowledge=BandwidthKnowledge.PASSIVE,
        remeasurement=RemeasurementConfig(interval=remeasure_interval),
        seed=BENCH_SEED,
    )
    remeasure_simulator = ProxyCacheSimulator(col_workload, remeasure_config)
    remeasure_result, _, remeasure_elapsed = _timed_run(
        remeasure_simulator, col_topology, repeats=2
    )
    assert remeasure_result.replay_path == "columnar-event"
    assert remeasure_result.auxiliary_events_fired > 0
    remeasure_rps = requests / remeasure_elapsed
    remeasure_overhead = remeasure_elapsed / passive_elapsed

    # Passive-driven reactive re-keying: every request's passive
    # observation can move heap keys (threshold-gated, hysteresis-bounded).
    # The baseline is the same passive-estimation columnar-event replay
    # measured above — the ratio isolates the rekeyer machinery (one
    # notify per request plus the triggered re-keys).
    reactive_config = SimulationConfig(
        cache_size_gb=BENCH_CACHE_GB,
        variability=NLANRRatioVariability(),
        bandwidth_knowledge=BandwidthKnowledge.PASSIVE,
        reactive_threshold=0.15,
        reactive_passive=True,
        reactive_hysteresis=0.05,
        seed=BENCH_SEED,
    )
    reactive_simulator = ProxyCacheSimulator(col_workload, reactive_config)
    reactive_result, _, reactive_elapsed = _timed_run(
        reactive_simulator, col_topology, replay="columnar-event", repeats=2
    )
    assert reactive_result.replay_path == "columnar-event"
    assert reactive_result.reactive_shifts > 0
    reactive_rps = requests / reactive_elapsed
    reactive_overhead = reactive_elapsed / passive_elapsed
    # The hook is one estimator read + a dict probe per request when quiet;
    # anything past 2x means the notify path regressed to real work.
    assert reactive_overhead <= 2.0, (
        f"passive-driven reactive replay costs {reactive_overhead:.2f}x the "
        f"passive baseline ({reactive_rps:,.0f} vs "
        f"{requests / passive_elapsed:,.0f} req/s)"
    )

    # Per-client last-mile draws: replay a 200k-request multi-client trace
    # on the columnar fast path with a heterogeneous client cloud attached
    # vs the same workload with the hop unmodeled.  The overhead isolates
    # the composition machinery (one batched last-mile draw + two
    # per-request bottleneck compares); the client column itself is free.
    hetero_workload = build_workload(
        scale=FULL_SCALE, seed=BENCH_SEED, columnar=True, num_clients=CLIENT_COUNT
    )
    plain_config = SimulationConfig(
        cache_size_gb=BENCH_CACHE_GB,
        variability=NLANRRatioVariability(),
        seed=BENCH_SEED,
    )
    cloud_config = SimulationConfig(
        cache_size_gb=BENCH_CACHE_GB,
        variability=NLANRRatioVariability(),
        client_clouds=ClientCloudConfig(
            groups=CLIENT_GROUPS, distribution=NLANRBandwidthDistribution()
        ),
        seed=BENCH_SEED,
    )
    plain_simulator = ProxyCacheSimulator(hetero_workload, plain_config)
    cloud_simulator = ProxyCacheSimulator(hetero_workload, cloud_config)
    plain_topology = plain_simulator.build_topology(np.random.default_rng(BENCH_SEED))
    cloud_topology = cloud_simulator.build_topology(np.random.default_rng(BENCH_SEED))
    cloud_best, cloud_ratio = _paired_measurement(
        [
            ("uniform", plain_simulator, plain_topology),
            ("clouded", cloud_simulator, cloud_topology),
        ],
        rounds=3,
    )
    client_overhead = cloud_ratio("clouded", "uniform")
    clouded_rps = requests / cloud_best["clouded"]
    # The composition is a constant-factor add-on to the columnar loop;
    # anything past 2x would mean the per-client machinery regressed from
    # "two compares per request" to real work.
    assert client_overhead <= 2.0, (
        f"per-client last-mile composition costs {client_overhead:.2f}x "
        f"({clouded_rps:,.0f} req/s with clouds vs "
        f"{requests / cloud_best['uniform']:,.0f} without)"
    )

    # Fault-injection overhead: the same columnar replay with an active
    # flap schedule vs faults disabled.  With faults=None the loops skip
    # the injector entirely (one `is not None` test per request); with a
    # schedule every request pays the interception check, and requests
    # inside a flap window pay the degraded-path accounting too.
    faulted_config = SimulationConfig(
        cache_size_gb=BENCH_CACHE_GB,
        variability=NLANRRatioVariability(),
        faults=FaultConfig(
            random_bandwidth_flaps=FAULT_FLAPS,
            severity=FAULT_SEVERITY,
            mean_duration_s=max(col_workload.trace.duration / 20.0, 1.0),
            seed=BENCH_SEED,
        ),
        seed=BENCH_SEED,
    )
    faulted_simulator = ProxyCacheSimulator(col_workload, faulted_config)
    fault_result, _, _ = _timed_run(
        faulted_simulator, col_topology, use_fast_path=True
    )
    assert fault_result.fault_report is not None
    assert fault_result.fault_report.degraded_requests > 0
    assert fault_result.fault_report.failed_fetches == 0  # mild flaps only
    fault_best, fault_ratio = _paired_measurement(
        [
            ("healthy", col_simulator, col_topology),
            ("faulted", faulted_simulator, col_topology),
        ],
        rounds=3,
    )
    fault_overhead = fault_ratio("faulted", "healthy")
    faulted_rps = requests / fault_best["faulted"]
    # The interception is one boundary compare per request when no episode
    # is active; anything past 2x means it regressed to real work.
    assert fault_overhead <= 2.0, (
        f"fault-schedule replay costs {fault_overhead:.2f}x the healthy "
        f"baseline ({faulted_rps:,.0f} vs "
        f"{requests / fault_best['healthy']:,.0f} req/s)"
    )

    # Streaming-session overhead: the same columnar replay with every
    # object served as a segment-aware delivery session vs streaming
    # disabled.  With streaming=None the loops skip the engine entirely
    # (one `is not None` test per request); with it on, every request for
    # a stream object runs the wait/degrade/abandon session arithmetic
    # and the segment-boundary bookkeeping in the interpreter
    # (docs/streaming.md).
    streaming_config = SimulationConfig(
        cache_size_gb=BENCH_CACHE_GB,
        variability=NLANRRatioVariability(),
        streaming=StreamingConfig(fraction=1.0, seed=BENCH_SEED),
        seed=BENCH_SEED,
    )
    streaming_simulator = ProxyCacheSimulator(col_workload, streaming_config)
    streaming_result, _, _ = _timed_run(
        streaming_simulator, col_topology, use_fast_path=True
    )
    assert streaming_result.streaming_report is not None
    assert streaming_result.streaming_report.sessions > 0
    streaming_best, streaming_ratio = _paired_measurement(
        [
            ("baseline", col_simulator, col_topology),
            ("streaming", streaming_simulator, col_topology),
        ],
        rounds=3,
    )
    streaming_overhead = streaming_ratio("streaming", "baseline")
    streaming_rps = requests / streaming_best["streaming"]
    # Per-session work is constant-time arithmetic plus one segment-floor
    # sync, but with fraction=1.0 it runs in the interpreter for every
    # request of a loop whose baseline cost is ~a microsecond, so the
    # honest ratio is several-x (observed ~5.6x on the 1-core runner).
    # Anything past 10x means the engine regressed to per-byte or
    # per-segment scans inside the loop; the committed trajectory ratio in
    # BENCH_perf.json (gated by scripts/check_bench.py) catches creep
    # below that cliff.
    assert streaming_overhead <= 10.0, (
        f"streaming-session replay costs {streaming_overhead:.2f}x the "
        f"baseline ({streaming_rps:,.0f} vs "
        f"{requests / streaming_best['baseline']:,.0f} req/s)"
    )

    # Observability overhead: a run with an ObservabilityConfig whose
    # layers are all switched off must be indistinguishable from a run
    # with no observability at all (the loops see the same
    # `timeline is None` dead branch either way), and the windowed
    # timeline itself costs one float compare per request plus a
    # snapshot per window boundary (docs/observability.md).
    obs_disabled_config = SimulationConfig(
        cache_size_gb=BENCH_CACHE_GB,
        variability=NLANRRatioVariability(),
        observability=ObservabilityConfig(timeline=False),
        seed=BENCH_SEED,
    )
    obs_window_s = max(col_workload.trace.duration / 64.0, 1.0)
    obs_timeline_config = SimulationConfig(
        cache_size_gb=BENCH_CACHE_GB,
        variability=NLANRRatioVariability(),
        observability=ObservabilityConfig(window_s=obs_window_s),
        seed=BENCH_SEED,
    )
    obs_disabled_simulator = ProxyCacheSimulator(col_workload, obs_disabled_config)
    obs_timeline_simulator = ProxyCacheSimulator(col_workload, obs_timeline_config)
    timeline_result, _, _ = _timed_run(
        obs_timeline_simulator, col_topology, use_fast_path=True
    )
    assert timeline_result.timeline is not None
    assert timeline_result.timeline.num_windows > 1
    # Observation is read-only: the timeline must not perturb the metrics.
    assert timeline_result.as_dict() == col_result.as_dict()
    obs_best, obs_ratio = _paired_measurement(
        [
            ("absent", col_simulator, col_topology),
            ("disabled", obs_disabled_simulator, col_topology),
            ("timeline", obs_timeline_simulator, col_topology),
        ],
        rounds=3,
    )
    obs_overhead = obs_ratio("disabled", "absent")
    if obs_overhead > 1.05:
        # Identical work on both sides: anything past a few percent is a
        # load spike, so re-sample once and keep the better block.
        obs_best_retry, obs_ratio_retry = _paired_measurement(
            [
                ("absent", col_simulator, col_topology),
                ("disabled", obs_disabled_simulator, col_topology),
                ("timeline", obs_timeline_simulator, col_topology),
            ],
            rounds=3,
        )
        if obs_ratio_retry("disabled", "absent") < obs_overhead:
            obs_overhead = obs_ratio_retry("disabled", "absent")
            obs_ratio = obs_ratio_retry
            obs_best = {
                label: min(obs_best[label], obs_best_retry[label])
                for label in obs_best
            }
    timeline_overhead = obs_ratio("timeline", "absent")
    assert obs_overhead <= 1.05, (
        f"disabled observability costs {obs_overhead:.3f}x the bare replay "
        f"— the dead branch stopped being dead"
    )
    # The enabled timeline is one compare per request; anything past 2x
    # means the boundary hook regressed to per-request work.
    assert timeline_overhead <= 2.0, (
        f"windowed timeline costs {timeline_overhead:.2f}x the bare replay "
        f"({requests / obs_best['timeline']:,.0f} vs "
        f"{requests / obs_best['absent']:,.0f} req/s)"
    )

    # Parallel-dispatch overhead: fan the same replication grid out over a
    # small pool with the trace shipped via shared memory vs pickled into
    # the initializer.  Results must be identical; only the transport cost
    # differs.
    dispatch_workload = build_workload(scale=SMOKE_SCALE, seed=BENCH_SEED, columnar=True)
    dispatch_config = SimulationConfig(
        cache_size_gb=BENCH_CACHE_GB,
        variability=NLANRRatioVariability(),
        seed=BENCH_SEED,
    )
    jobs = replication_jobs(dispatch_config, PolicySpec(BENCH_POLICY), DISPATCH_RUNS)
    dispatch_seconds = {"shm": None, "pickle": None}
    dispatch_results = {}
    # Alternating rounds, best-of each: the process's very first pool pays
    # worker spawn + import warm-up, which must not be billed to whichever
    # transport happens to run first.
    for round_index in range(2):
        order = ("shm", "pickle") if round_index % 2 == 0 else ("pickle", "shm")
        for transport in order:
            start = time.perf_counter()
            dispatch_results[transport] = run_simulation_jobs(
                dispatch_workload, jobs, n_jobs=DISPATCH_WORKERS, transport=transport
            )
            elapsed = time.perf_counter() - start
            if (
                dispatch_seconds[transport] is None
                or elapsed < dispatch_seconds[transport]
            ):
                dispatch_seconds[transport] = elapsed
    shm_seconds = dispatch_seconds["shm"]
    pickle_seconds = dispatch_seconds["pickle"]
    assert dispatch_results["shm"] == dispatch_results["pickle"]

    # Hierarchy overhead: the same multi-client columnar replay routed
    # through a 2-tier, 4-pop fleet vs hierarchy disabled.  With
    # hierarchy=None the loops skip the engine entirely (one `is not
    # None` test per request); with it on, every request pays the per-pop
    # residency reads, the uplink-chain bandwidth composition, and one
    # policy notification per consulted tier — interpreter work layered
    # on the numpy-bound columnar loop (docs/hierarchy.md).
    hier_config = SimulationConfig(
        cache_size_gb=BENCH_CACHE_GB,
        variability=NLANRRatioVariability(),
        hierarchy=HierarchyConfig(
            tiers=(
                CacheTier(name="edge", cache_kb=HIER_EDGE_KB, uplink_bandwidth=50.0),
                CacheTier(
                    name="parent", cache_kb=HIER_PARENT_KB, uplink_bandwidth=40.0
                ),
            ),
            num_pops=HIER_POPS,
        ),
        seed=BENCH_SEED,
    )
    hier_simulator = ProxyCacheSimulator(hetero_workload, hier_config)
    hier_topology = hier_simulator.build_topology(np.random.default_rng(BENCH_SEED))
    hier_result, _, _ = _timed_run(hier_simulator, hier_topology, use_fast_path=True)
    assert hier_result.hierarchy_report is not None
    assert hier_result.hierarchy_report.requests > 0
    hier_best, hier_ratio = _paired_measurement(
        [
            ("baseline", plain_simulator, plain_topology),
            ("hierarchy", hier_simulator, hier_topology),
        ],
        rounds=3,
    )
    hier_overhead = hier_ratio("hierarchy", "baseline")
    hier_rps = requests / hier_best["hierarchy"]
    # Per-request fleet work is a handful of dict probes and compares, but
    # it runs in the interpreter against a ~microsecond columnar baseline,
    # so the honest ratio is several-x (the same shape as the streaming
    # engine).  Anything past 10x means the engine regressed to per-byte
    # or per-store scans inside the loop; the committed trajectory ratio
    # in BENCH_perf.json (gated by scripts/check_bench.py) catches creep
    # below that cliff.
    assert hier_overhead <= 10.0, (
        f"2-tier fleet replay costs {hier_overhead:.2f}x the single-cache "
        f"baseline ({hier_rps:,.0f} vs "
        f"{requests / hier_best['baseline']:,.0f} req/s)"
    )

    # Sharded fleet replay: partition the trace by client group and replay
    # the shards in worker processes vs the same shards in-process.  The
    # merged results must be identical; only the wall clock may differ,
    # and the speedup is machine-bound (worker spawn + per-shard topology
    # build amortised over the shard replays).
    shard_workload = build_workload(
        scale=SMOKE_SCALE, seed=BENCH_SEED, columnar=True, num_clients=CLIENT_COUNT
    )
    fleet_seconds = {"serial": None, "pooled": None}
    fleet_results = {}
    for round_index in range(2):
        order = (
            ("serial", 1), ("pooled", FLEET_WORKERS)
        ) if round_index % 2 == 0 else (
            ("pooled", FLEET_WORKERS), ("serial", 1)
        )
        for label, n_jobs in order:
            start = time.perf_counter()
            fleet_results[label] = run_sharded_fleet(
                shard_workload,
                hier_config,
                PolicySpec(BENCH_POLICY),
                num_shards=FLEET_SHARDS,
                n_jobs=n_jobs,
            )
            elapsed = time.perf_counter() - start
            if fleet_seconds[label] is None or elapsed < fleet_seconds[label]:
                fleet_seconds[label] = elapsed
    assert (
        fleet_results["serial"].merged.metrics
        == fleet_results["pooled"].merged.metrics
    )
    assert (
        fleet_results["serial"].merged.hierarchy_report
        == fleet_results["pooled"].merged.hierarchy_report
    )
    sharded_speedup = fleet_seconds["serial"] / fleet_seconds["pooled"]

    # Smoke-sized fast-path run, measured here so the regression gate always
    # compares smoke against smoke.  Best-of-2 keeps a transient load spike
    # from being committed as the gate's baseline.
    smoke_workload, smoke_simulator, smoke_topology = _build_simulator(SMOKE_SCALE)
    _, _, smoke_elapsed = _timed_run(
        smoke_simulator, smoke_topology, use_fast_path=True, repeats=2
    )
    smoke_rps = len(smoke_workload.trace) / smoke_elapsed

    BENCH_PERF_PATH.write_text(
        json.dumps(
            {
                "benchmark": "trace-replay throughput (policy PB, NLANR variability)",
                "requests": requests,
                "event_path_requests_per_sec": round(event_rps, 1),
                "fast_path_requests_per_sec": round(fast_rps, 1),
                "columnar_path_requests_per_sec": round(col_rps, 1),
                "columnar_event_path_requests_per_sec": round(colev_rps, 1),
                "speedup": round(speedup, 2),
                "columnar_speedup_vs_fast_path": round(col_vs_fast, 3),
                "columnar_event_speedup_vs_event_path": round(colev_rps / event_rps, 2),
                "kernel": {
                    "event_path_requests_per_sec": round(event_rps, 1),
                    "fast_path_requests_per_sec": round(fast_rps, 1),
                    "columnar_path_requests_per_sec": round(col_rps, 1),
                    "columnar_event_path_requests_per_sec": round(colev_rps, 1),
                    "pre_kernel_columnar_requests_per_sec": round(
                        requests / kernel_best["prekernel"], 1
                    ),
                    "overhead_ratio_vs_pre_kernel": round(kernel_overhead, 3),
                },
                "remeasurement": {
                    "interval_seconds": round(remeasure_interval, 1),
                    "events_fired": remeasure_result.auxiliary_events_fired,
                    "requests_per_sec": round(remeasure_rps, 1),
                    "passive_baseline_requests_per_sec": round(
                        requests / passive_elapsed, 1
                    ),
                    "overhead_ratio_vs_passive": round(remeasure_overhead, 3),
                },
                "reactive": {
                    "threshold": 0.15,
                    "hysteresis": 0.05,
                    "shifts": reactive_result.reactive_shifts,
                    "rekeys": reactive_result.reactive_rekeys,
                    "requests_per_sec": round(reactive_rps, 1),
                    "overhead_ratio_vs_passive": round(reactive_overhead, 3),
                },
                "client_clouds": {
                    "clients": CLIENT_COUNT,
                    "groups": CLIENT_GROUPS,
                    "requests_per_sec": round(clouded_rps, 1),
                    "uniform_baseline_requests_per_sec": round(
                        requests / cloud_best["uniform"], 1
                    ),
                    "overhead_ratio_vs_uniform": round(client_overhead, 3),
                },
                "faults": {
                    "flap_episodes": fault_result.fault_report.episodes,
                    "degraded_requests": fault_result.fault_report.degraded_requests,
                    "requests_per_sec": round(faulted_rps, 1),
                    "healthy_baseline_requests_per_sec": round(
                        requests / fault_best["healthy"], 1
                    ),
                    "overhead_ratio_vs_baseline": round(fault_overhead, 3),
                },
                "streaming": {
                    "stream_objects": streaming_result.streaming_report.stream_objects,
                    "sessions": streaming_result.streaming_report.sessions,
                    "requests_per_sec": round(streaming_rps, 1),
                    "baseline_requests_per_sec": round(
                        requests / streaming_best["baseline"], 1
                    ),
                    "overhead_ratio_vs_baseline": round(streaming_overhead, 3),
                },
                "heap": {
                    "peak_size": heap_stats["peak_size"],
                    "final_size": heap_stats["size"],
                    "live_entries": heap_stats["live_entries"],
                    "compactions": heap_stats["compactions"],
                },
                "observability": {
                    "window_s": round(obs_window_s, 1),
                    "timeline_windows": timeline_result.timeline.num_windows,
                    "baseline_requests_per_sec": round(
                        requests / obs_best["absent"], 1
                    ),
                    "disabled_requests_per_sec": round(
                        requests / obs_best["disabled"], 1
                    ),
                    "timeline_requests_per_sec": round(
                        requests / obs_best["timeline"], 1
                    ),
                    "overhead_ratio_vs_baseline": round(obs_overhead, 3),
                    "timeline_overhead_ratio_vs_baseline": round(
                        timeline_overhead, 3
                    ),
                },
                "dispatch": {
                    "requests": len(dispatch_workload.trace),
                    "jobs": len(jobs),
                    "workers": DISPATCH_WORKERS,
                    "shm_seconds": round(shm_seconds, 3),
                    "pickle_seconds": round(pickle_seconds, 3),
                    "shm_vs_pickle_ratio": round(shm_seconds / pickle_seconds, 3),
                },
                "hierarchy": {
                    "tiers": 2,
                    "pops": HIER_POPS,
                    "requests_per_sec": round(hier_rps, 1),
                    "baseline_requests_per_sec": round(
                        requests / hier_best["baseline"], 1
                    ),
                    "overhead_ratio_vs_baseline": round(hier_overhead, 3),
                    "shard_requests": len(shard_workload.trace),
                    "shards": FLEET_SHARDS,
                    "shard_workers": FLEET_WORKERS,
                    "serial_seconds": round(fleet_seconds["serial"], 3),
                    "pooled_seconds": round(fleet_seconds["pooled"], 3),
                    "sharded_speedup_vs_serial": round(sharded_speedup, 3),
                },
                "smoke": {
                    "requests": len(smoke_workload.trace),
                    "fast_path_requests_per_sec": round(smoke_rps, 1),
                },
            },
            indent=2,
        )
        + "\n"
    )


def test_throughput_smoke_regression():
    """Fail when the small-trace replay regresses >30% against the record."""
    if not BENCH_PERF_PATH.exists():
        pytest.skip("no BENCH_perf.json baseline; run `make bench-full` first")
    baseline = json.loads(BENCH_PERF_PATH.read_text())["smoke"]

    workload, simulator, topology = _build_simulator(SMOKE_SCALE)
    assert len(workload.trace) == baseline["requests"]
    # Warm once (imports, allocator), then time best-of-2 so a single
    # transient load spike cannot fail the gate.
    _timed_run(simulator, topology, use_fast_path=True)
    _, _, elapsed = _timed_run(simulator, topology, use_fast_path=True, repeats=2)
    rps = len(workload.trace) / elapsed

    floor = (1.0 - SMOKE_REGRESSION_TOLERANCE) * baseline["fast_path_requests_per_sec"]
    assert rps >= floor, (
        f"fast-path throughput regressed: {rps:,.0f} req/s vs baseline "
        f"{baseline['fast_path_requests_per_sec']:,.0f} req/s "
        f"(floor {floor:,.0f})"
    )
