"""Streaming sessions in the simulator: segment-aware delivery, partial-
object caching, and QoE metrics on all four replay paths.

Four families of guarantees are pinned here:

* **Bit-identity, streaming off** — ``streaming=None`` replays exactly
  like a config that never mentions streaming, on all four replay paths,
  for every registered policy (the engine is never constructed, so no
  extra RNG draws happen).
* **Bit-identity, streaming on** — prefix and whole-object modes, VBR
  mixes, client clouds, faults, and observability all produce identical
  metrics, timelines, and streaming reports across the event, fast,
  columnar-fast, and columnar-event loops.
* **Session semantics** — the deterministic wait / degrade / abandon
  client choice, byte accounting, fragment trims, prefetch entitlements,
  and pressure trims of :class:`~repro.sim.streaming.StreamingDeliveryEngine`.
* **Golden QoE values** — one committed fixture pins the headline QoE
  numbers byte-exactly, so a change to any replay loop or the engine
  shows up as a diff here before it ships.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.policies import POLICY_REGISTRY, make_policy
from repro.core.store import CacheStore
from repro.exceptions import ConfigurationError
from repro.network.distributions import NLANRBandwidthDistribution
from repro.network.variability import NLANRRatioVariability
from repro.obs import ObservabilityConfig
from repro.sim.config import BandwidthKnowledge, ClientCloudConfig, SimulationConfig
from repro.sim.faults import FaultConfig, FaultEpisode
from repro.sim.simulator import ProxyCacheSimulator
from repro.sim.streaming import (
    StreamingConfig,
    StreamingDeliveryEngine,
    select_stream_ids,
)
from repro.workload.catalog import Catalog, MediaObject
from repro.workload.gismo import GismoWorkloadGenerator, WorkloadConfig

from conftest import assert_replay_paths_identical, run_replay_paths


@pytest.fixture(scope="module")
def workload():
    config = WorkloadConfig(seed=7).scaled(0.02)  # 100 objects, 2000 requests
    return GismoWorkloadGenerator(config).generate(columnar=True)


def _config(**overrides):
    base = dict(
        cache_size_gb=0.5,
        variability=NLANRRatioVariability(),
        bandwidth_knowledge=BandwidthKnowledge.PASSIVE,
        seed=11,
    )
    base.update(overrides)
    return SimulationConfig(**base)


def _streaming(**overrides):
    base = dict(fraction=0.5, vbr_fraction=0.25, seed=3)
    base.update(overrides)
    return StreamingConfig(**base)


# ----------------------------------------------------------------------
# Config validation and stream-id selection
# ----------------------------------------------------------------------
class TestStreamingConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fraction": 0.0},
            {"fraction": 1.5},
            {"base_segment_kb": 0.0},
            {"prefetch_segments": -1},
            {"abandon_after_s": 0.0},
            {"vbr_fraction": -0.1},
            {"vbr_fraction": 1.1},
            {"vbr_burstiness": 1.0},
            {"smoothing_buffer_s": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            StreamingConfig(**kwargs)

    def test_with_streaming_round_trips(self):
        streaming = _streaming()
        config = _config().with_streaming(streaming)
        assert config.streaming == streaming
        assert config.with_streaming(None).streaming is None

    def test_scheme_carries_segment_layout(self):
        scheme = StreamingConfig(
            base_segment_kb=64.0, exponential_segments=False
        ).scheme()
        assert scheme.base_segment_kb == 64.0
        assert not scheme.exponential


class TestSelectStreamIds:
    def test_full_fraction_selects_everything_without_rng(self, workload):
        stream_ids, vbr_ids = select_stream_ids(
            workload.catalog, StreamingConfig(fraction=1.0), sim_seed=11
        )
        assert stream_ids == sorted(o.object_id for o in workload.catalog)
        assert vbr_ids == []

    def test_partial_fraction_is_deterministic_and_sized(self, workload):
        config = StreamingConfig(fraction=0.3, vbr_fraction=0.5, seed=5)
        first = select_stream_ids(workload.catalog, config, sim_seed=11)
        second = select_stream_ids(workload.catalog, config, sim_seed=11)
        assert first == second
        stream_ids, vbr_ids = first
        assert len(stream_ids) == int(0.3 * len(workload.catalog) + 1e-9)
        assert len(vbr_ids) == int(0.5 * len(stream_ids) + 1e-9)
        assert set(vbr_ids) <= set(stream_ids)
        assert stream_ids == sorted(stream_ids)

    def test_selection_varies_with_both_seeds(self, workload):
        config = StreamingConfig(fraction=0.3, seed=5)
        base = select_stream_ids(workload.catalog, config, sim_seed=11)[0]
        other_sim = select_stream_ids(workload.catalog, config, sim_seed=12)[0]
        other_cfg = select_stream_ids(
            workload.catalog, replace(config, seed=6), sim_seed=11
        )[0]
        assert base != other_sim or base != other_cfg


# ----------------------------------------------------------------------
# Engine unit semantics (hand-built catalog, direct store control)
# ----------------------------------------------------------------------
@pytest.fixture
def engine_setup():
    """One 4-layer 100 s, 48 KB/s stream (4800 KB) over uniform segments."""
    catalog = Catalog(
        [
            MediaObject(object_id=0, duration=100.0, bitrate=48.0, server_id=0),
            MediaObject(object_id=1, duration=50.0, bitrate=96.0, server_id=0),
        ]
    )
    store = CacheStore(100_000.0)
    config = StreamingConfig(
        fraction=1.0,
        base_segment_kb=100.0,
        exponential_segments=False,
        prefetch_segments=2,
        abandon_after_s=60.0,
    )
    return StreamingDeliveryEngine(config, catalog, store, sim_seed=0), store


class TestServeSemantics:
    def test_fully_cached_plays_instantly_from_cache(self, engine_setup):
        engine, store = engine_setup
        store.set_cached_bytes(0, 4800.0)
        cache_b, server_b, delay, quality, full = engine.serve(0, 10.0, 0.0, True)
        assert (cache_b, server_b) == (4800.0, 0.0)
        assert delay == 0.0 and quality == 1.0 and full
        assert engine.sessions == 1 and engine.waited == 0

    def test_fast_path_plays_instantly_from_server(self, engine_setup):
        engine, store = engine_setup
        cache_b, server_b, delay, quality, full = engine.serve(0, 48.0, 0.0, True)
        assert (cache_b, server_b) == (0.0, 4800.0)
        assert delay == 0.0 and quality == 1.0 and full

    def test_short_startup_delay_is_waited_out(self, engine_setup):
        engine, store = engine_setup
        # 40 KB/s against 48 KB/s: missing = 100*48 - 100*40 = 800 KB,
        # startup delay = 800 / 40 = 20 s <= 60 s budget.
        cache_b, server_b, delay, quality, full = engine.serve(0, 40.0, 0.0, True)
        assert delay == pytest.approx(20.0)
        assert quality == 1.0 and full
        assert (cache_b, server_b) == (0.0, 4800.0)
        assert engine.waited == 1 and engine.rebuffer_sum == pytest.approx(20.0)
        assert engine.watch_sum == pytest.approx(100.0)

    def test_long_delay_degrades_to_sustainable_layers(self, engine_setup):
        engine, store = engine_setup
        # 13 KB/s sustains 1 of 4 layers (layer rate 12 KB/s); waiting
        # would take (4800 - 1300) / 13 = 269 s > 60 s, so degrade.
        cache_b, server_b, delay, quality, full = engine.serve(0, 13.0, 0.0, True)
        assert delay == 0.0
        assert quality == pytest.approx(0.25) and not full
        assert (cache_b, server_b) == (0.0, pytest.approx(0.25 * 4800.0))
        assert engine.degraded == 1

    def test_unsustainable_path_abandons(self, engine_setup):
        engine, store = engine_setup
        # 5 KB/s sustains zero layers and full quality needs 860 s: abandon.
        cache_b, server_b, delay, quality, full = engine.serve(0, 5.0, 0.0, True)
        assert delay == pytest.approx(60.0)
        assert quality == 0.0 and not full
        # The server bytes streamed during the futile wait are wasted.
        assert (cache_b, server_b) == (0.0, pytest.approx(5.0 * 60.0))
        assert engine.abandoned == 1 and engine.watch_sum == 0.0

    def test_cached_prefix_shortens_startup_delay(self, engine_setup):
        engine, store = engine_setup
        store.set_cached_bytes(0, 800.0)  # exactly the 40 KB/s shortfall
        cache_b, server_b, delay, quality, full = engine.serve(0, 40.0, 0.0, True)
        assert delay == 0.0 and quality == 1.0
        assert cache_b == pytest.approx(800.0)
        assert server_b == pytest.approx(4000.0)

    def test_mid_segment_fragment_is_trimmed_at_serve(self, engine_setup):
        engine, store = engine_setup
        store.set_cached_bytes(0, 350.0)  # 3.5 uniform 100 KB segments
        engine.serve(0, 48.0, 0.0, True)
        assert store.cached_bytes(0) == pytest.approx(300.0)
        assert engine.fragment_trims == 1

    def test_warmup_sessions_mutate_cache_but_not_counters(self, engine_setup):
        engine, store = engine_setup
        store.set_cached_bytes(0, 350.0)
        engine.serve(0, 48.0, 0.0, False)
        assert store.cached_bytes(0) == pytest.approx(300.0)
        assert engine.sessions == 0 and engine.quality_sum == 0.0
        # ... but the structural counter still records the trim.
        assert engine.fragment_trims == 1

    def test_retry_wait_adds_to_delay_without_stall_classification(
        self, engine_setup
    ):
        engine, store = engine_setup
        cache_b, server_b, delay, quality, full = engine.serve(
            0, 48.0, 0.0, True, waited=2.5
        )
        assert delay == pytest.approx(2.5)
        assert quality == 1.0 and full
        # The retry backoff is startup delay, not a mid-play rebuffer wait.
        assert engine.waited == 0

    def test_record_failed_counts_as_abandonment(self, engine_setup):
        engine, store = engine_setup
        engine.record_failed(7.0, 0.25)
        assert engine.sessions == 1 and engine.abandoned == 1
        assert engine.startup_sum == pytest.approx(7.0)
        assert engine.quality_sum == pytest.approx(0.25)

    def test_report_aggregates_counters(self, engine_setup):
        engine, store = engine_setup
        engine.serve(0, 40.0, 0.0, True)   # waited 20 s
        engine.serve(0, 5.0, 1.0, True)    # abandoned
        report = engine.report()
        assert report.sessions == 2
        assert report.waited_sessions == 1
        assert report.abandoned_sessions == 1
        assert report.mean_startup_delay_s == pytest.approx((20.0 + 60.0) / 2)
        assert report.rebuffer_ratio == pytest.approx(80.0 / 180.0)
        assert report.abandonment_rate == pytest.approx(0.5)
        assert set(report.as_dict()) >= {
            "mean_startup_delay_s",
            "rebuffer_ratio",
            "mean_quality",
            "abandonment_rate",
        }


class TestAdmissionAndTrim:
    def test_admission_quantizes_up_to_segment_boundary(self, engine_setup):
        engine, store = engine_setup
        assert engine.admission_target(0, 250.0, 4800.0) == pytest.approx(300.0)
        assert engine.admission_target(0, 300.0, 4800.0) == pytest.approx(300.0)

    def test_admission_passes_through_non_streams_and_zero(self, engine_setup):
        engine, store = engine_setup
        assert engine.admission_target(99, 250.0, 4800.0) == 250.0
        assert engine.admission_target(0, 0.0, 4800.0) == 0.0

    def test_played_session_entitles_prefetch_extension(self, engine_setup):
        engine, store = engine_setup
        engine.serve(0, 48.0, 0.0, True)  # plays -> 2 extra segments
        assert engine.admission_target(0, 250.0, 4800.0) == pytest.approx(500.0)
        assert engine.prefetch_extensions == 1

    def test_abandoned_session_entitles_no_prefetch(self, engine_setup):
        engine, store = engine_setup
        engine.serve(0, 5.0, 0.0, True)  # abandons -> no entitlement
        assert engine.admission_target(0, 250.0, 4800.0) == pytest.approx(300.0)
        assert engine.prefetch_extensions == 0

    def test_whole_object_mode_admits_all_or_nothing(self, engine_setup):
        engine, store = engine_setup
        whole = StreamingDeliveryEngine(
            replace(engine.config, prefix_caching=False),
            Catalog([MediaObject(object_id=0, duration=100.0, bitrate=48.0)]),
            store,
        )
        assert whole.admission_target(0, 250.0, 4800.0) == 4800.0
        assert whole.admission_target(0, 0.0, 4800.0) == 0.0

    def test_trim_victim_drops_tail_segments(self, engine_setup):
        engine, store = engine_setup
        store.set_cached_bytes(0, 500.0)
        reclaimed, emptied = engine.trim_victim(0, 150.0)
        # Dropping whole tail segments reclaims at least what was asked.
        assert reclaimed == pytest.approx(200.0)
        assert not emptied
        assert store.cached_bytes(0) == pytest.approx(300.0)
        assert engine.pressure_trimmed_kb == pytest.approx(200.0)

    def test_trim_victim_empties_when_need_exceeds_residency(self, engine_setup):
        engine, store = engine_setup
        store.set_cached_bytes(0, 300.0)
        reclaimed, emptied = engine.trim_victim(0, 1_000.0)
        assert reclaimed == pytest.approx(300.0)
        assert emptied
        assert store.cached_bytes(0) == 0.0

    def test_trim_victim_ignores_non_streams(self, engine_setup):
        engine, store = engine_setup
        assert engine.trim_victim(99, 100.0) is None


# ----------------------------------------------------------------------
# Replay-path bit-identity, streaming off and on
# ----------------------------------------------------------------------
class TestReplayIdentity:
    def test_streaming_none_identical_to_default_config(self, workload):
        """``streaming=None`` must replay exactly like a pre-streaming config."""
        explicit = run_replay_paths(workload, _config(streaming=None))
        default = run_replay_paths(workload, _config())
        for label, a in explicit.items():
            b = default[label]
            assert a.metrics == b.metrics, label
            assert a.streaming_report is None

    @pytest.mark.parametrize("policy_name", sorted(POLICY_REGISTRY))
    def test_all_paths_identical_per_policy(self, workload, policy_name):
        config = _config(streaming=_streaming())
        results = assert_replay_paths_identical(workload, config, policy_name)
        report = results["event"].streaming_report
        assert report is not None and report.sessions > 0

    def test_all_paths_identical_whole_object_mode(self, workload):
        config = _config(streaming=_streaming(prefix_caching=False))
        results = assert_replay_paths_identical(workload, config)
        report = results["event"].streaming_report
        assert report.pressure_trimmed_kb == 0.0
        assert report.prefetch_extensions == 0

    def test_all_paths_identical_with_clouds_and_observability(self, workload):
        config = _config(
            streaming=_streaming(),
            client_clouds=ClientCloudConfig(
                groups=8, distribution=NLANRBandwidthDistribution()
            ),
            observability=ObservabilityConfig(window_s=1800.0),
        )
        results = assert_replay_paths_identical(workload, config)
        timeline = results["event"].timeline
        assert timeline is not None and timeline.finished

    def test_all_paths_identical_with_faults(self, workload):
        trace = workload.trace
        span = trace.end_time - trace.start_time
        counts = {}
        for object_id, count in trace.request_counts().items():
            server = workload.catalog.get(int(object_id)).server_id
            counts[server] = counts.get(server, 0) + int(count)
        busiest = max(counts, key=counts.get)
        outage = FaultEpisode(
            "origin-outage",
            trace.start_time + 0.3 * span,
            trace.start_time + 0.5 * span,
            server_id=busiest,
        )
        config = _config(
            streaming=_streaming(),
            faults=FaultConfig(episodes=(outage,)),
        )
        results = assert_replay_paths_identical(workload, config)
        reference = results["event"]
        assert reference.fault_report.failed_fetches > 0
        # Failed stream fetches are accounted as abandoned sessions.
        assert reference.streaming_report.abandoned_sessions > 0

    def test_streaming_on_differs_from_streaming_off(self, workload):
        on = ProxyCacheSimulator(workload, _config(streaming=_streaming())).run(
            make_policy("PB")
        )
        off = ProxyCacheSimulator(workload, _config()).run(make_policy("PB"))
        assert on.metrics != off.metrics


# ----------------------------------------------------------------------
# Timeline integration: windowed QoE series
# ----------------------------------------------------------------------
class TestStreamingTimeline:
    def test_streaming_series_present_and_zero_when_off(self, workload):
        config = _config(observability=ObservabilityConfig(window_s=1800.0))
        result = ProxyCacheSimulator(workload, config).run(make_policy("PB"))
        series = result.timeline.series()
        for name in (
            "streaming_startup_delay",
            "streaming_rebuffer_ratio",
            "streaming_quality",
            "streaming_abandonment_rate",
        ):
            assert name in series
            np.testing.assert_array_equal(series[name], 0.0)

    def test_timeline_totals_match_engine_report(self, workload):
        config = _config(
            streaming=_streaming(),
            client_clouds=ClientCloudConfig(groups=8, bandwidth=30.0),
            observability=ObservabilityConfig(window_s=1800.0),
        )
        result = ProxyCacheSimulator(workload, config).run(make_policy("PB"))
        report = result.streaming_report
        totals = result.timeline.totals()
        assert totals["streaming_sessions"] == report.sessions
        assert totals["streaming_abandoned"] == report.abandoned_sessions
        assert totals["streaming_startup_sum"] == pytest.approx(
            report.mean_startup_delay_s * report.sessions
        )
        # The windowed quality series telescopes back to the aggregate.
        series = result.timeline.series()
        sessions = result.timeline.delta("streaming_sessions").astype(float)
        weighted = float(np.sum(series["streaming_quality"] * sessions))
        assert weighted == pytest.approx(report.mean_quality * report.sessions)


# ----------------------------------------------------------------------
# Golden QoE fixture: committed headline values, byte-exact on all paths
# ----------------------------------------------------------------------

#: Expected streaming report for the fixed golden configuration below
#: (workload seed 7 at scale 0.02; streaming fraction 0.5, VBR 0.25,
#: seed 3; homogeneous 30 KB/s client clouds; PB at 0.5 GB, sim seed 11).
#: Values are asserted with ``==`` — any drift in the engine or in any of
#: the four replay loops must show up as a diff here before it ships.
#: Regenerate by running this config once and updating the literals.
GOLDEN_QOE = {
    "stream_objects": 50.0,
    "sessions": 579.0,
    "waited_sessions": 0.0,
    "degraded_sessions": 334.0,
    "abandoned_sessions": 159.0,
    "mean_startup_delay_s": 16.476683937823836,
    "rebuffer_ratio": 0.008459409136205845,
    "mean_quality": 0.3842832469775475,
    "abandonment_rate": 0.27461139896373055,
    "feasible_suffix_sessions": 168.0,
    "prefetch_extensions": 574.0,
    "fragment_trims": 85.0,
    "pressure_trimmed_kb": 6027604.9910636125,
}


class TestGoldenQoE:
    def _golden_config(self):
        return _config(
            streaming=_streaming(),
            client_clouds=ClientCloudConfig(groups=8, bandwidth=30.0),
        )

    def test_golden_qoe_values_identical_on_all_paths(self, workload):
        results = run_replay_paths(workload, self._golden_config())
        for label, result in results.items():
            observed = result.streaming_report.as_dict()
            assert observed == GOLDEN_QOE, label


# ----------------------------------------------------------------------
# Ablation: prefix caching beats whole-object caching on QoE
# ----------------------------------------------------------------------
class TestPrefixBeatsWholeObject:
    def test_prefix_wins_on_startup_delay_and_rebuffer(self, workload):
        clouds = ClientCloudConfig(
            groups=8, distribution=NLANRBandwidthDistribution()
        )
        base = _config(cache_size_gb=0.3, client_clouds=clouds)
        prefix = ProxyCacheSimulator(
            workload, replace(base, streaming=_streaming(fraction=1.0))
        ).run(make_policy("PB"))
        whole = ProxyCacheSimulator(
            workload,
            replace(
                base,
                streaming=_streaming(fraction=1.0, prefix_caching=False),
            ),
        ).run(make_policy("PB"))
        p, w = prefix.streaming_report, whole.streaming_report
        assert p.sessions == w.sessions > 0
        assert p.mean_startup_delay_s < w.mean_startup_delay_s
        assert p.rebuffer_ratio <= w.rebuffer_ratio
        assert p.mean_quality >= w.mean_quality
