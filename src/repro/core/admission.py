"""Optional admission filters.

Admission control is orthogonal to the replacement policies the paper
studies: a filter can veto caching an object at all (for example objects
larger than a threshold, or objects whose path already has abundant
bandwidth — although the network-aware policies enforce that second rule
themselves through their cache-size target).  The simulator applies the
filter, if any, before handing the request to the policy.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.workload.catalog import MediaObject


class AdmissionFilter:
    """Interface: decide whether an object may be cached at all."""

    def admits(self, obj: MediaObject, bandwidth: float) -> bool:
        """Return True when the object is allowed into the cache."""
        raise NotImplementedError


class AlwaysAdmit(AdmissionFilter):
    """Admit everything (the default)."""

    def admits(self, obj: MediaObject, bandwidth: float) -> bool:
        return True


class SizeThresholdAdmission(AdmissionFilter):
    """Reject objects larger than ``max_size_kb``.

    Useful for studying how protecting the cache from very large objects
    interacts with the bandwidth-aware policies.
    """

    def __init__(self, max_size_kb: float):
        if max_size_kb <= 0:
            raise ConfigurationError(f"max_size_kb must be positive, got {max_size_kb}")
        self.max_size_kb = float(max_size_kb)

    def admits(self, obj: MediaObject, bandwidth: float) -> bool:
        return obj.size <= self.max_size_kb


class BandwidthThresholdAdmission(AdmissionFilter):
    """Reject objects whose path bandwidth already exceeds a threshold.

    This makes the "don't cache what streams fine anyway" rule available to
    policies (such as LRU/LFU/IF) that are not themselves network-aware.
    """

    def __init__(self, min_deficit_kbps: float = 0.0):
        if min_deficit_kbps < 0:
            raise ConfigurationError(
                f"min_deficit_kbps must be non-negative, got {min_deficit_kbps}"
            )
        self.min_deficit_kbps = float(min_deficit_kbps)

    def admits(self, obj: MediaObject, bandwidth: float) -> bool:
        return obj.bitrate - bandwidth > self.min_deficit_kbps
