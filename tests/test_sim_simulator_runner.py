"""Integration tests for the trace-driven simulator and the experiment runner."""

import numpy as np
import pytest

from repro.core.policies import make_policy
from repro.core.policies.optimal import StaticAllocationPolicy, optimal_allocation
from repro.exceptions import ConfigurationError
from repro.network.distributions import ConstantBandwidthDistribution
from repro.network.variability import NLANRRatioVariability
from repro.sim.config import BandwidthKnowledge, SimulationConfig
from repro.sim.runner import compare_policies, run_replications, sweep_cache_sizes, sweep_parameter
from repro.sim.simulator import ProxyCacheSimulator


def small_config(**kwargs):
    defaults = dict(cache_size_gb=0.5, seed=3, verify_store=True)
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


class TestProxyCacheSimulator:
    def test_runs_and_reports_metrics(self, tiny_workload):
        simulator = ProxyCacheSimulator(tiny_workload, small_config())
        result = simulator.run(make_policy("PB"))
        assert result.policy_name == "PB"
        assert result.metrics.requests == len(tiny_workload.trace) // 2
        assert 0.0 <= result.metrics.traffic_reduction_ratio <= 1.0
        assert 0.0 <= result.metrics.average_stream_quality <= 1.0
        assert result.metrics.average_service_delay >= 0.0
        assert result.warmup_requests == len(tiny_workload.trace) // 2

    def test_deterministic_given_seed(self, tiny_workload):
        config = small_config(seed=11)
        first = ProxyCacheSimulator(tiny_workload, config).run(make_policy("IB"))
        second = ProxyCacheSimulator(tiny_workload, config).run(make_policy("IB"))
        assert first.metrics.as_dict() == second.metrics.as_dict()

    def test_different_seeds_differ(self, tiny_workload):
        first = ProxyCacheSimulator(tiny_workload, small_config(seed=1)).run(make_policy("IB"))
        second = ProxyCacheSimulator(tiny_workload, small_config(seed=2)).run(make_policy("IB"))
        assert first.metrics.as_dict() != second.metrics.as_dict()

    def test_zero_cache_serves_everything_from_servers(self, tiny_workload):
        config = small_config(cache_size_gb=0.0)
        result = ProxyCacheSimulator(tiny_workload, config).run(make_policy("PB"))
        assert result.metrics.traffic_reduction_ratio == 0.0
        assert result.metrics.hit_ratio == 0.0

    def test_huge_cache_with_abundant_bandwidth_never_delays(self, tiny_workload):
        config = small_config(
            cache_size_gb=1_000.0,
            bandwidth_distribution=ConstantBandwidthDistribution(500.0),
        )
        result = ProxyCacheSimulator(tiny_workload, config).run(make_policy("PB"))
        assert result.metrics.average_service_delay == 0.0
        assert result.metrics.average_stream_quality == 1.0

    def test_min_path_bandwidth_floor_applied(self, tiny_workload, rng):
        config = small_config(
            bandwidth_distribution=ConstantBandwidthDistribution(2.0),
            min_path_bandwidth=10.0,
        )
        simulator = ProxyCacheSimulator(tiny_workload, config)
        topology = simulator.build_topology(rng)
        assert all(path.base_bandwidth >= 10.0 for path in topology.paths)

    def test_shared_topology_reused_across_policies(self, tiny_workload):
        config = small_config()
        simulator = ProxyCacheSimulator(tiny_workload, config)
        topology = simulator.build_topology(np.random.default_rng(config.seed))
        result_a = simulator.run(make_policy("PB"), topology=topology)
        result_b = simulator.run(make_policy("PB"), topology=topology)
        assert result_a.metrics.as_dict() == result_b.metrics.as_dict()

    def test_passive_bandwidth_knowledge_runs(self, tiny_workload):
        config = small_config(bandwidth_knowledge=BandwidthKnowledge.PASSIVE)
        result = ProxyCacheSimulator(tiny_workload, config).run(make_policy("PB"))
        assert result.metrics.requests > 0

    def test_static_optimal_policy_runs(self, tiny_workload):
        config = small_config()
        simulator = ProxyCacheSimulator(tiny_workload, config)
        topology = simulator.build_topology(np.random.default_rng(config.seed))
        bandwidths = {
            obj.object_id: topology.path_for(obj).base_bandwidth
            for obj in tiny_workload.catalog
        }
        rates = {
            i: float(rate) for i, rate in enumerate(tiny_workload.expected_rates)
        }
        allocation = optimal_allocation(
            tiny_workload.catalog, bandwidths, rates, config.cache_size_kb
        )
        result = simulator.run(StaticAllocationPolicy(allocation), topology=topology)
        assert result.policy_name == "OPT"
        assert result.metrics.requests > 0

    def test_optimal_static_beats_or_matches_lru_on_delay(self, tiny_workload):
        config = small_config(cache_size_gb=0.3)
        simulator = ProxyCacheSimulator(tiny_workload, config)
        topology = simulator.build_topology(np.random.default_rng(config.seed))
        bandwidths = {
            obj.object_id: topology.path_for(obj).base_bandwidth
            for obj in tiny_workload.catalog
        }
        rates = {i: float(r) for i, r in enumerate(tiny_workload.expected_rates)}
        allocation = optimal_allocation(
            tiny_workload.catalog, bandwidths, rates, config.cache_size_kb
        )
        optimal = simulator.run(StaticAllocationPolicy(allocation), topology=topology)
        lru = simulator.run(make_policy("LRU"), topology=topology)
        assert (
            optimal.metrics.average_service_delay
            <= lru.metrics.average_service_delay + 1e-9
        )


class TestRunner:
    def test_run_replications_averages(self, tiny_workload):
        metrics = run_replications(
            tiny_workload, lambda: make_policy("IB"), small_config(), num_runs=2
        )
        assert metrics.requests > 0
        with pytest.raises(ConfigurationError):
            run_replications(tiny_workload, lambda: make_policy("IB"), small_config(), 0)

    def test_compare_policies_same_conditions(self, tiny_workload):
        comparison = compare_policies(
            tiny_workload,
            {"IF": lambda: make_policy("IF"), "PB": lambda: make_policy("PB")},
            small_config(),
            num_runs=2,
        )
        assert set(comparison.policies()) == {"IF", "PB"}
        trr = comparison.metric("traffic_reduction_ratio")
        assert set(trr) == {"IF", "PB"}
        assert comparison.best_policy("average_service_delay", maximize=False) in {"IF", "PB"}

    def test_compare_policies_validation(self, tiny_workload):
        with pytest.raises(ConfigurationError):
            compare_policies(tiny_workload, {}, small_config())

    def test_sweep_cache_sizes_structure(self, tiny_workload):
        sweep = sweep_cache_sizes(
            tiny_workload,
            {"PB": lambda: make_policy("PB")},
            cache_sizes_gb=[0.1, 0.5],
            config=small_config(),
            num_runs=1,
        )
        assert sweep.parameter_values == [0.1, 0.5]
        assert len(sweep.series("PB", "traffic_reduction_ratio")) == 2
        rows = sweep.as_table("average_service_delay")
        assert rows[0]["cache_size_gb"] == 0.1
        assert "PB" in rows[0]

    def test_larger_cache_improves_traffic_reduction(self, tiny_workload):
        sweep = sweep_cache_sizes(
            tiny_workload,
            {"IF": lambda: make_policy("IF")},
            cache_sizes_gb=[0.05, 1.0],
            config=small_config(),
            num_runs=1,
        )
        series = sweep.series("IF", "traffic_reduction_ratio")
        assert series[1] >= series[0]

    def test_sweep_requires_values(self, tiny_workload):
        with pytest.raises(ConfigurationError):
            sweep_cache_sizes(
                tiny_workload, {"PB": lambda: make_policy("PB")}, [], small_config()
            )

    def test_sweep_parameter_generic(self, tiny_workload):
        def run_point(alpha):
            return {
                "PB": run_replications(
                    tiny_workload, lambda: make_policy("PB"), small_config(), num_runs=1
                )
            }

        sweep = sweep_parameter("alpha", [0.5, 1.0], run_point)
        assert sweep.parameter_values == [0.5, 1.0]
        assert len(sweep.metrics["PB"]) == 2
        with pytest.raises(ConfigurationError):
            sweep_parameter("alpha", [], run_point)

    def test_variable_bandwidth_increases_delay(self, small_workload):
        constant = compare_policies(
            small_workload,
            {"PB": lambda: make_policy("PB")},
            small_config(cache_size_gb=1.0),
            num_runs=2,
        )
        variable = compare_policies(
            small_workload,
            {"PB": lambda: make_policy("PB")},
            small_config(cache_size_gb=1.0, variability=NLANRRatioVariability()),
            num_runs=2,
        )
        assert (
            variable.metrics_by_policy["PB"].average_service_delay
            >= constant.metrics_by_policy["PB"].average_service_delay
        )
