"""repro — network-aware partial caching for streaming media delivery.

A from-scratch Python reproduction of *"Accelerating Internet Streaming
Media Delivery using Network-Aware Partial Caching"* (Shudong Jin, Azer
Bestavros, Arun Iyengar; ICDCS 2002).

The public API re-exports the pieces most users need:

* workload generation (:class:`~repro.workload.gismo.GismoWorkloadGenerator`),
* network/bandwidth models (:class:`~repro.network.distributions.NLANRBandwidthDistribution`,
  variability models, :class:`~repro.network.topology.DeliveryTopology`),
* the cache policies (IF, PB, IB, PB-V, IB-V, hybrids, LRU/LFU, optimal),
* the trace-driven simulator and experiment runners,
* the per-figure experiment harness in :mod:`repro.analysis`.

Quickstart::

    from repro import (
        GismoWorkloadGenerator, WorkloadConfig, SimulationConfig,
        ProxyCacheSimulator, make_policy,
    )

    workload = GismoWorkloadGenerator(WorkloadConfig().scaled(0.1)).generate()
    simulator = ProxyCacheSimulator(workload, SimulationConfig(cache_size_gb=8))
    result = simulator.run(make_policy("PB"))
    print(result.metrics.average_service_delay)
"""

from repro.core import (
    CachePolicy,
    CacheStore,
    FrequencyTracker,
    HybridPartialBandwidthPolicy,
    IntegralBandwidthPolicy,
    IntegralBandwidthValuePolicy,
    IntegralFrequencyPolicy,
    LRUPolicy,
    PartialBandwidthPolicy,
    PartialBandwidthValuePolicy,
    StaticAllocationPolicy,
    make_policy,
    optimal_allocation,
)
from repro.exceptions import (
    CapacityError,
    ConfigurationError,
    MeasurementError,
    PolicyError,
    ReproError,
    SimulationError,
    TraceFormatError,
    UnknownObjectError,
)
from repro.network import (
    ConstantVariability,
    DeliveryTopology,
    MeasuredPathVariability,
    NetworkPath,
    NLANRBandwidthDistribution,
    NLANRRatioVariability,
    PathRegistry,
)
from repro.obs import MetricsTimeline, ObservabilityConfig
from repro.sim import (
    BandwidthKnowledge,
    CacheTier,
    ClientCloudConfig,
    FaultConfig,
    FaultEpisode,
    HierarchyConfig,
    HierarchyReport,
    ProxyCacheSimulator,
    RemeasurementConfig,
    SimulationConfig,
    SimulationMetrics,
    StreamingConfig,
    StreamingReport,
    compare_policies,
    run_replications,
    sweep_cache_sizes,
)
from repro.streaming import SegmentedPrefix
from repro.trace import ColumnarTrace, ingest_access_log
from repro.workload import (
    Catalog,
    GismoWorkloadGenerator,
    MediaObject,
    Request,
    RequestTrace,
    Workload,
    WorkloadConfig,
    ZipfPopularity,
)

__version__ = "1.0.0"

__all__ = [
    "BandwidthKnowledge",
    "CachePolicy",
    "CacheStore",
    "CacheTier",
    "CapacityError",
    "Catalog",
    "ClientCloudConfig",
    "ColumnarTrace",
    "ConfigurationError",
    "ConstantVariability",
    "DeliveryTopology",
    "FaultConfig",
    "FaultEpisode",
    "FrequencyTracker",
    "GismoWorkloadGenerator",
    "HierarchyConfig",
    "HierarchyReport",
    "HybridPartialBandwidthPolicy",
    "IntegralBandwidthPolicy",
    "IntegralBandwidthValuePolicy",
    "IntegralFrequencyPolicy",
    "LRUPolicy",
    "MeasurementError",
    "MeasuredPathVariability",
    "MediaObject",
    "MetricsTimeline",
    "NLANRBandwidthDistribution",
    "NLANRRatioVariability",
    "NetworkPath",
    "ObservabilityConfig",
    "PartialBandwidthPolicy",
    "PartialBandwidthValuePolicy",
    "PathRegistry",
    "PolicyError",
    "ProxyCacheSimulator",
    "RemeasurementConfig",
    "ReproError",
    "Request",
    "RequestTrace",
    "SegmentedPrefix",
    "SimulationConfig",
    "SimulationError",
    "SimulationMetrics",
    "StaticAllocationPolicy",
    "StreamingConfig",
    "StreamingReport",
    "TraceFormatError",
    "UnknownObjectError",
    "Workload",
    "WorkloadConfig",
    "ZipfPopularity",
    "__version__",
    "compare_policies",
    "ingest_access_log",
    "make_policy",
    "optimal_allocation",
    "run_replications",
    "sweep_cache_sizes",
]
