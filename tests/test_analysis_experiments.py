"""Tests for the per-figure experiment harness (run at reduced scale)."""

import pytest

from repro.analysis.experiments import (
    DEFAULT_CACHE_FRACTIONS,
    build_workload,
    cache_sizes_gb_for,
    experiment_fig2_bandwidth_distribution,
    experiment_fig3_bandwidth_variability,
    experiment_fig4_measured_paths,
    experiment_fig5_constant_bandwidth,
    experiment_fig6_zipf_sweep,
    experiment_fig9_estimator_sweep,
    experiment_fig10_value_constant,
    experiment_reactive_rekeying,
    experiment_streaming_delivery,
    experiment_table1_workload,
)
from repro.exceptions import ConfigurationError
from repro.sim.runner import SweepResult

# Tiny settings so the experiment harness itself is exercised quickly; the
# full-fidelity runs live in benchmarks/.
TINY = dict(scale=0.01, num_runs=1, cache_fractions=(0.02, 0.10), seed=0)


class TestBuildWorkload:
    def test_scaled_counts(self):
        workload = build_workload(scale=0.01, seed=1)
        assert len(workload.catalog) == 50
        assert len(workload.trace) == 1_000

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            build_workload(scale=0.0)

    def test_cache_sizes_follow_fractions(self):
        workload = build_workload(scale=0.01, seed=1)
        sizes = cache_sizes_gb_for(workload, (0.1, 0.2))
        assert sizes[1] == pytest.approx(2 * sizes[0])
        assert sizes[0] == pytest.approx(0.1 * workload.catalog.total_size_gb)


class TestBandwidthModelExperiments:
    def test_fig2_reports_anchor_fractions(self):
        result = experiment_fig2_bandwidth_distribution(num_records=5_000, seed=0)
        assert result.experiment_id == "fig2"
        assert 0.2 < result.data["fraction_below_50"] < 0.55
        assert result.data["fraction_below_100"] > result.data["fraction_below_50"]
        assert result.data["sample_count"] > 100

    def test_fig3_reports_ratio_statistics(self):
        result = experiment_fig3_bandwidth_variability(num_records=5_000, seed=0)
        assert result.data["coefficient_of_variation"] > 0.3
        assert 0.4 < result.data["fraction_in_half_band"] < 0.95

    def test_fig4_orders_paths_by_variability(self):
        result = experiment_fig4_measured_paths(seed=0)
        covs = result.data["coefficients_of_variation"]
        assert set(covs) == {"inria", "taiwan", "hongkong"}
        assert covs["inria"] == min(covs.values())


class TestSimulationExperiments:
    def test_fig5_shapes(self):
        result = experiment_fig5_constant_bandwidth(**TINY)
        sweep = result.data["sweep"]
        assert isinstance(sweep, SweepResult)
        assert set(sweep.policies()) == {"IF", "PB", "IB"}
        assert sweep.parameter_name == "cache_fraction"
        assert sweep.parameter_values == pytest.approx(list(TINY["cache_fractions"]))

    def test_fig6_one_sweep_per_alpha(self):
        result = experiment_fig6_zipf_sweep(
            alphas=(0.5, 1.0), cache_fractions=(0.05,), scale=0.01, num_runs=1, seed=0
        )
        assert set(result.data["sweeps_by_alpha"]) == {0.5, 1.0}
        for sweep in result.data["sweeps_by_alpha"].values():
            assert set(sweep.policies()) == {"PB", "IB"}

    def test_fig9_one_sweep_per_estimator(self):
        result = experiment_fig9_estimator_sweep(
            estimator_values=(0.5, 1.0),
            cache_fractions=(0.05,),
            scale=0.01,
            num_runs=1,
            seed=0,
        )
        assert set(result.data["sweeps_by_e"]) == {0.5, 1.0}

    def test_fig10_uses_value_policies(self):
        result = experiment_fig10_value_constant(**TINY)
        assert set(result.data["sweep"].policies()) == {"IF", "PB-V", "IB-V"}

    def test_experiments_record_paper_notes(self):
        result = experiment_fig5_constant_bandwidth(**TINY)
        assert any("traffic reduction" in note.lower() for note in result.notes)

    def test_reactive_ablation_settings_and_counters(self):
        result = experiment_reactive_rekeying(
            policies=("PB",), scale=0.01, num_runs=1, seed=0
        )
        settings = result.data["settings"]
        assert settings == [
            "passive", "remeasured", "reactive-probe", "reactive-passive"
        ]
        comparisons = result.data["comparisons_by_setting"]
        counters = result.data["reactive_counters"]
        assert set(comparisons) == set(counters) == set(settings)
        # Non-reactive settings never shift; the reactive ones do, and the
        # passive-driven setting reacts to request observations too.
        assert counters["passive"]["PB"]["shifts"] == 0
        assert counters["remeasured"]["PB"]["shifts"] == 0
        assert counters["reactive-probe"]["PB"]["shifts"] > 0
        assert counters["reactive-passive"]["PB"]["shifts"] > 0
        for comparison in comparisons.values():
            assert comparison.policies() == ["PB"]


class TestStreamingExperiment:
    def test_ablation_grid_and_qoe_shape(self):
        result = experiment_streaming_delivery(
            policies=("PB",), scale=0.01, num_runs=1, seed=0
        )
        assert result.data["caching_settings"] == ["prefix", "whole-object"]
        assert result.data["reaction_settings"] == ["static", "reactive-passive"]
        comparisons = result.data["comparisons"]
        qoe = result.data["qoe"]
        assert set(comparisons) == set(qoe) == {"prefix", "whole-object"}
        for caching_label in comparisons:
            assert set(comparisons[caching_label]) == {
                "static",
                "reactive-passive",
            }
            for reaction_label, comparison in comparisons[caching_label].items():
                assert comparison.policies() == ["PB"]
                cell = qoe[caching_label][reaction_label]["PB"]
                assert cell["mean_startup_delay_s"] >= 0.0
                assert 0.0 <= cell["rebuffer_ratio"] <= 1.0
                assert 0.0 <= cell["mean_quality"] <= 1.0
                assert 0.0 <= cell["abandonment_rate"] <= 1.0
        # Only the prefix mode trims tails or extends prefetch windows.
        for reaction_label in ("static", "reactive-passive"):
            whole = qoe["whole-object"][reaction_label]["PB"]
            assert whole["pressure_trimmed_kb"] == 0.0
            assert whole["prefetch_extensions"] == 0.0

    def test_qoe_direction_prefix_no_worse_than_whole(self):
        # At this scale the margins are thin but the direction is
        # deterministic; the strict inequality at a more constrained cache
        # is asserted in tests/test_sim_streaming.py.
        result = experiment_streaming_delivery(
            policies=("PB",), scale=0.02, num_runs=1, seed=0
        )
        qoe = result.data["qoe"]
        for reaction_label in ("static", "reactive-passive"):
            prefix = qoe["prefix"][reaction_label]["PB"]
            whole = qoe["whole-object"][reaction_label]["PB"]
            assert (
                prefix["mean_startup_delay_s"] <= whole["mean_startup_delay_s"]
            )
            assert prefix["rebuffer_ratio"] <= whole["rebuffer_ratio"]


class TestTable1Experiment:
    def test_summary_matches_paper_at_full_scale_parameters(self):
        result = experiment_table1_workload(scale=0.02, seed=0)
        summary = result.data["summary"]
        assert summary["objects"] == 100.0
        assert summary["requests"] == 2_000.0
        assert summary["zipf_alpha"] == pytest.approx(0.73)
        # Mean bit-rate must be the paper's 48 KB/s.
        assert summary["mean_bitrate_kbps"] == pytest.approx(48.0)


def test_default_cache_fractions_span_paper_range():
    assert min(DEFAULT_CACHE_FRACTIONS) == pytest.approx(0.005)
    assert max(DEFAULT_CACHE_FRACTIONS) == pytest.approx(0.17)
