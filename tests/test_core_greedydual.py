"""Tests for the GreedyDual-Size and popularity-aware GDS baselines."""

import pytest

from repro.core.policies import (
    GreedyDualSizePolicy,
    PolicyContext,
    PopularityAwareGreedyDualSizePolicy,
    make_policy,
)
from repro.core.store import CacheStore
from repro.exceptions import ConfigurationError
from repro.workload.catalog import MediaObject


def ctx(now=0.0, bandwidth=24.0, frequency=1.0):
    return PolicyContext(now=now, bandwidth=bandwidth, frequency=frequency)


@pytest.fixture
def small_object():
    return MediaObject(object_id=1, duration=10.0, bitrate=48.0)


@pytest.fixture
def large_object():
    return MediaObject(object_id=2, duration=1_000.0, bitrate=48.0)


class TestGreedyDualSize:
    def test_uniform_cost_prefers_small_objects(self, small_object, large_object):
        policy = GreedyDualSizePolicy(cost_model="uniform")
        assert policy.utility(small_object, ctx()) > policy.utility(large_object, ctx())

    def test_size_cost_is_size_neutral(self, small_object, large_object):
        policy = GreedyDualSizePolicy(cost_model="size")
        assert policy.utility(small_object, ctx()) == pytest.approx(
            policy.utility(large_object, ctx())
        )

    def test_delay_cost_prefers_slow_paths(self, large_object):
        policy = GreedyDualSizePolicy(cost_model="delay")
        slow = policy.utility(large_object, ctx(bandwidth=10.0))
        fast = policy.utility(large_object, ctx(bandwidth=40.0))
        assert slow > fast
        # No delay saved when the path covers the bit-rate.
        assert policy.credit(large_object, ctx(bandwidth=96.0)) == 0.0

    def test_unknown_cost_model_rejected(self):
        with pytest.raises(ConfigurationError):
            GreedyDualSizePolicy(cost_model="bogus")

    def test_inflation_rises_on_eviction(self):
        policy = GreedyDualSizePolicy(cost_model="uniform")
        large = MediaObject(object_id=0, duration=100.0, bitrate=48.0)
        small = MediaObject(object_id=1, duration=50.0, bitrate=48.0)
        store = CacheStore(large.size)  # room for the large object only
        assert policy.inflation == 0.0
        policy.on_request(large, bandwidth=24.0, now=0.0, store=store)
        # Under the uniform cost model the smaller object has the higher
        # credit (1 / size), so it evicts the large one and the inflation
        # value rises to the victim's utility.
        policy.on_request(small, bandwidth=24.0, now=1.0, store=store)
        assert store.cached_bytes(small.object_id) == pytest.approx(small.size)
        assert store.cached_bytes(large.object_id) == 0.0
        assert policy.inflation > 0.0

    def test_reset_clears_inflation(self):
        policy = GreedyDualSizePolicy()
        policy.inflation = 5.0
        policy.reset()
        assert policy.inflation == 0.0

    def test_caches_whole_objects(self, small_object):
        policy = GreedyDualSizePolicy()
        store = CacheStore(10_000.0)
        policy.on_request(small_object, bandwidth=24.0, now=0.0, store=store)
        assert store.cached_bytes(small_object.object_id) == pytest.approx(small_object.size)


class TestPopularityAwareGDS:
    def test_frequency_scales_credit(self, small_object):
        policy = PopularityAwareGreedyDualSizePolicy()
        low = policy.utility(small_object, ctx(frequency=1.0))
        high = policy.utility(small_object, ctx(frequency=5.0))
        assert high > low

    def test_name_includes_cost_model(self):
        assert PopularityAwareGreedyDualSizePolicy("delay").name == "GDSP(delay)"

    def test_registry_builds_gds_variants(self):
        assert isinstance(make_policy("GDS"), GreedyDualSizePolicy)
        assert isinstance(make_policy("GDSP"), PopularityAwareGreedyDualSizePolicy)


class TestGDSInSimulation:
    def test_runs_through_simulator_and_respects_capacity(self, tiny_workload):
        from repro.sim.config import SimulationConfig
        from repro.sim.simulator import ProxyCacheSimulator

        config = SimulationConfig(cache_size_gb=0.5, seed=3, verify_store=True)
        for name in ("GDS", "GDSP"):
            result = ProxyCacheSimulator(tiny_workload, config).run(make_policy(name))
            assert result.metrics.requests > 0
            assert 0.0 <= result.metrics.traffic_reduction_ratio <= 1.0
