#!/usr/bin/env python
"""How close does the online PB policy get to the offline optimum?

Section 2.3 derives the optimal static cache content (a fractional knapsack
over ``lambda_i / b_i``) assuming request rates are known in advance;
Section 2.4's replacement algorithm approximates it online by tracking
request frequencies.  This script quantifies the gap:

* it computes the offline-optimal allocation from the workload's true
  expected request rates,
* runs the same trace with the allocation frozen in the cache
  (no replacement), and
* compares it against the online PB policy and the IF baseline across a
  range of cache sizes.

Run with::

    python examples/optimal_vs_online.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    GismoWorkloadGenerator,
    ProxyCacheSimulator,
    SimulationConfig,
    StaticAllocationPolicy,
    WorkloadConfig,
    make_policy,
    optimal_allocation,
)


def main() -> None:
    workload = GismoWorkloadGenerator(WorkloadConfig(seed=9).scaled(0.1)).generate()
    rates = {i: float(rate) for i, rate in enumerate(workload.expected_rates)}

    print("Offline optimal vs online replacement")
    print(f"  catalog: {len(workload.catalog)} objects, "
          f"{workload.catalog.total_size_gb:.1f} GB unique bytes\n")
    header = (f"{'cache':>8} {'policy':>8} {'avg delay (s)':>14} "
              f"{'traffic reduction':>18} {'quality':>8}")
    print(header)
    print("-" * len(header))

    for fraction in (0.02, 0.05, 0.10):
        cache_gb = fraction * workload.catalog.total_size_gb
        config = SimulationConfig(cache_size_gb=cache_gb, seed=23)
        simulator = ProxyCacheSimulator(workload, config)
        topology = simulator.build_topology(np.random.default_rng(config.seed))

        bandwidths = {
            obj.object_id: topology.path_for(obj).base_bandwidth
            for obj in workload.catalog
        }
        allocation = optimal_allocation(
            workload.catalog, bandwidths, rates, config.cache_size_kb
        )
        contenders = [
            ("OPT", StaticAllocationPolicy(allocation)),
            ("PB", make_policy("PB")),
            ("IF", make_policy("IF")),
        ]
        for label, policy in contenders:
            metrics = simulator.run(policy, topology=topology).metrics
            print(
                f"{cache_gb:7.1f}G {label:>8} {metrics.average_service_delay:14.1f} "
                f"{metrics.traffic_reduction_ratio:18.3f} "
                f"{metrics.average_stream_quality:8.3f}"
            )
        print()

    print("The online PB policy tracks the offline optimum closely because the")
    print("Zipf-skewed request stream lets the frequency estimates converge quickly;")
    print("IF trails both on delay since it ignores path bandwidth entirely.")


if __name__ == "__main__":
    main()
