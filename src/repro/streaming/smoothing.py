"""Optimal work-ahead smoothing of VBR streams (Salehi et al., SIGMETRICS 96).

The paper assumes that variable bit-rate objects are reduced to (nearly)
constant bit-rate transmission by "the optimal smoothing technique [29]"
before any caching decision is made.  This module implements that technique:
given a VBR stream and a client buffer of ``B`` KB, compute the transmission
schedule that is feasible (never underflows the playback requirement, never
overflows the client buffer) and has the minimum possible peak rate and rate
variability.

The classical algorithm computes the *shortest path* (in the geometric
sense) between the lower cumulative-consumption curve ``D(t)`` and the upper
curve ``D(t) + B``: the schedule is a sequence of constant-rate runs, each
run ending where the string touches one of the two curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.streaming.media import VBRStream


@dataclass(frozen=True)
class SmoothedSchedule:
    """A piecewise-constant-rate transmission schedule.

    Attributes
    ----------
    run_boundaries:
        Frame indices at which the rate changes; ``run_boundaries[0] == 0``
        and ``run_boundaries[-1] == num_frames``.
    run_rates:
        Transmission rate (KB per frame slot) during each run; one entry per
        pair of consecutive boundaries.
    frame_rate:
        Frames per second, kept so rates can be converted to KB/s.
    """

    run_boundaries: Tuple[int, ...]
    run_rates: Tuple[float, ...]
    frame_rate: float

    def cumulative_transmission(self) -> np.ndarray:
        """Cumulative KB transmitted by the end of each frame slot."""
        num_frames = self.run_boundaries[-1]
        schedule = np.empty(num_frames)
        total = 0.0
        position = 0
        for (start, end), rate in zip(
            zip(self.run_boundaries[:-1], self.run_boundaries[1:]), self.run_rates
        ):
            for _ in range(start, end):
                total += rate
                schedule[position] = total
                position += 1
        return schedule

    def rates_kbps(self) -> np.ndarray:
        """Per-run transmission rates in KB/s."""
        return np.asarray(self.run_rates) * self.frame_rate

    @property
    def num_runs(self) -> int:
        """Number of constant-rate runs in the schedule."""
        return len(self.run_rates)


def optimal_smoothing(stream: VBRStream, buffer_kb: float) -> SmoothedSchedule:
    """Compute the minimum-peak-rate feasible schedule for ``stream``.

    Implements the shortest-path (string-tightening) construction: starting
    from the last run's end point, repeatedly find the longest constant-rate
    segment that stays between the underflow curve ``D`` and the overflow
    curve ``D + B``.  When the segment is limited by the underflow curve the
    next run starts there with a (weakly) larger rate; when limited by the
    overflow curve it starts with a (weakly) smaller rate — which is what
    yields the minimum peak rate and, among such schedules, the maximum
    minimum rate.

    Parameters
    ----------
    stream:
        The VBR stream to smooth.
    buffer_kb:
        Client playout buffer size in KB.  A zero buffer forces the schedule
        to follow the per-frame sizes exactly.
    """
    if buffer_kb < 0:
        raise ConfigurationError(f"buffer_kb must be non-negative, got {buffer_kb}")

    demand = stream.cumulative_schedule()
    num_frames = demand.size
    # Lower curve: data needed by end of slot k (underflow bound).
    # Upper curve: demand + buffer, but never more than the total size.
    lower = demand
    upper = np.minimum(demand + buffer_kb, demand[-1])

    boundaries: List[int] = [0]
    rates: List[float] = []

    start = 0
    start_value = 0.0
    while start < num_frames:
        # Find the longest feasible constant-rate run beginning at
        # (start, start_value).  Track the tightest rate interval
        # [min_rate, max_rate] over prefixes of increasing length.
        min_rate = 0.0
        max_rate = float("inf")
        best_end = start + 1
        best_rate = None
        limited_by_lower = True
        end = start
        while end < num_frames:
            slots = end - start + 1
            needed = (lower[end] - start_value) / slots
            allowed = (upper[end] - start_value) / slots
            new_min = max(min_rate, needed)
            new_max = min(max_rate, allowed)
            if new_min > new_max + 1e-12:
                break
            min_rate, max_rate = new_min, new_max
            best_end = end + 1
            # Choose the rate for this run when it terminates: if the run is
            # about to become infeasible because the lower bound rises, the
            # run must end on the lower curve at the minimal feasible rate
            # increase; the canonical choice is min_rate when the binding
            # constraint is underflow and max_rate when it is overflow.
            limited_by_lower = needed >= allowed - 1e-12
            best_rate = min_rate if limited_by_lower else max_rate
            end += 1
        if best_rate is None:
            # A single slot was infeasible, which can only happen if the
            # buffer is smaller than one frame; fall back to per-frame rate.
            best_rate = lower[start] - start_value
            best_end = start + 1
        rates.append(float(best_rate))
        boundaries.append(best_end)
        start_value = start_value + best_rate * (best_end - start)
        # Snap to the curve we terminated on to avoid floating-point drift.
        start_value = min(max(start_value, lower[best_end - 1]), upper[best_end - 1])
        start = best_end

    return SmoothedSchedule(
        run_boundaries=tuple(boundaries),
        run_rates=tuple(rates),
        frame_rate=stream.frame_rate,
    )


def peak_rate(schedule: SmoothedSchedule) -> float:
    """Peak transmission rate of a schedule in KB/s."""
    return float(schedule.rates_kbps().max())


def rate_variability(schedule: SmoothedSchedule) -> float:
    """Coefficient of variation of the per-slot transmission rate."""
    per_slot = np.empty(schedule.run_boundaries[-1])
    for (start, end), rate in zip(
        zip(schedule.run_boundaries[:-1], schedule.run_boundaries[1:]),
        schedule.run_rates,
    ):
        per_slot[start:end] = rate
    mean = per_slot.mean()
    if mean <= 0:
        return 0.0
    return float(per_slot.std() / mean)


def verify_feasible(stream: VBRStream, schedule: SmoothedSchedule, buffer_kb: float) -> bool:
    """Check that a schedule neither underflows playback nor overflows the buffer."""
    demand = stream.cumulative_schedule()
    transmitted = schedule.cumulative_transmission()
    if transmitted.size != demand.size:
        return False
    tolerance = 1e-6 * max(float(demand[-1]), 1.0)
    no_underflow = bool(np.all(transmitted >= demand - tolerance))
    no_overflow = bool(np.all(transmitted <= demand + buffer_kb + tolerance))
    return no_underflow and no_overflow
