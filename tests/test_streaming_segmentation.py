"""Tests for fine-grain segment maintenance of partially cached objects."""

import pytest

from repro.exceptions import ConfigurationError
from repro.streaming.segmentation import Segment, SegmentationScheme, SegmentedPrefix


class TestSegment:
    def test_size(self):
        assert Segment(index=0, start=0.0, end=256.0).size == 256.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Segment(index=0, start=-1.0, end=10.0)
        with pytest.raises(ConfigurationError):
            Segment(index=0, start=10.0, end=10.0)


class TestSegmentationScheme:
    def test_fixed_size_segments_cover_object(self):
        scheme = SegmentationScheme(base_segment_kb=100.0, exponential=False)
        segments = scheme.segments(350.0)
        assert [s.size for s in segments] == [100.0, 100.0, 100.0, 50.0]
        assert segments[0].start == 0.0
        assert segments[-1].end == 350.0

    def test_exponential_segments_double(self):
        scheme = SegmentationScheme(base_segment_kb=64.0, exponential=True)
        segments = scheme.segments(64.0 + 128.0 + 256.0)
        assert [s.size for s in segments] == [64.0, 128.0, 256.0]

    def test_exponential_needs_logarithmic_count(self):
        scheme = SegmentationScheme(base_segment_kb=1.0, exponential=True)
        # A ~1 GB object divides into only ~20 exponential segments.
        assert len(scheme.segments(1_000_000.0)) <= 21

    def test_segments_for_prefix(self):
        scheme = SegmentationScheme(base_segment_kb=100.0, exponential=False)
        covered = scheme.segments_for_prefix(400.0, 150.0)
        assert [s.index for s in covered] == [0, 1]
        assert scheme.segments_for_prefix(400.0, 0.0) == []

    def test_zero_size_object(self):
        assert SegmentationScheme().segments(0.0) == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SegmentationScheme(base_segment_kb=0.0)
        with pytest.raises(ConfigurationError):
            SegmentationScheme().segments(-1.0)


class TestSegmentedPrefix:
    def make(self, size=1_000.0, base=100.0, exponential=False):
        return SegmentedPrefix(
            size, SegmentationScheme(base_segment_kb=base, exponential=exponential)
        )

    def test_starts_empty(self):
        prefix = self.make()
        assert prefix.cached_bytes == 0.0
        assert prefix.resident_segments == []
        assert prefix.missing_ranges() == [(0.0, 1_000.0)]

    def test_grow_to_rounds_up_to_segment_boundary(self):
        prefix = self.make()
        cached = prefix.grow_to(250.0)
        assert cached == pytest.approx(300.0)  # three 100 KB segments
        assert len(prefix.resident_segments) == 3

    def test_grow_beyond_object_caps_at_size(self):
        prefix = self.make(size=250.0)
        assert prefix.grow_to(1e9) == pytest.approx(250.0)
        assert prefix.missing_ranges() == []

    def test_trim_to_drops_trailing_segments(self):
        prefix = self.make()
        prefix.grow_to(500.0)
        remaining = prefix.trim_to(250.0)
        assert remaining == pytest.approx(200.0)
        assert prefix.missing_ranges() == [(200.0, 1_000.0)]

    def test_holds_prefix(self):
        prefix = self.make()
        prefix.grow_to(300.0)
        assert prefix.holds_prefix(250.0)
        assert prefix.holds_prefix(300.0)
        assert not prefix.holds_prefix(301.0)

    def test_metadata_entries_counts_all_segments(self):
        assert self.make(size=1_000.0, base=100.0).metadata_entries() == 10

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SegmentedPrefix(0.0)
        prefix = self.make()
        with pytest.raises(ConfigurationError):
            prefix.grow_to(-1.0)
        with pytest.raises(ConfigurationError):
            prefix.trim_to(-1.0)
