"""Stream encodings: CBR, VBR, and layered.

The paper assumes constant bit-rate (CBR) objects, with variable bit-rate
(VBR) objects reduced to the CBR case by optimal smoothing (Section 2.2).
Stream quality is defined over a layered encoding: if only three of four
layers can be sustained, quality is 0.75 (Section 3.3).

These classes provide the frame-level schedules that the smoothing module
and the delivery-session model operate on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class CBRStream:
    """A constant bit-rate stream.

    Attributes
    ----------
    duration:
        Playback duration in seconds.
    rate:
        Encoding rate in KB/s.
    """

    duration: float
    rate: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigurationError(f"duration must be positive, got {self.duration}")
        if self.rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {self.rate}")

    @property
    def size(self) -> float:
        """Total stream size in KB."""
        return self.duration * self.rate

    def cumulative_consumption(self, times: Sequence[float]) -> np.ndarray:
        """KB consumed by the player by each time in ``times`` (seconds)."""
        t = np.asarray(times, dtype=float)
        return np.clip(t, 0.0, self.duration) * self.rate

    def prefix_bytes(self, seconds: float) -> float:
        """Size in KB of the first ``seconds`` of the stream."""
        if seconds < 0:
            raise ConfigurationError(f"seconds must be non-negative, got {seconds}")
        return min(seconds, self.duration) * self.rate


class VBRStream:
    """A variable bit-rate stream described by its per-frame sizes.

    Parameters
    ----------
    frame_sizes:
        Size in KB of each frame, in playback order.
    frame_rate:
        Frames per second (default 24, matching the paper's workload).
    """

    def __init__(self, frame_sizes: Sequence[float], frame_rate: float = 24.0):
        sizes = np.asarray(list(frame_sizes), dtype=float)
        if sizes.size == 0:
            raise ConfigurationError("frame_sizes must be non-empty")
        if np.any(sizes < 0):
            raise ConfigurationError("frame sizes must be non-negative")
        if frame_rate <= 0:
            raise ConfigurationError(f"frame_rate must be positive, got {frame_rate}")
        self.frame_sizes = sizes
        self.frame_rate = float(frame_rate)

    @property
    def num_frames(self) -> int:
        """Number of frames in the stream."""
        return int(self.frame_sizes.size)

    @property
    def duration(self) -> float:
        """Playback duration in seconds."""
        return self.num_frames / self.frame_rate

    @property
    def size(self) -> float:
        """Total stream size in KB."""
        return float(self.frame_sizes.sum())

    @property
    def mean_rate(self) -> float:
        """Average rate in KB/s."""
        return self.size / self.duration

    @property
    def peak_rate(self) -> float:
        """Peak per-frame rate expressed in KB/s."""
        return float(self.frame_sizes.max()) * self.frame_rate

    def cumulative_schedule(self) -> np.ndarray:
        """Cumulative KB that must be delivered by the end of each frame.

        Index ``k`` gives the data required to decode frames ``0..k``; this
        is the lower bound every feasible transmission schedule must stay
        above (the ``D(t)`` curve in the smoothing literature).
        """
        return np.cumsum(self.frame_sizes)

    def to_cbr(self) -> CBRStream:
        """Collapse to a CBR stream at the average rate (ignores burstiness)."""
        return CBRStream(duration=self.duration, rate=self.mean_rate)


@dataclass(frozen=True)
class LayeredEncoding:
    """A layered (scalable) encoding of a stream.

    The paper's quality metric assumes layers of equal rate: playing ``k``
    of ``layers`` layers yields quality ``k / layers`` and requires rate
    ``k / layers * full_rate``.
    """

    full_rate: float
    layers: int = 4

    def __post_init__(self) -> None:
        if self.full_rate <= 0:
            raise ConfigurationError(f"full_rate must be positive, got {self.full_rate}")
        if self.layers < 1:
            raise ConfigurationError(f"layers must be >= 1, got {self.layers}")

    @property
    def layer_rate(self) -> float:
        """Rate of a single layer in KB/s."""
        return self.full_rate / self.layers

    def supported_layers(self, available_rate: float) -> int:
        """Largest number of layers sustainable at ``available_rate`` KB/s."""
        if available_rate <= 0:
            return 0
        return min(self.layers, int(available_rate / self.layer_rate + 1e-9))

    def quality(self, available_rate: float) -> float:
        """Quality (fraction of layers playable) at ``available_rate`` KB/s."""
        return self.supported_layers(available_rate) / self.layers

    def rate_for_quality(self, quality: float) -> float:
        """Minimum rate (KB/s) needed to reach at least ``quality``."""
        if not 0.0 <= quality <= 1.0:
            raise ConfigurationError(f"quality must be in [0, 1], got {quality}")
        needed_layers = int(np.ceil(quality * self.layers - 1e-9))
        return needed_layers * self.layer_rate


def synthetic_vbr_stream(
    duration: float,
    mean_rate: float,
    burstiness: float = 0.5,
    frame_rate: float = 24.0,
    seed: int = 0,
) -> VBRStream:
    """Generate a synthetic VBR stream with a target mean rate.

    Frame sizes follow a gamma distribution around the mean frame size with
    a scene-level modulation (slowly varying sinusoidal component) so the
    stream exhibits both short-term and long-term rate variability, which is
    what makes smoothing interesting.  ``burstiness`` in ``[0, 1)`` controls
    the coefficient of variation of frame sizes.
    """
    if duration <= 0 or mean_rate <= 0:
        raise ConfigurationError("duration and mean_rate must be positive")
    if not 0.0 <= burstiness < 1.0:
        raise ConfigurationError(f"burstiness must be in [0, 1), got {burstiness}")
    rng = np.random.default_rng(seed)
    num_frames = max(int(duration * frame_rate), 1)
    mean_frame = mean_rate / frame_rate
    # Scene modulation: +-40% swings over ~30-second scenes.
    scene_period_frames = 30.0 * frame_rate
    phase = rng.uniform(0, 2 * np.pi)
    modulation = 1.0 + 0.4 * np.sin(
        2 * np.pi * np.arange(num_frames) / scene_period_frames + phase
    )
    if burstiness > 0:
        cov = burstiness
        shape = 1.0 / cov**2
        noise = rng.gamma(shape, 1.0 / shape, size=num_frames)
    else:
        noise = np.ones(num_frames)
    sizes = mean_frame * modulation * noise
    # Re-normalise so the realised mean rate matches the request.
    sizes *= (mean_frame * num_frames) / sizes.sum()
    return VBRStream(sizes, frame_rate=frame_rate)
