#!/usr/bin/env python
"""Scenario: a campus edge proxy accelerating distant streaming servers.

This is the situation the paper's introduction motivates: clients behind a
well-provisioned last mile request streaming lectures and news clips hosted
on origin servers scattered across the Internet, many of them behind slow or
lossy paths.  The campus deploys one proxy cache and has to choose a cache
management policy.

The script:

* builds a workload whose objects live on servers with NLANR-like
  heterogeneous path bandwidth,
* adds realistic (measured-path) bandwidth variability,
* compares the no-cache baseline against LRU, IF, IB, and PB at several
  cache sizes, and
* reports how much of the startup delay each policy removes.

Run with::

    python examples/campus_proxy_acceleration.py
"""

from __future__ import annotations

from repro import (
    GismoWorkloadGenerator,
    MeasuredPathVariability,
    ProxyCacheSimulator,
    SimulationConfig,
    WorkloadConfig,
    make_policy,
)
from repro.core.policies.optimal import StaticAllocationPolicy


def no_cache_baseline(workload, variability, seed):
    """Average delay/quality with no proxy cache at all (capacity 0)."""
    config = SimulationConfig(cache_size_gb=0.0, variability=variability, seed=seed)
    result = ProxyCacheSimulator(workload, config).run(
        StaticAllocationPolicy({}, name="no-cache")
    )
    return result.metrics


def main() -> None:
    workload = GismoWorkloadGenerator(
        WorkloadConfig(seed=3).scaled(0.1)
    ).generate()
    variability = MeasuredPathVariability("average")
    seed = 11

    baseline = no_cache_baseline(workload, variability, seed)
    print("Campus proxy acceleration study")
    print(f"  catalog: {len(workload.catalog)} objects, "
          f"{workload.catalog.total_size_gb:.1f} GB unique bytes")
    print(f"  no-cache baseline: avg startup delay {baseline.average_service_delay:.0f} s, "
          f"avg stream quality {baseline.average_stream_quality:.3f}\n")

    cache_fractions = (0.02, 0.05, 0.10)
    policies = ("LRU", "IF", "IB", "PB")

    for fraction in cache_fractions:
        cache_gb = fraction * workload.catalog.total_size_gb
        config = SimulationConfig(
            cache_size_gb=cache_gb, variability=variability, seed=seed
        )
        print(f"cache = {cache_gb:.1f} GB ({fraction:.0%} of unique bytes)")
        header = (f"  {'policy':6} {'delay (s)':>10} {'delay cut':>10} "
                  f"{'quality':>8} {'traffic reduction':>18}")
        print(header)
        for name in policies:
            result = ProxyCacheSimulator(workload, config).run(make_policy(name))
            metrics = result.metrics
            delay_cut = 1.0 - (
                metrics.average_service_delay / baseline.average_service_delay
                if baseline.average_service_delay > 0
                else 0.0
            )
            print(
                f"  {name:6} {metrics.average_service_delay:10.0f} {delay_cut:10.0%} "
                f"{metrics.average_stream_quality:8.3f} "
                f"{metrics.traffic_reduction_ratio:18.3f}"
            )
        print()

    print("Reading the results: the network-aware policies (IB, PB) concentrate the")
    print("cache on objects behind slow paths, so they remove far more startup delay")
    print("per cached byte than LRU or IF even though they serve fewer bytes overall.")


if __name__ == "__main__":
    main()
