"""The ``repro`` diagnostic logger: :func:`get_logger` / :func:`configure`.

The CLI historically printed diagnostics (``note:``, ``warning:``,
``error:`` prefixed lines) straight to ``stderr``.  This module routes
them through a standard :mod:`logging` hierarchy rooted at ``"repro"``
while keeping the exact on-the-wire format, so existing consumers that
grep stderr (and the repo's own tests) see unchanged text.  Program
*output* — result tables, JSON records — stays on ``stdout`` via
``print`` and is not the logger's business.

:func:`configure` installs one stderr handler on the root ``repro``
logger; verbosity maps ``-v`` → DEBUG, default → INFO, ``--quiet`` →
ERROR.  It is idempotent (re-running replaces the handler), so repeated
in-process CLI invocations — the test suite's pattern — never stack
handlers or leak captured streams.
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional

__all__ = ["configure", "get_logger"]

#: Root logger name for the package.
ROOT_NAME = "repro"

#: Level → line-prefix map preserving the CLI's historical format.
_PREFIXES = {
    logging.DEBUG: "debug",
    logging.INFO: "note",
    logging.WARNING: "warning",
    logging.ERROR: "error",
    logging.CRITICAL: "error",
}


class _PrefixFormatter(logging.Formatter):
    """Format records as ``<prefix>: <message>`` — the CLI's house style."""

    def format(self, record: logging.LogRecord) -> str:
        """Render one record with its level prefix."""
        prefix = _PREFIXES.get(record.levelno, record.levelname.lower())
        return f"{prefix}: {record.getMessage()}"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``)."""
    return logging.getLogger(f"{ROOT_NAME}.{name}" if name else ROOT_NAME)


def configure(
    verbosity: int = 0, quiet: bool = False, stream: Optional[IO] = None
) -> logging.Logger:
    """(Re-)install the stderr handler on the root ``repro`` logger.

    ``verbosity`` counts ``-v`` flags (any positive value enables DEBUG);
    ``quiet`` raises the threshold to ERROR so only hard failures print.
    ``stream`` defaults to the *current* ``sys.stderr`` — resolved at
    call time so pytest's capture machinery sees the output.
    """
    logger = logging.getLogger(ROOT_NAME)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(_PrefixFormatter())
    logger.addHandler(handler)
    logger.propagate = False
    if quiet:
        logger.setLevel(logging.ERROR)
    elif verbosity > 0:
        logger.setLevel(logging.DEBUG)
    else:
        logger.setLevel(logging.INFO)
    return logger
