#!/usr/bin/env python
"""Benchmark-trajectory gate: ``BENCH_perf.json`` must not silently decay.

``BENCH_perf.json`` is the repo's performance record.  Two failure modes
have historically gone unnoticed in CI: a refactor of the benchmark file
*dropping* a recorded section (the trajectory quietly loses a metric), and
a *ratio* regressing while absolute numbers still look plausible on a
differently-sized runner.  This gate catches both by comparing a freshly
measured ``BENCH_perf.json`` against the committed baseline (captured
before the benchmark rewrites the file):

* **Key loss** — every key present in the baseline must still exist in the
  current file, recursively.  New keys are fine (that is how the record
  grows); losing one fails.
* **Ratio regression** — the recorded *ratios* (speedups and overheads,
  :data:`RATIO_KEYS`) are machine-normalised, so they are comparable
  across runners: a current ratio more than ``--tolerance`` (default 25%)
  worse than the baseline fails.  "Worse" is direction-aware — lower for
  speedups, higher for overhead ratios — so improvements never fail the
  gate, and ratios that exist only in the current file (newly added
  metrics) are skipped.  Ratios that compare differently shaped code
  paths (and therefore move with the machine profile, not the code)
  carry a wider per-key tolerance in :data:`RATIO_KEYS`.
* **Absolute ceilings** — a few ratios are acceptance criteria rather
  than trajectory numbers (the kernel refactor's
  ``kernel.overhead_ratio_vs_pre_kernel`` must stay at or below 1.05);
  these carry an absolute ceiling in :data:`RATIO_KEYS` that applies
  whenever the current file records the ratio, baseline or not.

Used by the CI bench-smoke job (see ``.github/workflows/ci.yml``), which
also uploads the fresh file as a workflow artifact so the perf trajectory
is inspectable per run.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Dotted paths of the recorded ratios, mapped to ``(better, tolerance)``:
#: the direction that is *better* ("higher" for speedups, "lower" for
#: overheads) and an optional per-key tolerance override.  Absolute
#: requests/sec numbers are deliberately not gated: they measure the
#: runner, not the code.  The overridden keys compare two *differently
#: shaped* code paths (interpreter-bound event calendar vs numpy-bound
#: fast loop; process spawn vs pickle), so their ratio shifts with the
#: machine profile itself — observed run-to-run deltas approach 25% with
#: no code change, which would put the default gate at the flake
#: boundary.  Same-shaped overhead ratios keep the tight default.
RATIO_KEYS: Dict[str, tuple] = {
    "speedup": ("higher", 0.40),
    "columnar_speedup_vs_fast_path": ("higher", None),
    "columnar_event_speedup_vs_event_path": ("higher", 0.40),
    # The remeasurement and reactive overheads are dominated by per-request
    # interpreter work layered on the numpy-bound columnar-event baseline,
    # so interpreter state (and whether the benchmark runs standalone or
    # inside the full suite, as CI does) moves the ratio with no code
    # change: observed spans on the 1-core runner are 0.89–1.29 for
    # remeasurement and 1.08–1.62 for reactive, past the default gate.
    "remeasurement.overhead_ratio_vs_passive": ("lower", 0.40),
    "client_clouds.overhead_ratio_vs_uniform": ("lower", None),
    "reactive.overhead_ratio_vs_passive": ("lower", 0.40),
    # The fault-injection overhead is a few percent at most, so run-to-run
    # timer noise dominates the ratio itself (baselines below 1.0 occur);
    # the wider tolerance keeps a noise-low committed baseline from turning
    # the gate into a coin flip.
    "faults.overhead_ratio_vs_baseline": ("lower", 0.40),
    # The streaming-session engine is per-request interpreter work layered
    # on the numpy-bound columnar loop — the same machine-profile argument
    # as the remeasurement/reactive ratios, but with a larger interpreter
    # share (session arithmetic + segment-boundary sync per request), so
    # the band is wider still.
    "streaming.overhead_ratio_vs_baseline": ("lower", 0.50),
    # The hierarchy engine is the same shape as the streaming engine:
    # per-request interpreter work (residency reads, uplink-chain caps,
    # per-tier policy calls) on the numpy-bound columnar baseline, so the
    # ratio moves with the machine's interpreter profile, not the code.
    "hierarchy.overhead_ratio_vs_baseline": ("lower", 0.50),
    # Serial vs pooled shard replay compares in-process loops against
    # process spawn + per-worker imports — the dispatch argument, but
    # with the whole speedup (not just transport) exposed to the machine
    # profile: a 1-core runner can legitimately land below 1.0.
    "hierarchy.sharded_speedup_vs_serial": ("higher", 0.50),
    # Disabled observability is the same dead branch on both sides, so the
    # true ratio is 1.0 and the measurement is pure timer noise — same
    # flake argument as the faults ratio above.
    "observability.overhead_ratio_vs_baseline": ("lower", 0.40),
    "observability.timeline_overhead_ratio_vs_baseline": ("lower", 0.40),
    "dispatch.shm_vs_pickle_ratio": ("lower", 0.40),
    # The kernel-vs-pre-kernel ratio compares two near-identical columnar
    # loops back-to-back in one process, so it is the least noisy ratio in
    # the record — and it is the acceptance criterion of the kernel
    # refactor, so beyond the usual baseline-relative check it carries an
    # *absolute* ceiling (third element): the unified kernel may never
    # cost the columnar fast path more than 5%, whatever the baseline
    # happened to record.
    "kernel.overhead_ratio_vs_pre_kernel": ("lower", 0.40, 1.05),
}

#: A ratio may be this fraction worse than the committed baseline before
#: the gate fails (ratios are machine-normalised but still noisy);
#: applies to every key without a :data:`RATIO_KEYS` override.
DEFAULT_TOLERANCE = 0.25


def missing_keys(baseline: dict, current: dict, prefix: str = "") -> List[str]:
    """Dotted paths of keys present in ``baseline`` but lost in ``current``."""
    lost: List[str] = []
    for key, value in baseline.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if key not in current:
            lost.append(path)
            continue
        if isinstance(value, dict) and isinstance(current[key], dict):
            lost.extend(missing_keys(value, current[key], path))
    return lost


def _lookup(data: dict, dotted: str) -> Optional[float]:
    node = data
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


def ratio_regressions(
    baseline: dict, current: dict, tolerance: float = DEFAULT_TOLERANCE
) -> List[str]:
    """Human-readable failures for every gated ratio that regressed.

    A ratio is checked against the baseline only when the *baseline*
    records it — newly added ratios have no baseline to regress from.  A
    ratio the baseline records but the current file lost is reported by
    :func:`missing_keys`, not here.  Keys carrying an absolute ceiling
    (a third element in their :data:`RATIO_KEYS` entry) are additionally
    checked against that ceiling whenever the current file records them,
    baseline or not.
    """
    failures: List[str] = []
    for dotted, spec in RATIO_KEYS.items():
        better, override = spec[0], spec[1]
        absolute_ceiling = spec[2] if len(spec) > 2 else None
        recorded = _lookup(baseline, dotted)
        measured = _lookup(current, dotted)
        if measured is not None and absolute_ceiling is not None:
            if measured > absolute_ceiling:
                failures.append(
                    f"{dotted}: {measured:.3f} exceeds the absolute ceiling "
                    f"{absolute_ceiling:.3f}"
                )
        if recorded is None or measured is None:
            continue
        allowed = tolerance if override is None else max(override, tolerance)
        if better == "higher":
            floor = recorded * (1.0 - allowed)
            if measured < floor:
                failures.append(
                    f"{dotted}: {measured:.3f} is below the baseline "
                    f"{recorded:.3f} by more than {allowed:.0%} "
                    f"(floor {floor:.3f})"
                )
        else:
            ceiling = recorded * (1.0 + allowed)
            if measured > ceiling:
                failures.append(
                    f"{dotted}: {measured:.3f} is above the baseline "
                    f"{recorded:.3f} by more than {allowed:.0%} "
                    f"(ceiling {ceiling:.3f})"
                )
    return failures


def check(
    baseline: dict, current: dict, tolerance: float = DEFAULT_TOLERANCE
) -> List[str]:
    """All gate failures: lost keys first, then ratio regressions."""
    problems = [f"lost key: {path}" for path in missing_keys(baseline, current)]
    problems.extend(ratio_regressions(baseline, current, tolerance))
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "current",
        nargs="?",
        default=str(REPO_ROOT / "BENCH_perf.json"),
        help="freshly measured BENCH_perf.json (default: repo root)",
    )
    parser.add_argument(
        "--baseline",
        required=True,
        help="committed BENCH_perf.json captured before the benchmark ran",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional ratio regression (default: 0.25)",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(Path(args.baseline).read_text())
    current = json.loads(Path(args.current).read_text())
    problems = check(baseline, current, args.tolerance)
    for problem in problems:
        print(problem)
    gated = sum(1 for key in RATIO_KEYS if _lookup(baseline, key) is not None)
    print(
        f"bench gate: {gated} ratios checked against {args.baseline}, "
        f"{len(problems)} problem(s)"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
