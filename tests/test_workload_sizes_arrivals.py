"""Tests for object duration, bit-rate, and arrival-process models."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.workload.arrivals import (
    DeterministicArrivalProcess,
    MarkovModulatedPoissonProcess,
    PoissonArrivalProcess,
)
from repro.workload.sizes import (
    ConstantBitrateModel,
    ConstantDurationModel,
    HeterogeneousBitrateModel,
    LognormalDurationModel,
)


class TestLognormalDurationModel:
    def test_mean_matches_table1(self):
        # exp(3.85 + 0.56^2/2) minutes ~= 55 minutes ~= 3290 seconds.
        model = LognormalDurationModel()
        assert model.mean() == pytest.approx(55.0 * 60.0, rel=0.05)

    def test_sample_mean_close_to_analytical(self, rng):
        model = LognormalDurationModel()
        samples = model.sample(20_000, rng)
        assert samples.mean() == pytest.approx(model.mean(), rel=0.05)

    def test_samples_respect_truncation(self, rng):
        model = LognormalDurationModel(min_minutes=10.0, max_minutes=60.0)
        samples = model.sample(5_000, rng)
        assert samples.min() >= 10.0 * 60.0 - 1e-9
        assert samples.max() <= 60.0 * 60.0 + 1e-9

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            LognormalDurationModel(sigma=0.0)
        with pytest.raises(ConfigurationError):
            LognormalDurationModel(min_minutes=10.0, max_minutes=5.0)
        with pytest.raises(ConfigurationError):
            LognormalDurationModel().sample(0, np.random.default_rng(0))


class TestConstantDurationModel:
    def test_constant(self, rng):
        model = ConstantDurationModel(120.0)
        assert model.mean() == 120.0
        assert np.all(model.sample(10, rng) == 120.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            ConstantDurationModel(0.0)


class TestBitrateModels:
    def test_constant_bitrate_default_is_48(self, rng):
        samples = ConstantBitrateModel().sample(5, rng)
        assert np.all(samples == 48.0)

    def test_constant_bitrate_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            ConstantBitrateModel(0.0)

    def test_heterogeneous_bitrate_samples_from_given_rates(self, rng):
        model = HeterogeneousBitrateModel(rates=(20.0, 48.0, 110.0), weights=(1, 1, 2))
        samples = model.sample(5_000, rng)
        assert set(np.unique(samples)).issubset({20.0, 48.0, 110.0})
        # The 110 KB/s profile has twice the weight of each other profile.
        assert np.mean(samples == 110.0) == pytest.approx(0.5, abs=0.05)

    def test_heterogeneous_bitrate_validation(self):
        with pytest.raises(ConfigurationError):
            HeterogeneousBitrateModel(rates=(), weights=())
        with pytest.raises(ConfigurationError):
            HeterogeneousBitrateModel(rates=(10.0,), weights=(1.0, 2.0))
        with pytest.raises(ConfigurationError):
            HeterogeneousBitrateModel(rates=(-1.0,), weights=(1.0,))
        with pytest.raises(ConfigurationError):
            HeterogeneousBitrateModel(rates=(10.0,), weights=(0.0,))


class TestPoissonArrivals:
    def test_times_sorted_and_positive(self, rng):
        times = PoissonArrivalProcess(rate=2.0).sample(1_000, rng)
        assert np.all(np.diff(times) >= 0)
        assert times[0] > 0

    def test_rate_matches_expected_span(self, rng):
        process = PoissonArrivalProcess(rate=0.5)
        times = process.sample(20_000, rng)
        assert times[-1] == pytest.approx(process.expected_span(20_000), rel=0.05)

    def test_invalid_parameters(self, rng):
        with pytest.raises(ConfigurationError):
            PoissonArrivalProcess(rate=0.0)
        with pytest.raises(ConfigurationError):
            PoissonArrivalProcess(rate=1.0).sample(0, rng)


class TestDeterministicArrivals:
    def test_evenly_spaced(self, rng):
        times = DeterministicArrivalProcess(interval=2.0).sample(5, rng)
        assert times.tolist() == [2.0, 4.0, 6.0, 8.0, 10.0]

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ConfigurationError):
            DeterministicArrivalProcess(interval=0.0)


class TestMarkovModulatedArrivals:
    def test_times_sorted(self, rng):
        process = MarkovModulatedPoissonProcess(
            low_rate=0.1, high_rate=5.0, mean_low_duration=100.0, mean_high_duration=20.0
        )
        times = process.sample(2_000, rng)
        assert len(times) == 2_000
        assert np.all(np.diff(times) >= 0)

    def test_burstier_than_poisson(self, rng):
        mmpp = MarkovModulatedPoissonProcess(
            low_rate=0.1, high_rate=10.0, mean_low_duration=200.0, mean_high_duration=50.0
        )
        bursty = np.diff(mmpp.sample(5_000, rng))
        poisson = np.diff(PoissonArrivalProcess(rate=1.0).sample(5_000, rng))
        cov_bursty = bursty.std() / bursty.mean()
        cov_poisson = poisson.std() / poisson.mean()
        assert cov_bursty > cov_poisson

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            MarkovModulatedPoissonProcess(0.0, 1.0, 10.0, 10.0)
        with pytest.raises(ConfigurationError):
            MarkovModulatedPoissonProcess(1.0, 1.0, 0.0, 10.0)
