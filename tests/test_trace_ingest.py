"""Access-log ingestion: Squid/CLF parsing, filtering, and end-to-end use.

Covers the satellite fixtures the issue asks for — well-formed and
malformed Squid and CLF lines — plus the acceptance path: a sample log
ingests into a columnar trace that runs through ``compare_policies``.
"""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.policies import PolicySpec
from repro.exceptions import ConfigurationError, TraceFormatError
from repro.network.loganalysis import ProxyLogAnalyzer, analyze_access_log
from repro.sim.config import SimulationConfig
from repro.sim.runner import compare_policies
from repro.trace.columnar import ColumnarTrace
from repro.trace.ingest import (
    detect_log_format,
    ingest_access_log,
    parse_clf_line,
    parse_squid_line,
)

SQUID_LINES = [
    "987654321.100  52000 10.0.0.2 TCP_MISS/200 2457600 GET http://media.bu.edu/a.rm - DIRECT/media.bu.edu video/x",
    "987654322.500    300 10.0.0.3 TCP_HIT/200 2457600 GET http://media.bu.edu/a.rm - NONE/- video/x",
    # completes *before* the previous line: exercises the stable sort
    "987654322.000  41000 10.0.0.2 TCP_MISS/200 1228800 GET http://cdn.example.net/b.rm - DIRECT/cdn.example.net video/x",
    "987654330.000  60000 10.0.0.4 TCP_MISS/200 2457000 GET http://media.bu.edu/a.rm - DIRECT/media.bu.edu video/x",
    "987654333.000  30000 10.0.0.4 TCP_MISS/200 1228000 GET http://cdn.example.net/b.rm - DIRECT/cdn.example.net video/x",
    # filtered: POST and 404
    "987654335.000    100 10.0.0.5 TCP_MISS/200 512 POST http://cdn.example.net/upload - DIRECT/cdn.example.net text/html",
    "987654336.000     80 10.0.0.5 TCP_MISS/404 300 GET http://media.bu.edu/gone.rm - DIRECT/media.bu.edu text/html",
    # malformed
    "utterly corrupt line",
    "987654337.000 notanint 10.0.0.6 TCP_MISS/200 100 GET http://media.bu.edu/a.rm - DIRECT/media.bu.edu video/x",
]

CLF_LINES = [
    '192.168.7.2 - - [17/Apr/2001:09:00:01 -0500] "GET /v/one.rm HTTP/1.0" 200 1048576',
    '192.168.7.3 - - [17/Apr/2001:09:00:31 -0500] "GET /v/two.rm HTTP/1.0" 200 2097152 "http://ref.example/" "Mozilla/4.0"',
    '192.168.7.2 - - [17/Apr/2001:09:01:12 -0500] "GET /v/one.rm HTTP/1.0" 304 -',
    '192.168.7.4 - - [17/Apr/2001:09:02:00 -0500] "HEAD /v/one.rm HTTP/1.0" 200 0',
    '192.168.7.5 - - [17/Apr/2001:09:02:30 -0500] "GET /v/three.rm HTTP/1.0" 500 99',
    "not a clf line at all",
]


@pytest.fixture
def squid_log(tmp_path):
    path = tmp_path / "access.log"
    path.write_text("# comment\n" + "\n".join(SQUID_LINES) + "\n")
    return path


@pytest.fixture
def clf_log(tmp_path):
    path = tmp_path / "clf.log"
    path.write_text("\n".join(CLF_LINES) + "\n")
    return path


class TestLineParsers:
    def test_squid_well_formed(self):
        record = parse_squid_line(SQUID_LINES[0])
        assert record.timestamp == pytest.approx(987654321.1)
        assert record.elapsed_ms == pytest.approx(52000.0)
        assert record.client == "10.0.0.2"
        assert record.method == "GET"
        assert record.status == 200
        assert record.size_bytes == 2457600
        assert record.cache_code == "TCP_MISS"
        assert not record.cache_hit
        assert record.server_host == "media.bu.edu"

    def test_squid_hit_codes(self):
        assert parse_squid_line(SQUID_LINES[1]).cache_hit

    def test_squid_malformed(self):
        assert parse_squid_line("utterly corrupt line") is None
        assert parse_squid_line(SQUID_LINES[-1]) is None
        assert parse_squid_line("") is None

    def test_clf_well_formed(self):
        record = parse_clf_line(CLF_LINES[0])
        assert record.client == "192.168.7.2"
        assert record.method == "GET"
        assert record.url == "/v/one.rm"
        assert record.status == 200
        assert record.size_bytes == 1048576
        assert record.elapsed_ms is None
        assert not record.cache_hit
        assert record.server_host == ""

    def test_clf_combined_and_dash_size(self):
        assert parse_clf_line(CLF_LINES[1]).size_bytes == 2097152
        assert parse_clf_line(CLF_LINES[2]).size_bytes == 0

    def test_clf_timestamp_timezone(self):
        # 09:00:01 -0500 == 14:00:01 UTC
        record = parse_clf_line(CLF_LINES[0])
        assert int(record.timestamp) % 86400 == 14 * 3600 + 1

    def test_clf_malformed(self):
        assert parse_clf_line("not a clf line at all") is None
        assert parse_clf_line(SQUID_LINES[0]) is None


class TestDetection:
    def test_detects_squid(self, squid_log):
        assert detect_log_format(squid_log) == "squid"

    def test_detects_clf(self, clf_log):
        assert detect_log_format(clf_log) == "clf"

    def test_undetectable_raises(self, tmp_path):
        path = tmp_path / "noise.log"
        path.write_text("nothing\nparseable\nhere\n")
        with pytest.raises(TraceFormatError):
            detect_log_format(path)

    def test_unknown_format_rejected(self, squid_log):
        with pytest.raises(ConfigurationError):
            ingest_access_log(squid_log, log_format="w3c")


class TestIngestSquid:
    def test_summary_and_filtering(self, squid_log):
        result = ingest_access_log(squid_log)
        summary = result.summary
        assert summary.log_format == "squid"
        assert summary.lines_malformed == 2
        assert summary.records_parsed == 7
        assert summary.records_filtered == 2  # POST + 404
        assert summary.requests == 5
        assert summary.unique_objects == 2
        assert summary.unique_servers == 2
        assert summary.unique_clients == 3
        assert summary.out_of_order == 1

    def test_trace_is_sorted_columnar_starting_at_zero(self, squid_log):
        result = ingest_access_log(squid_log)
        trace = result.trace
        assert isinstance(trace, ColumnarTrace)
        assert trace.start_time == 0.0
        assert np.all(np.diff(trace.times_array) >= 0)
        # the out-of-order completion was sorted into place
        assert trace.object_ids_array.tolist()[:2] == [0, 1]

    def test_object_sizes_track_largest_transfer(self, squid_log):
        result = ingest_access_log(squid_log)
        object_id = result.url_ids["http://media.bu.edu/a.rm"]
        assert result.object_sizes_kb[object_id] == pytest.approx(2457600 / 1024.0)

    def test_hits_can_be_excluded(self, squid_log):
        result = ingest_access_log(squid_log, include_hits=False)
        assert result.summary.requests == 4
        assert not result.request_hits.any()

    def test_catalog_and_workload(self, squid_log):
        result = ingest_access_log(squid_log)
        workload = result.to_workload(bitrate=48.0)
        assert len(workload.catalog) == 2
        obj = workload.catalog.get(result.url_ids["http://media.bu.edu/a.rm"])
        assert obj.bitrate == 48.0
        assert obj.duration == pytest.approx(2457600 / 1024.0 / 48.0)
        assert workload.trace is result.trace

    def test_transfer_records_feed_the_analyzer(self, squid_log):
        result = ingest_access_log(squid_log)
        records = result.to_transfer_records()
        assert len(records) == len(result.trace)
        analysis = ProxyLogAnalyzer(min_object_kb=200.0).analyze(records)
        # 4 misses above 200 KB with known durations
        assert analysis.samples.size == 4
        assert float(analysis.samples.max()) > 0

    def test_analyze_access_log_bridge(self, squid_log):
        analysis = analyze_access_log(squid_log)
        distribution = analysis.to_distribution()
        rng = np.random.default_rng(0)
        assert distribution.sample(8, rng).shape == (8,)


class TestIngestClf:
    def test_summary(self, clf_log):
        result = ingest_access_log(clf_log)
        summary = result.summary
        assert summary.log_format == "clf"
        assert summary.lines_malformed == 1
        # HEAD (method) and 500 (status) filtered
        assert summary.records_filtered == 2
        assert summary.requests == 3
        assert summary.unique_servers == 1  # path-only URLs share one origin
        assert summary.out_of_order == 0

    def test_clf_records_carry_no_duration(self, clf_log):
        result = ingest_access_log(clf_log)
        assert np.all(result.request_durations_s == 0.0)
        with pytest.raises(ConfigurationError):
            # No record survives the analyzer's throughput filter.
            ProxyLogAnalyzer().analyze(result.to_transfer_records())


class TestEndToEnd:
    def test_ingested_workload_runs_through_compare_policies(self, squid_log):
        result = ingest_access_log(squid_log)
        workload = result.to_workload()
        config = SimulationConfig(
            cache_size_gb=0.5 * workload.catalog.total_size_gb, seed=0
        )
        comparison = compare_policies(
            workload,
            {name: PolicySpec(name) for name in ("PB", "IB")},
            config,
            num_runs=1,
        )
        assert set(comparison.policies()) == {"PB", "IB"}
        for metrics in comparison.metrics_by_policy.values():
            assert metrics.requests > 0

    def test_empty_after_filters_is_usable_but_not_simulatable(self, tmp_path):
        path = tmp_path / "posts.log"
        path.write_text(SQUID_LINES[5] + "\n")
        result = ingest_access_log(path)
        assert len(result.trace) == 0
        with pytest.raises(ConfigurationError):
            result.build_catalog()

    def test_nothing_parseable_raises(self, tmp_path):
        path = tmp_path / "junk.log"
        path.write_text("junk\nmore junk\n")
        with pytest.raises(TraceFormatError):
            ingest_access_log(path, log_format="squid")


class TestCli:
    def test_ingest_prints_summary_and_writes_npz(self, squid_log, tmp_path, capsys):
        out = tmp_path / "trace.npz"
        exit_code = cli_main(
            ["ingest", str(squid_log), "--out", str(out)]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "requests: 5" in captured
        assert out.exists()
        assert len(ColumnarTrace.from_npz(out)) == 5

    def test_ingest_compare_runs_policies(self, squid_log, capsys):
        exit_code = cli_main(
            ["ingest", str(squid_log), "--compare", "--policies", "PB,IB", "--runs", "1"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "compare_policies on ingested workload" in captured
        assert "PB" in captured and "IB" in captured

    def test_bundled_sample_logs_ingest(self, capsys):
        from pathlib import Path

        repo_root = Path(__file__).resolve().parent.parent
        for sample in ("sample_squid.log", "sample_clf.log"):
            exit_code = cli_main(["ingest", str(repo_root / "examples/data" / sample)])
            assert exit_code == 0
        assert "requests:" in capsys.readouterr().out
