"""Figure 6 — Effect of the Zipf-like popularity parameter alpha.

Regenerates the alpha x cache-size surfaces for PB and IB and asserts the
paper's observation: intensifying temporal locality (larger alpha) improves
both policies, and the relative ordering between them does not change.
"""

from benchmarks.conftest import BENCH_JOBS, BENCH_RUNS, BENCH_SCALE, report, run_once
from repro.analysis.experiments import experiment_fig6_zipf_sweep

ALPHAS = (0.6, 0.9, 1.2)
CACHE_FRACTIONS = (0.05, 0.17)


def test_fig6_zipf_parameter_sweep(benchmark):
    result = run_once(
        benchmark,
        experiment_fig6_zipf_sweep,
        alphas=ALPHAS,
        cache_fractions=CACHE_FRACTIONS,
        scale=BENCH_SCALE,
        num_runs=BENCH_RUNS,
        seed=0,
        n_jobs=BENCH_JOBS,
    )
    surfaces = result.data["sweeps_by_alpha"]
    extra = {}
    for alpha, sweep in surfaces.items():
        for policy in sweep.policies():
            extra[f"trr[{policy},alpha={alpha}]"] = sweep.series(
                policy, "traffic_reduction_ratio"
            )[-1]
            extra[f"delay[{policy},alpha={alpha}]"] = sweep.series(
                policy, "average_service_delay"
            )[-1]
    report(benchmark, result, extra=extra)

    # The locality effect is most visible at the modest cache size (the first
    # point of the sweep): the cache cannot hold everything, so concentrating
    # requests on fewer objects directly improves what it does hold.
    lowest, highest = min(ALPHAS), max(ALPHAS)
    point = 0
    for policy in ("PB", "IB"):
        # Larger alpha (stronger temporal locality) improves service delay for
        # both algorithms (the paper's "performance gains for both").
        assert (
            surfaces[highest].series(policy, "average_service_delay")[point]
            < surfaces[lowest].series(policy, "average_service_delay")[point]
        )
    # The whole-object policy's traffic reduction also benefits directly from
    # the stronger locality.  (PB's traffic reduction depends on whether the
    # hottest objects happen to sit behind slow paths, so at benchmark scale
    # we only require it not to collapse.)
    assert (
        surfaces[highest].series("IB", "traffic_reduction_ratio")[point]
        > surfaces[lowest].series("IB", "traffic_reduction_ratio")[point]
    )
    assert (
        surfaces[highest].series("PB", "traffic_reduction_ratio")[point]
        > surfaces[lowest].series("PB", "traffic_reduction_ratio")[point] * 0.5
    )
    # The relative ordering between IB and PB is unchanged across alpha:
    # IB reduces more traffic, PB achieves lower delay.
    for alpha in ALPHAS:
        sweep = surfaces[alpha]
        assert (
            sweep.series("IB", "traffic_reduction_ratio")[-1]
            >= sweep.series("PB", "traffic_reduction_ratio")[-1] * 0.98
        )
        assert (
            sweep.series("PB", "average_service_delay")[-1]
            <= sweep.series("IB", "average_service_delay")[-1] * 1.02
        )
