"""Multi-day trace stitching: ``ColumnarTrace.concat`` and ``ingest --append``.

The columnar format makes concatenation a pure array operation; these tests
pin the semantics (shared-clock vs re-based stitching, boundary validation)
and the property that splitting and re-concatenating any trace is lossless.
"""

import subprocess
import sys
from pathlib import Path

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.exceptions import ConfigurationError
from repro.trace.columnar import ColumnarTrace
from repro.workload.trace import Request, RequestTrace

REPO_ROOT = Path(__file__).resolve().parent.parent
SAMPLE_SQUID = REPO_ROOT / "examples" / "data" / "sample_squid.log"


def _trace(times, ids=None, clients=None):
    times = np.asarray(times, dtype=np.float64)
    if ids is None:
        ids = np.arange(times.size, dtype=np.int64)
    if clients is None:
        clients = np.zeros(times.size, dtype=np.int32)
    return ColumnarTrace(times, ids, clients)


class TestConcatSemantics:
    def test_shared_clock_concatenation(self):
        day1 = _trace([0.0, 10.0, 20.0], ids=[1, 2, 3])
        day2 = _trace([20.0, 30.0], ids=[4, 5])
        stitched = ColumnarTrace.concat([day1, day2])
        assert len(stitched) == 5
        assert stitched.times_array.tolist() == [0.0, 10.0, 20.0, 20.0, 30.0]
        assert stitched.object_ids_array.tolist() == [1, 2, 3, 4, 5]

    def test_overlapping_boundary_rejected_without_rebase(self):
        day1 = _trace([0.0, 100.0])
        day2 = _trace([50.0, 120.0])
        with pytest.raises(ConfigurationError):
            ColumnarTrace.concat([day1, day2])

    def test_rebase_shifts_segments_preserving_spacing(self):
        day1 = _trace([0.0, 100.0])
        day2 = _trace([0.0, 7.0, 9.0])  # per-day logs re-based to zero
        stitched = ColumnarTrace.concat([day1, day2], rebase=True, gap=50.0)
        assert stitched.times_array.tolist() == [0.0, 100.0, 150.0, 157.0, 159.0]

    def test_rebase_default_gap_is_contiguous(self):
        day1 = _trace([5.0, 10.0])
        day2 = _trace([3.0, 4.0])
        stitched = ColumnarTrace.concat([day1, day2], rebase=True)
        assert stitched.times_array.tolist() == [5.0, 10.0, 10.0, 11.0]

    def test_negative_gap_rejected(self):
        with pytest.raises(ConfigurationError):
            ColumnarTrace.concat([_trace([0.0])], rebase=True, gap=-1.0)

    def test_empty_inputs(self):
        assert len(ColumnarTrace.concat([])) == 0
        only = _trace([1.0, 2.0])
        stitched = ColumnarTrace.concat([_trace([]), only, _trace([])])
        assert stitched == only

    def test_accepts_object_traces(self):
        day1 = RequestTrace([Request(time=0.0, object_id=1)])
        day2 = _trace([5.0], ids=[2])
        stitched = ColumnarTrace.concat([day1, day2])
        assert stitched.object_ids_array.tolist() == [1, 2]

    def test_result_never_aliases_inputs(self):
        day1 = _trace([0.0, 1.0])
        stitched = ColumnarTrace.concat([day1])
        stitched.times_array[0] = 99.0
        assert day1.times_array[0] == 0.0


# ----------------------------------------------------------------------
# Property: split / concat round-trips are lossless.
# ----------------------------------------------------------------------
@given(
    deltas=st.lists(
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False), max_size=60
    ),
    ids=st.lists(st.integers(min_value=0, max_value=2**40), max_size=60),
    cut=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=100, deadline=None)
def test_split_then_concat_round_trips(deltas, ids, cut):
    count = min(len(deltas), len(ids))
    times = np.cumsum(np.asarray(deltas[:count], dtype=np.float64))
    trace = _trace(times, ids=ids[:count], clients=np.arange(count, dtype=np.int32))
    head, tail = trace.split(cut)
    stitched = ColumnarTrace.concat([head, tail])
    assert stitched == trace
    assert np.array_equal(stitched.client_ids_array, trace.client_ids_array)


@given(
    deltas=st.lists(
        st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
        min_size=1,
        max_size=40,
    ),
    pieces=st.integers(min_value=1, max_value=5),
    gap=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_rebased_concat_preserves_intra_segment_spacing(deltas, pieces, gap):
    times = np.cumsum(np.asarray(deltas, dtype=np.float64))
    trace = _trace(times)
    bounds = np.linspace(0, len(trace), pieces + 1).astype(int)
    segments = [trace[a:b] for a, b in zip(bounds, bounds[1:]) if b > a]
    stitched = ColumnarTrace.concat(segments, rebase=True, gap=gap)
    assert len(stitched) == len(trace)
    # Within each segment the request spacing is exactly preserved.
    offset = 0
    for segment in segments:
        part = stitched.times_array[offset : offset + len(segment)]
        assert np.allclose(np.diff(part), np.diff(segment.times_array))
        offset += len(segment)
    # And the stitched clock never runs backwards.
    if len(stitched) > 1:
        assert np.all(np.diff(stitched.times_array) >= 0)


def test_npz_round_trip_of_concatenated_trace(tmp_path):
    day1 = _trace([0.0, 1.0, 5.0], ids=[3, 1, 4])
    day2 = _trace([2.0, 8.0], ids=[1, 5])
    stitched = ColumnarTrace.concat([day1, day2], rebase=True)
    path = tmp_path / "stitched.npz"
    stitched.to_npz(path)
    assert ColumnarTrace.from_npz(path) == stitched


# ----------------------------------------------------------------------
# CLI: repro ingest --append over rolling segments.
# ----------------------------------------------------------------------
def test_cli_ingest_append_stitches_segments(tmp_path):
    out = tmp_path / "rolling.npz"
    env_cmd = [sys.executable, "-m", "repro", "ingest", str(SAMPLE_SQUID), "--out", str(out)]

    def run(extra=()):
        return subprocess.run(
            env_cmd + list(extra),
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )

    first = run()
    assert first.returncode == 0, first.stderr
    day1 = ColumnarTrace.from_npz(out)
    sidecar = out.with_suffix(".urls.json")
    assert sidecar.exists()  # the URL -> object id map rides along

    second = run(["--append"])
    assert second.returncode == 0, second.stderr
    assert "appended" in second.stdout
    assert "0 new" in second.stdout  # same log: every URL already mapped
    stitched = ColumnarTrace.from_npz(out)
    assert len(stitched) == 2 * len(day1)
    # The archived prefix is untouched; the new segment follows in time and
    # was remapped through the sidecar, so the same URLs got the same ids.
    assert stitched[: len(day1)] == day1
    assert np.all(np.diff(stitched.times_array) >= 0)
    assert set(stitched.object_ids_array[len(day1):].tolist()) == set(
        day1.object_ids_array.tolist()
    )

    # --append without --out is an error.
    bad = subprocess.run(
        [sys.executable, "-m", "repro", "ingest", str(SAMPLE_SQUID), "--append"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert bad.returncode == 2


# ----------------------------------------------------------------------
# CLI: --append when segments disagree on client-id spaces.
# ----------------------------------------------------------------------
def _squid_line(time, client, url):
    return (f"{time:.3f}    500 {client} TCP_MISS/200 2048 GET {url} "
            "- DIRECT/media.bu.edu video/x-pn-realvideo")


def _ingest(tmp_path, log_path, extra=()):
    command = [
        sys.executable, "-m", "repro", "ingest", str(log_path),
        "--out", str(tmp_path / "rolling.npz"),
    ] + list(extra)
    return subprocess.run(
        command,
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )


def test_cli_append_remaps_disagreeing_client_id_spaces(tmp_path):
    """First-seen client ids differ per segment; the sidecar aligns them.

    Day 1 sees carol then alice; day 2 sees alice, then a brand-new bob,
    then carol.  Without the client map, alice would collide with carol's
    archived id 0.  With it, each address keeps one id across segments and
    new addresses extend the space.
    """
    url = "http://media.bu.edu/media/clip00.rm"
    day1 = tmp_path / "day1.log"
    day1.write_text("\n".join([
        _squid_line(100.0, "10.0.0.3", url),   # carol  -> day-1 id 0
        _squid_line(110.0, "10.0.0.1", url),   # alice  -> day-1 id 1
    ]) + "\n")
    day2 = tmp_path / "day2.log"
    day2.write_text("\n".join([
        _squid_line(200.0, "10.0.0.1", url),   # alice  -> day-2 id 0 (!)
        _squid_line(210.0, "10.0.0.9", url),   # bob    -> day-2 id 1 (new)
        _squid_line(220.0, "10.0.0.3", url),   # carol  -> day-2 id 2 (!)
    ]) + "\n")

    first = _ingest(tmp_path, day1)
    assert first.returncode == 0, first.stderr
    second = _ingest(tmp_path, day2, ["--append"])
    assert second.returncode == 0, second.stderr
    assert "client map: 2 archived clients, 1 new" in second.stdout

    stitched = ColumnarTrace.from_npz(tmp_path / "rolling.npz")
    # carol=0 and alice=1 from day 1; day 2's rows remapped to
    # alice=1, bob=2 (fresh), carol=0 — not day 2's first-seen 0/1/2.
    assert stitched.client_ids_array.tolist() == [0, 1, 1, 2, 0]

    import json

    sidecar = json.loads((tmp_path / "rolling.urls.json").read_text())
    assert sidecar["clients"] == {"10.0.0.3": 0, "10.0.0.1": 1, "10.0.0.9": 2}
    assert set(sidecar["urls"]) == {url}


def test_cli_append_survives_legacy_url_only_sidecar(tmp_path):
    """A pre-client-map sidecar (flat url dict) appends with a warning."""
    import json

    url = "http://media.bu.edu/media/clip00.rm"
    day1 = tmp_path / "day1.log"
    day1.write_text(_squid_line(100.0, "10.0.0.3", url) + "\n")
    first = _ingest(tmp_path, day1)
    assert first.returncode == 0, first.stderr

    sidecar_path = tmp_path / "rolling.urls.json"
    stored = json.loads(sidecar_path.read_text())
    sidecar_path.write_text(json.dumps(stored["urls"]))  # strip to legacy form

    day2 = tmp_path / "day2.log"
    day2.write_text(_squid_line(200.0, "10.0.0.1", url) + "\n")
    second = _ingest(tmp_path, day2, ["--append"])
    assert second.returncode == 0, second.stderr
    assert "no client map" in second.stderr  # warned, did not crash

    stitched = ColumnarTrace.from_npz(tmp_path / "rolling.npz")
    # URLs still remap through the legacy map; the new segment's client is
    # renumbered past the archive's observed ids instead of colliding.
    assert stitched.object_ids_array.tolist() == [0, 0]
    assert stitched.client_ids_array.tolist() == [0, 1]
    upgraded = json.loads(sidecar_path.read_text())
    assert "clients" in upgraded and upgraded["clients"]["10.0.0.1"] == 1
