"""Simulation configuration.

A :class:`SimulationConfig` bundles everything about *how* a trace is
replayed that is independent of the workload itself: the cache capacity, the
bandwidth model and its variability, how the cache learns bandwidth
(oracle measurements versus passive estimation, optionally refreshed by
periodic re-measurement between requests), and the warm-up protocol.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.network.distributions import BandwidthDistribution, NLANRBandwidthDistribution
from repro.network.topology import ClientCloud
from repro.network.variability import BandwidthVariabilityModel, ConstantVariability
from repro.sim.events import RemeasurementConfig
from repro.units import gb_to_kb


class BandwidthKnowledge(enum.Enum):
    """How the cache learns the bandwidth of each cache-to-server path."""

    #: The cache knows each path's long-term average bandwidth exactly
    #: (the paper's default assumption: the cache "measures" bandwidth).
    ORACLE = "oracle"
    #: The cache estimates bandwidth passively from the throughput of
    #: completed transfers (Section 2.7's passive measurement).
    PASSIVE = "passive"


@dataclass(frozen=True)
class ClientCloudConfig:
    """How the per-client last-mile hop is modeled in a simulation.

    The trace's ``client_id`` column is hashed into ``groups`` client
    groups (``client_id % groups``), and each group gets one last-mile
    :class:`~repro.network.path.NetworkPath`.  Exactly one of two modes
    provisions the group base bandwidths:

    * ``bandwidth`` — every group gets this base bandwidth (KB/s).  ``inf``
      models the hop explicitly while keeping it non-binding, which is how
      the paper's abundant-last-mile assumption is reproduced bit-for-bit
      through the composition code.
    * ``distribution`` — one draw per group from a
      :class:`~repro.network.distributions.BandwidthDistribution`
      (heterogeneous clouds, e.g. the NLANR model).

    With neither given, ``bandwidth=inf`` is assumed.  ``variability``
    modulates every group's per-request draw (shared model instance, so
    batched draws stay available); ``seed`` adds entropy to the cloud's
    dedicated random stream — last-mile construction and per-request draws
    never touch the request stream's generator (see ``docs/clients.md``).
    """

    groups: int = 1
    bandwidth: Optional[float] = None
    distribution: Optional[BandwidthDistribution] = None
    variability: Optional[BandwidthVariabilityModel] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.groups <= 0:
            raise ConfigurationError(f"groups must be positive, got {self.groups}")
        if self.bandwidth is not None and self.distribution is not None:
            raise ConfigurationError(
                "give either a homogeneous bandwidth or a distribution, not both"
            )
        if self.bandwidth is not None and self.bandwidth <= 0:
            raise ConfigurationError(
                f"client-cloud bandwidth must be positive, got {self.bandwidth}"
            )

    def build_cloud(self, rng: "np.random.Generator") -> ClientCloud:
        """Materialise the configured :class:`ClientCloud`.

        ``rng`` must be the cloud's *dedicated* generator (the simulator
        seeds it from ``(stream tag, simulation seed, config seed)``), so
        attaching a cloud never perturbs origin-path construction or the
        request stream's bandwidth draws.
        """
        if self.distribution is not None:
            return ClientCloud.from_distribution(
                self.groups, self.distribution, rng, variability=self.variability
            )
        bandwidth = self.bandwidth if self.bandwidth is not None else float("inf")
        return ClientCloud.homogeneous(
            bandwidth, variability=self.variability, groups=self.groups
        )


@dataclass
class SimulationConfig:
    """Parameters of one trace-driven simulation run.

    Attributes
    ----------
    cache_size_gb:
        Proxy cache capacity in GB (the paper varies this from 4 to 128 GB,
        i.e. about 0.5% to 16.9% of the 790 GB unique object size).
    bandwidth_distribution:
        Distribution of per-path base bandwidth; defaults to the NLANR model
        of Figure 2.
    variability:
        Per-request bandwidth variability model; defaults to constant
        bandwidth (the Figure 5 setting).
    bandwidth_knowledge:
        Whether policies see oracle base bandwidths or passive estimates.
    warmup_fraction:
        Fraction of the trace used to warm the cache before metrics are
        collected (the paper uses the first half).
    min_path_bandwidth:
        Floor (KB/s) applied to sampled base bandwidths so that a handful of
        near-zero draws cannot dominate the delay average; the paper's
        bandwidth samples come from completed transfers and therefore have
        an implicit floor as well.
    passive_smoothing:
        EWMA weight of the passive estimator (only used with
        ``BandwidthKnowledge.PASSIVE``).
    remeasurement:
        Optional :class:`~repro.sim.events.RemeasurementConfig` enabling
        periodic bandwidth re-measurement between requests: each configured
        path is sampled on its cadence and the samples feed the passive
        estimator (under ``BandwidthKnowledge.PASSIVE``) and the run's
        :class:`~repro.network.measurement.BandwidthMeasurementLog`.
        Scheduling re-measurement routes the replay through an
        event-capable path (the columnar event loop for dense columnar
        traces, the classic event calendar otherwise); see
        ``docs/events.md``.
    client_clouds:
        Optional :class:`ClientCloudConfig` modeling per-client last-mile
        bandwidth: each client group gets its own cache-to-client path and
        every request experiences the bottleneck of its origin hop and its
        client's last-mile hop.  ``None`` (default) keeps the paper's
        abundant-last-mile assumption; see ``docs/clients.md``.
    reactive_threshold:
        Optional fractional threshold enabling the reactive policy hook:
        when a periodic re-measurement moves a path's passive estimate by
        more than this fraction relative to the estimate the policy was
        last re-keyed at, the active policy's heap entries for objects on
        that path are re-keyed immediately instead of waiting for the next
        request.  Requires ``remeasurement`` and
        ``BandwidthKnowledge.PASSIVE``; see ``docs/events.md``.
    seed:
        Seed for the simulation's random number generator (path bandwidth
        assignment and per-request variability draws).
    verify_store:
        When True the simulator asserts cache-store consistency after every
        request; slows the run, intended for tests.
    """

    cache_size_gb: float = 16.0
    bandwidth_distribution: BandwidthDistribution = field(
        default_factory=NLANRBandwidthDistribution
    )
    variability: BandwidthVariabilityModel = field(default_factory=ConstantVariability)
    bandwidth_knowledge: BandwidthKnowledge = BandwidthKnowledge.ORACLE
    warmup_fraction: float = 0.5
    min_path_bandwidth: float = 4.0
    passive_smoothing: float = 0.25
    remeasurement: Optional[RemeasurementConfig] = None
    client_clouds: Optional[ClientCloudConfig] = None
    reactive_threshold: Optional[float] = None
    seed: int = 0
    verify_store: bool = False

    def __post_init__(self) -> None:
        if self.cache_size_gb < 0:
            raise ConfigurationError(
                f"cache_size_gb must be non-negative, got {self.cache_size_gb}"
            )
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigurationError(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction}"
            )
        if self.min_path_bandwidth < 0:
            raise ConfigurationError(
                f"min_path_bandwidth must be non-negative, got {self.min_path_bandwidth}"
            )
        if not 0.0 < self.passive_smoothing <= 1.0:
            raise ConfigurationError(
                f"passive_smoothing must be in (0, 1], got {self.passive_smoothing}"
            )
        if self.reactive_threshold is not None:
            if self.reactive_threshold <= 0:
                raise ConfigurationError(
                    f"reactive_threshold must be positive, got {self.reactive_threshold}"
                )
            if self.remeasurement is None:
                raise ConfigurationError(
                    "reactive_threshold requires remeasurement: without periodic "
                    "re-measurement there is no out-of-band estimate shift to react to"
                )
            if self.bandwidth_knowledge is not BandwidthKnowledge.PASSIVE:
                raise ConfigurationError(
                    "reactive_threshold requires BandwidthKnowledge.PASSIVE: under "
                    "oracle knowledge the believed bandwidth never shifts"
                )

    @property
    def cache_size_kb(self) -> float:
        """Cache capacity in KB."""
        return gb_to_kb(self.cache_size_gb)

    def with_cache_size(self, cache_size_gb: float) -> "SimulationConfig":
        """Copy of this config with a different cache capacity."""
        return replace(self, cache_size_gb=cache_size_gb)

    def with_seed(self, seed: int) -> "SimulationConfig":
        """Copy of this config with a different random seed."""
        return replace(self, seed=seed)

    def with_variability(
        self, variability: Optional[BandwidthVariabilityModel]
    ) -> "SimulationConfig":
        """Copy of this config with a different variability model."""
        return replace(self, variability=variability or ConstantVariability())

    def with_remeasurement(
        self, remeasurement: Optional[RemeasurementConfig]
    ) -> "SimulationConfig":
        """Copy of this config with a different re-measurement cadence.

        Pass ``None`` to disable periodic re-measurement (the default).
        """
        return replace(self, remeasurement=remeasurement)

    def with_client_clouds(
        self, client_clouds: Optional[ClientCloudConfig]
    ) -> "SimulationConfig":
        """Copy of this config with a different client-cloud model.

        Pass ``None`` to return to the paper's unmodeled abundant last
        mile (the default).
        """
        return replace(self, client_clouds=client_clouds)

    def cache_fraction_of(self, total_unique_kb: float) -> float:
        """Cache size as a fraction of the total unique object size."""
        if total_unique_kb <= 0:
            return 0.0
        return self.cache_size_kb / total_unique_kb
