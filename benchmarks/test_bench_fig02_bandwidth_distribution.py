"""Figure 2 — Internet bandwidth distribution observed in NLANR cache logs.

Regenerates the bandwidth histogram / CDF from the synthetic proxy-log
substrate and checks the two fractions the paper quotes (37% of transfers
below 50 KB/s, 56% below 100 KB/s).
"""

from benchmarks.conftest import report, run_once
from repro.analysis.experiments import experiment_fig2_bandwidth_distribution


def test_fig2_bandwidth_distribution(benchmark):
    result = run_once(
        benchmark, experiment_fig2_bandwidth_distribution, num_records=20_000, seed=0
    )
    below_50 = result.data["fraction_below_50"]
    below_100 = result.data["fraction_below_100"]
    report(
        benchmark,
        result,
        extra={"fraction_below_50": below_50, "fraction_below_100": below_100},
    )
    # Paper: 37% below 50 KB/s, 56% below 100 KB/s.
    assert 0.25 < below_50 < 0.50
    assert 0.45 < below_100 < 0.70
    assert below_100 > below_50
