"""GreedyDual-Size family of cost-aware baselines.

The related-work section of the paper credits two lines of cost-aware Web
caching that the network-aware policies generalise to streaming media:

* **GreedyDual-Size** [Cao & Irani, USITS 97] — each cached object carries a
  credit ``H = L + cost / size`` where ``L`` is an inflation value set to
  the credit of the most recently evicted object; the object with the
  lowest credit is evicted first.
* **Popularity-aware GreedyDual-Size** (GDSP) [Jin & Bestavros, ICDCS 00] —
  the same structure with the credit scaled by the object's observed
  request frequency, ``H = L + F · cost / size``.

Both are implemented here as whole-object policies on top of the shared
replacement engine, with a pluggable *cost model*:

* ``"uniform"`` — cost 1 per object (maximises object hit ratio),
* ``"size"`` — cost equal to the object size (maximises byte hit ratio,
  i.e. traffic reduction),
* ``"delay"`` — cost equal to the startup delay the cache saves for the
  object, ``[T·r − T·b]+ / b``, which injects the same network awareness
  the paper's PB/IB policies have and makes for an interesting ablation.
"""

from __future__ import annotations

from typing import Dict

from repro.core.policies.base import CachePolicy, PolicyContext
from repro.exceptions import ConfigurationError
from repro.units import positive_part
from repro.workload.catalog import MediaObject

#: The cost models GreedyDual-Size policies understand.
COST_MODELS = ("uniform", "size", "delay")


def _object_cost(obj: MediaObject, ctx: PolicyContext, cost_model: str) -> float:
    """Fetch cost of an object under the given cost model."""
    if cost_model == "uniform":
        return 1.0
    if cost_model == "size":
        return obj.size
    # "delay": the startup delay a miss would incur at the believed bandwidth.
    bandwidth = max(ctx.bandwidth, 1e-9)
    return positive_part(obj.size - obj.duration * bandwidth) / bandwidth


class GreedyDualSizePolicy(CachePolicy):
    """GreedyDual-Size: credit ``L + cost / size``, whole objects only.

    Parameters
    ----------
    cost_model:
        One of :data:`COST_MODELS`; the classic GreedyDual-Size uses
        ``"uniform"`` (then the credit is ``L + 1/size``, favouring small
        objects) or ``"size"`` (credit ``L + 1``, which degenerates to
        FIFO-with-inflation).

    Only the ``"delay"`` cost model reads ``ctx.bandwidth``, so only that
    variant is ``bandwidth_keyed``: under passive bandwidth knowledge its
    heap keys go stale between requests exactly like PB/IB's, and the
    reactive hook (``docs/events.md``) may re-key them.  The re-key is
    **inflation-preserving** (:meth:`on_bandwidth_shift`): a GreedyDual key
    is ``L_at_key_time + credit``, and a correct re-key must recompute only
    the credit under the new bandwidth while adding back the inflation the
    entry was keyed at — recomputing the whole utility with the *current*
    ``L`` would silently age every re-keyed entry and reorder evictions.
    ``"uniform"`` and ``"size"`` keys never depend on bandwidth and are
    never re-keyed.
    """

    allows_partial = False

    def __init__(self, cost_model: str = "uniform", **kwargs):
        if cost_model not in COST_MODELS:
            raise ConfigurationError(
                f"unknown cost model {cost_model!r}; expected one of {COST_MODELS}"
            )
        super().__init__(**kwargs)
        self.cost_model = cost_model
        self.bandwidth_keyed = cost_model == "delay"
        self.inflation = 0.0
        #: Inflation value each live entry was keyed at; what
        #: :meth:`on_bandwidth_shift` adds back when recomputing credits.
        self._keyed_inflation: Dict[int, float] = {}
        self.name = f"GDS({cost_model})"

    def credit(self, obj: MediaObject, ctx: PolicyContext) -> float:
        """The GreedyDual credit of the object, before inflation is added."""
        return _object_cost(obj, ctx, self.cost_model) / obj.size

    def utility(self, obj: MediaObject, ctx: PolicyContext) -> float:
        return self.inflation + self.credit(obj, ctx)

    def target_cache_bytes(self, obj: MediaObject, ctx: PolicyContext) -> float:
        return obj.size

    def on_evict(self, object_id: int, utility: float) -> None:
        # Classic GreedyDual aging: the inflation rises to the evicted
        # object's credit, so long-resident objects gradually lose ground.
        self.inflation = max(self.inflation, utility)

    def _set_utility(self, object_id: int, utility: float) -> None:
        super()._set_utility(object_id, utility)
        self._keyed_inflation[object_id] = self.inflation

    def _drop_utility(self, object_id: int) -> None:
        super()._drop_utility(object_id)
        self._keyed_inflation.pop(object_id, None)

    def on_bandwidth_shift(self, server_id: int, bandwidth: float, now: float) -> int:
        """Inflation-preserving re-key of one server's tracked objects.

        Each affected entry's credit is recomputed under the new believed
        ``bandwidth`` (and its current frequency estimate, for GDSP) and
        the inflation the entry was keyed at is added back unchanged —
        the global inflation value and the relative aging of entries are
        untouched, so the re-key moves keys only by what the bandwidth
        shift itself justifies.
        """
        if not self.bandwidth_keyed or self._catalog is None:
            return 0
        catalog_get = self._catalog.get
        frequency = self.frequencies.frequency
        utilities = self._utilities
        keyed_inflation = self._keyed_inflation
        rekeyed = 0
        for object_id in self._objects_on_server(server_id):
            old_utility = utilities.get(object_id)
            if old_utility is None:
                continue
            entry_inflation = keyed_inflation.get(object_id, self.inflation)
            ctx = PolicyContext(
                now=now,
                bandwidth=float(bandwidth),
                frequency=frequency(object_id, now),
            )
            utility = entry_inflation + self.credit(catalog_get(object_id), ctx)
            if utility != old_utility:
                self._set_utility(object_id, utility)
                # _set_utility stamps the current global inflation; restore
                # the entry's own inflation so the re-key preserves it.
                keyed_inflation[object_id] = entry_inflation
                rekeyed += 1
        return rekeyed

    def reset(self) -> None:
        super().reset()
        self.inflation = 0.0
        self._keyed_inflation.clear()


class PopularityAwareGreedyDualSizePolicy(GreedyDualSizePolicy):
    """GDSP: GreedyDual-Size with the credit scaled by request frequency."""

    def __init__(self, cost_model: str = "uniform", **kwargs):
        super().__init__(cost_model=cost_model, **kwargs)
        self.name = f"GDSP({cost_model})"

    def credit(self, obj: MediaObject, ctx: PolicyContext) -> float:
        return ctx.frequency * _object_cost(obj, ctx, self.cost_model) / obj.size
