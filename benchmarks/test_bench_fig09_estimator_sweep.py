"""Figure 9 — Effect of partial caching based on conservative bandwidth estimation.

Regenerates the estimator-``e`` spectrum between IB-like behaviour (small e)
and pure PB (e = 1) under bandwidth variability.  The paper's observations:
smaller ``e`` always reduces more backbone traffic, while a moderate
(non-zero) ``e`` yields slightly lower average service delay than either
extreme.

The benchmark also runs the re-measurement ablation (``docs/events.md``):
the same spectrum under passive bandwidth knowledge, with and without
periodic re-measurement refreshing the estimator between requests.
"""

from benchmarks.conftest import BENCH_JOBS, BENCH_RUNS, BENCH_SCALE, report, run_once
from repro.analysis.experiments import experiment_fig9_estimator_sweep

ESTIMATOR_VALUES = (0.2, 0.5, 1.0)
CACHE_FRACTIONS = (0.05, 0.17)

#: Re-measurement cadence (seconds per path) for the ablation surfaces.
REMEASURE_INTERVAL = 600.0


def test_fig9_estimator_sweep(benchmark):
    result = run_once(
        benchmark,
        experiment_fig9_estimator_sweep,
        estimator_values=ESTIMATOR_VALUES,
        cache_fractions=CACHE_FRACTIONS,
        scale=BENCH_SCALE,
        num_runs=BENCH_RUNS,
        seed=0,
        n_jobs=BENCH_JOBS,
        remeasurement_interval=REMEASURE_INTERVAL,
    )
    surfaces = result.data["sweeps_by_e"]
    extra = {}
    for e_value, sweep in surfaces.items():
        extra[f"trr[e={e_value}]"] = sweep.series("PB(e)", "traffic_reduction_ratio")[-1]
        extra[f"delay[e={e_value}]"] = sweep.series("PB(e)", "average_service_delay")[-1]

    # The re-measurement ablation: same e spectrum, passive knowledge, with
    # and without out-of-band re-measurement.  Every surface must cover the
    # same grid; the ablation's delta is reported, not asserted (its sign
    # depends on the variability model and cadence).
    passive = result.data["sweeps_by_e_passive"]
    remeasured = result.data["sweeps_by_e_remeasured"]
    assert set(passive) == set(remeasured) == set(surfaces)
    assert result.data["remeasurement_interval"] == REMEASURE_INTERVAL
    for e_value in (min(ESTIMATOR_VALUES), max(ESTIMATOR_VALUES)):
        extra[f"delay[e={e_value},passive]"] = passive[e_value].series(
            "PB(e)", "average_service_delay"
        )[-1]
        extra[f"delay[e={e_value},remeasured]"] = remeasured[e_value].series(
            "PB(e)", "average_service_delay"
        )[-1]
    report(benchmark, result, extra=extra)

    smallest, largest = min(ESTIMATOR_VALUES), max(ESTIMATOR_VALUES)
    # Figure 9(a): the more conservative the estimate (smaller e), the higher
    # the traffic reduction, at every cache size.
    for index in range(len(CACHE_FRACTIONS)):
        assert (
            surfaces[smallest].series("PB(e)", "traffic_reduction_ratio")[index]
            >= surfaces[largest].series("PB(e)", "traffic_reduction_ratio")[index] * 0.98
        )
    # Figure 9(b): the best delay over the spectrum is achieved at a non-trivial
    # e (conservative estimation does not hurt, and often helps, under
    # variability) — the minimum across e values is no worse than pure PB.
    best_delay = min(
        surfaces[e].series("PB(e)", "average_service_delay")[-1] for e in ESTIMATOR_VALUES
    )
    pure_pb_delay = surfaces[largest].series("PB(e)", "average_service_delay")[-1]
    assert best_delay <= pure_pb_delay * 1.001
