"""Tests for stream encodings (CBR, VBR, layered)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.streaming.media import (
    CBRStream,
    LayeredEncoding,
    VBRStream,
    synthetic_vbr_stream,
)


class TestCBRStream:
    def test_size_and_prefix(self):
        stream = CBRStream(duration=100.0, rate=48.0)
        assert stream.size == pytest.approx(4800.0)
        assert stream.prefix_bytes(10.0) == pytest.approx(480.0)
        assert stream.prefix_bytes(1_000.0) == pytest.approx(4800.0)

    def test_cumulative_consumption(self):
        stream = CBRStream(duration=10.0, rate=5.0)
        consumption = stream.cumulative_consumption([0.0, 5.0, 10.0, 20.0])
        assert consumption.tolist() == pytest.approx([0.0, 25.0, 50.0, 50.0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CBRStream(duration=0.0, rate=48.0)
        with pytest.raises(ConfigurationError):
            CBRStream(duration=10.0, rate=0.0)
        with pytest.raises(ConfigurationError):
            CBRStream(duration=10.0, rate=48.0).prefix_bytes(-1.0)


class TestVBRStream:
    def test_basic_properties(self):
        stream = VBRStream([1.0, 2.0, 3.0, 2.0], frame_rate=2.0)
        assert stream.num_frames == 4
        assert stream.duration == pytest.approx(2.0)
        assert stream.size == pytest.approx(8.0)
        assert stream.mean_rate == pytest.approx(4.0)
        assert stream.peak_rate == pytest.approx(6.0)

    def test_cumulative_schedule_monotone(self):
        stream = VBRStream([1.0, 0.0, 2.0])
        schedule = stream.cumulative_schedule()
        assert schedule.tolist() == pytest.approx([1.0, 1.0, 3.0])

    def test_to_cbr_preserves_size(self):
        stream = VBRStream([1.0, 3.0, 2.0], frame_rate=1.0)
        cbr = stream.to_cbr()
        assert cbr.size == pytest.approx(stream.size)
        assert cbr.duration == pytest.approx(stream.duration)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            VBRStream([])
        with pytest.raises(ConfigurationError):
            VBRStream([1.0, -1.0])
        with pytest.raises(ConfigurationError):
            VBRStream([1.0], frame_rate=0.0)


class TestLayeredEncoding:
    def test_supported_layers_and_quality(self):
        encoding = LayeredEncoding(full_rate=48.0, layers=4)
        assert encoding.layer_rate == pytest.approx(12.0)
        assert encoding.supported_layers(48.0) == 4
        assert encoding.supported_layers(36.0) == 3
        assert encoding.supported_layers(11.0) == 0
        assert encoding.quality(36.0) == pytest.approx(0.75)
        assert encoding.quality(0.0) == 0.0

    def test_rate_for_quality_round_trip(self):
        encoding = LayeredEncoding(full_rate=48.0, layers=4)
        assert encoding.rate_for_quality(0.75) == pytest.approx(36.0)
        assert encoding.quality(encoding.rate_for_quality(0.5)) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LayeredEncoding(full_rate=0.0)
        with pytest.raises(ConfigurationError):
            LayeredEncoding(full_rate=48.0, layers=0)
        with pytest.raises(ConfigurationError):
            LayeredEncoding(full_rate=48.0).rate_for_quality(1.5)


class TestSyntheticVBRStream:
    def test_mean_rate_matches_request(self):
        stream = synthetic_vbr_stream(duration=60.0, mean_rate=48.0, seed=1)
        assert stream.mean_rate == pytest.approx(48.0, rel=1e-6)
        assert stream.num_frames == 60 * 24

    def test_burstiness_increases_variability(self):
        smooth = synthetic_vbr_stream(duration=30.0, mean_rate=48.0, burstiness=0.0, seed=2)
        bursty = synthetic_vbr_stream(duration=30.0, mean_rate=48.0, burstiness=0.8, seed=2)
        cov_smooth = smooth.frame_sizes.std() / smooth.frame_sizes.mean()
        cov_bursty = bursty.frame_sizes.std() / bursty.frame_sizes.mean()
        assert cov_bursty > cov_smooth

    def test_frame_sizes_nonnegative(self):
        stream = synthetic_vbr_stream(duration=20.0, mean_rate=48.0, burstiness=0.9, seed=3)
        assert np.all(stream.frame_sizes >= 0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            synthetic_vbr_stream(duration=0.0, mean_rate=48.0)
        with pytest.raises(ConfigurationError):
            synthetic_vbr_stream(duration=10.0, mean_rate=48.0, burstiness=1.0)
