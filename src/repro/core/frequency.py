"""Online request-frequency estimation.

The paper's replacement algorithms approximate the unknown request arrival
rate ``lambda_i`` of each object by "recording the number (or frequency) of
requests to each object", denoted ``F_i`` (Section 2.4).  The tracker below
supports both the plain cumulative count the paper describes and an optional
exponential decay so long-running deployments can age out stale popularity
(an extension the paper lists under future work on long-term popularity).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.exceptions import ConfigurationError


class FrequencyTracker:
    """Track per-object request frequencies ``F_i``.

    Parameters
    ----------
    decay_half_life:
        When ``None`` (the default, and the paper's behaviour) frequencies
        are plain cumulative counts.  When set to a positive number of
        seconds, each count decays exponentially with that half-life, so
        ``F_i`` estimates a recent request *rate* rather than an all-time
        count.
    """

    def __init__(self, decay_half_life: float = None):
        if decay_half_life is not None and decay_half_life <= 0:
            raise ConfigurationError(
                f"decay_half_life must be positive, got {decay_half_life}"
            )
        self.decay_half_life = decay_half_life
        self._counts: Dict[int, float] = {}
        self._last_update: Dict[int, float] = {}
        self._total_requests = 0

    @property
    def total_requests(self) -> int:
        """Number of requests recorded so far."""
        return self._total_requests

    def _decayed(self, object_id: int, now: float) -> float:
        count = self._counts.get(object_id, 0.0)
        if count == 0.0 or self.decay_half_life is None:
            return count
        elapsed = max(now - self._last_update.get(object_id, now), 0.0)
        if elapsed == 0.0:
            return count
        return count * math.pow(0.5, elapsed / self.decay_half_life)

    def record(self, object_id: int, now: float = 0.0) -> float:
        """Record one request and return the updated frequency."""
        self._total_requests += 1
        if self.decay_half_life is None:
            # Hot path: plain cumulative counts need no decay bookkeeping.
            updated = self._counts.get(object_id, 0.0) + 1.0
            self._counts[object_id] = updated
            return updated
        updated = self._decayed(object_id, now) + 1.0
        self._counts[object_id] = updated
        self._last_update[object_id] = now
        return updated

    def frequency(self, object_id: int, now: float = 0.0) -> float:
        """Current frequency estimate ``F_i`` (0 for never-seen objects)."""
        return self._decayed(object_id, now)

    def known_objects(self) -> List[int]:
        """Objects with at least one recorded request."""
        return list(self._counts.keys())

    def top(self, count: int = 10, now: float = 0.0) -> List[Tuple[int, float]]:
        """The ``count`` most frequently requested objects."""
        ranked = sorted(
            ((oid, self._decayed(oid, now)) for oid in self._counts),
            key=lambda item: item[1],
            reverse=True,
        )
        return ranked[:count]

    def reset(self) -> None:
        """Forget all recorded requests."""
        self._counts.clear()
        self._last_update.clear()
        self._total_requests = 0
