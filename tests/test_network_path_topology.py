"""Tests for network paths, the path registry, and the delivery topology."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, UnknownObjectError
from repro.network.distributions import ConstantBandwidthDistribution, NLANRBandwidthDistribution
from repro.network.path import NetworkPath, PathRegistry
from repro.network.topology import ClientCloud, DeliveryTopology, OriginServer, ProxyNode
from repro.network.variability import LognormalRatioVariability


class TestNetworkPath:
    def test_observed_bandwidth_constant_without_variability(self, rng):
        path = NetworkPath(server_id=1, base_bandwidth=80.0)
        assert path.observed_bandwidth(rng) == pytest.approx(80.0)

    def test_observed_bandwidth_varies_with_model(self, rng):
        path = NetworkPath(
            server_id=1, base_bandwidth=80.0, variability=LognormalRatioVariability(0.5)
        )
        samples = [path.observed_bandwidth(rng) for _ in range(2_000)]
        assert np.std(samples) > 0
        assert np.mean(samples) == pytest.approx(80.0, rel=0.1)

    def test_observed_bandwidth_floor(self, rng):
        path = NetworkPath(
            server_id=1, base_bandwidth=2.0, variability=LognormalRatioVariability(2.0)
        )
        assert min(path.observed_bandwidth(rng) for _ in range(500)) >= 1.0

    def test_estimated_bandwidth_applies_estimator(self):
        path = NetworkPath(server_id=1, base_bandwidth=100.0)
        assert path.estimated_bandwidth() == 100.0
        assert path.estimated_bandwidth(0.5) == 50.0

    def test_estimated_bandwidth_validates_estimator(self):
        path = NetworkPath(server_id=1, base_bandwidth=100.0)
        with pytest.raises(ConfigurationError):
            path.estimated_bandwidth(0.0)
        with pytest.raises(ConfigurationError):
            path.estimated_bandwidth(1.5)

    def test_rejects_nonpositive_base(self):
        with pytest.raises(ConfigurationError):
            NetworkPath(server_id=1, base_bandwidth=0.0)


class TestPathRegistry:
    def test_add_get_and_contains(self):
        registry = PathRegistry([NetworkPath(0, 50.0), NetworkPath(1, 100.0)])
        assert len(registry) == 2
        assert 0 in registry and 2 not in registry
        assert registry.get(1).base_bandwidth == 100.0

    def test_duplicate_server_rejected(self):
        registry = PathRegistry([NetworkPath(0, 50.0)])
        with pytest.raises(ConfigurationError):
            registry.add(NetworkPath(0, 60.0))

    def test_get_unknown_raises(self):
        with pytest.raises(UnknownObjectError):
            PathRegistry().get(7)

    def test_mean_base_bandwidth(self):
        registry = PathRegistry([NetworkPath(0, 50.0), NetworkPath(1, 150.0)])
        assert registry.mean_base_bandwidth() == pytest.approx(100.0)
        assert PathRegistry().mean_base_bandwidth() == 0.0

    def test_from_distribution_creates_one_path_per_server(self, rng):
        registry = PathRegistry.from_distribution(
            range(20), NLANRBandwidthDistribution(), rng
        )
        assert len(registry) == 20
        assert registry.server_ids() == list(range(20))
        assert all(path.base_bandwidth >= 1.0 for path in registry)

    def test_from_distribution_requires_servers(self, rng):
        with pytest.raises(ConfigurationError):
            PathRegistry.from_distribution([], NLANRBandwidthDistribution(), rng)


class TestTopologyComponents:
    def test_client_cloud_defaults(self):
        cloud = ClientCloud()
        assert cloud.num_clients == 1
        assert cloud.last_mile_bandwidth == float("inf")

    def test_client_cloud_validation(self):
        with pytest.raises(ConfigurationError):
            ClientCloud(num_clients=0)
        with pytest.raises(ConfigurationError):
            ClientCloud(last_mile_bandwidth=0.0)

    def test_proxy_node_validation(self):
        assert ProxyNode(capacity_kb=0.0).capacity_kb == 0.0
        with pytest.raises(ConfigurationError):
            ProxyNode(capacity_kb=-1.0)

    def test_origin_server_object_count(self):
        server = OriginServer(server_id=3, object_ids=(1, 2, 5))
        assert server.object_count == 3


class TestDeliveryTopology:
    def test_build_assigns_paths_to_all_servers(self, small_catalog, rng):
        topology = DeliveryTopology.build(
            small_catalog, cache_capacity_kb=1_000.0, rng=rng
        )
        for obj in small_catalog:
            assert topology.path_for(obj).server_id == obj.server_id

    def test_path_for_object_id(self, uniform_bandwidth_topology, small_catalog):
        path = uniform_bandwidth_topology.path_for_object_id(2)
        assert path.server_id == small_catalog.get(2).server_id

    def test_servers_grouping(self, uniform_bandwidth_topology):
        servers = uniform_bandwidth_topology.servers()
        by_id = {server.server_id: server for server in servers}
        assert set(by_id) == {0, 1, 2}
        assert set(by_id[0].object_ids) == {0, 3}

    def test_bottleneck_objects_under_uniform_30kbps(self, uniform_bandwidth_topology):
        # Objects 0, 1 (48 KB/s) and 2 (96 KB/s) exceed 30 KB/s; object 3 (24) does not.
        assert set(uniform_bandwidth_topology.bottleneck_objects()) == {0, 1, 2}

    def test_missing_path_rejected(self, small_catalog):
        registry = PathRegistry([NetworkPath(0, 50.0)])  # servers 1, 2 missing
        with pytest.raises(ConfigurationError):
            DeliveryTopology(
                catalog=small_catalog, paths=registry, proxy=ProxyNode(capacity_kb=10.0)
            )

    def test_build_with_constant_distribution(self, small_catalog, rng):
        topology = DeliveryTopology.build(
            small_catalog,
            cache_capacity_kb=500.0,
            bandwidth_distribution=ConstantBandwidthDistribution(10.0),
            rng=rng,
        )
        assert all(path.base_bandwidth == pytest.approx(10.0) for path in topology.paths)


class TestSampleObserved:
    def test_batch_matches_consecutive_scalar_draws(self):
        path = NetworkPath(0, 80.0, variability=LognormalRatioVariability(1.2))
        batch = path.sample_observed(np.random.default_rng(42), size=64)
        scalar_rng = np.random.default_rng(42)
        scalars = [path.observed_bandwidth(scalar_rng) for _ in range(64)]
        assert batch.tolist() == scalars  # elementwise IEEE-identical

    def test_floor_and_shapes(self):
        path = NetworkPath(0, 1e-6 + 1.0)  # constant variability, near the floor
        samples = path.sample_observed(np.random.default_rng(0), size=5)
        assert samples.shape == (5,)
        assert np.all(samples >= 1.0)
        assert path.sample_observed(np.random.default_rng(0), size=0).size == 0
        with pytest.raises(ConfigurationError):
            path.sample_observed(np.random.default_rng(0), size=-1)
