#!/usr/bin/env python
"""Scenario: combining partial caching with batching/patching at the proxy.

The paper's future-work section proposes combining network-aware partial
caching with batching and patching.  This script measures that combination:

* baseline — every request opens its own origin-server stream,
* batching — requests arriving while a stream for the same object is still
  in flight join it and only fetch the part they missed (the patch),
* batching + prefix caching — additionally, the cache holds the paper's
  ``(r − b)·T`` prefix for bottlenecked objects, which absorbs most patches.

Run with::

    python examples/batching_and_partial_caching.py
"""

from __future__ import annotations

import numpy as np

from repro import GismoWorkloadGenerator, SimulationConfig, WorkloadConfig
from repro.sim.sharing import (
    StreamSharingAnalyzer,
    prefix_function_for_bandwidth,
    sharing_summary_rows,
)
from repro.sim.simulator import ProxyCacheSimulator


def main() -> None:
    # A denser request stream than the default (one request per second) so
    # overlapping interest in the same objects actually occurs.
    config = WorkloadConfig(seed=21, arrival_rate=1.0).scaled(0.1)
    workload = GismoWorkloadGenerator(config).generate()

    # Per-object base bandwidth from the standard NLANR topology draw.
    sim_config = SimulationConfig(cache_size_gb=1.0, seed=3)
    topology = ProxyCacheSimulator(workload, sim_config).build_topology(
        np.random.default_rng(sim_config.seed)
    )
    bandwidths = {
        obj.object_id: topology.path_for(obj).base_bandwidth
        for obj in workload.catalog
    }

    reports = {
        "batching only": StreamSharingAnalyzer(workload.catalog).analyze(workload.trace),
        "batching + (r-b)T prefixes": StreamSharingAnalyzer(
            workload.catalog,
            prefix_for=prefix_function_for_bandwidth(bandwidths),
        ).analyze(workload.trace),
        "batching, 60 s window": StreamSharingAnalyzer(
            workload.catalog, batching_window=60.0
        ).analyze(workload.trace),
    }

    print("Stream sharing on a GISMO trace "
          f"({len(workload.trace)} requests, {len(workload.catalog)} objects)\n")
    header = (f"{'configuration':28} {'server bytes saved':>19} {'join ratio':>11} "
              f"{'batches':>8} {'patch from cache':>17}")
    print(header)
    print("-" * len(header))
    for row in sharing_summary_rows(reports):
        print(
            f"{row['configuration']:28} {row['server_byte_savings']:19.1%} "
            f"{row['join_ratio']:11.1%} {row['batches']:8.0f} "
            f"{row['patch_absorbed_by_cache']:17.1%}"
        )

    print("\nBatching removes duplicate suffix transfers for popular objects, and the")
    print("paper's delay-hiding prefixes double as patch storage for late joiners —")
    print("the combination the authors list as future work.")


if __name__ == "__main__":
    main()
