"""Ablations — warm-up protocol, and the classic baselines (LRU/GDS) vs PB.

Two of the design decisions DESIGN.md calls out:

* **Warm-up protocol** — the paper measures metrics over the second half of
  the trace after warming the cache with the first half (Section 4.1).
  Measuring from a cold cache inflates delays for every policy; this
  ablation quantifies by how much.
* **Utility key** — the paper's IF strawman is LFU-like; real proxies of the
  era shipped LRU or GreedyDual-Size.  This ablation confirms the
  network-aware PB policy also beats those classic baselines on the
  delay/quality metrics, which is the practically relevant comparison for
  anyone replacing a production cache policy.
"""

from benchmarks.conftest import BENCH_RUNS, BENCH_SCALE, report, run_once
from repro.analysis.experiments import build_workload, cache_sizes_gb_for
from repro.core.policies import make_policy
from repro.sim.config import SimulationConfig
from repro.sim.runner import compare_policies

CACHE_FRACTION = 0.05


def run_warmup_ablation():
    workload = build_workload(scale=BENCH_SCALE, seed=0)
    cache_gb = cache_sizes_gb_for(workload, (CACHE_FRACTION,))[0]
    results = {}
    for label, warmup in (("warm (paper)", 0.5), ("cold start", 0.0)):
        config = SimulationConfig(cache_size_gb=cache_gb, warmup_fraction=warmup, seed=0)
        comparison = compare_policies(
            workload, {"PB": lambda: make_policy("PB")}, config, num_runs=BENCH_RUNS
        )
        results[label] = comparison.metrics_by_policy["PB"]
    return results


def test_ablation_warmup_protocol(benchmark):
    results = benchmark.pedantic(run_warmup_ablation, rounds=1, iterations=1)
    print()
    print("== ablation: warm-up protocol (PB policy) ==")
    for label, metrics in results.items():
        print(
            f"{label:14} delay {metrics.average_service_delay:8.1f} s   "
            f"traffic reduction {metrics.traffic_reduction_ratio:.3f}"
        )
    benchmark.extra_info.update(
        {
            "warm_delay": round(results["warm (paper)"].average_service_delay, 2),
            "cold_delay": round(results["cold start"].average_service_delay, 2),
        }
    )
    # A cold cache cannot do better than a warmed one on delay, and the cold
    # measurement includes the (cache-less) start of the trace.
    assert (
        results["cold start"].average_service_delay
        >= results["warm (paper)"].average_service_delay * 0.98
    )
    # Warm-up does not change what the cache is *for*: both configurations
    # serve a meaningful share of bytes.
    assert results["warm (paper)"].traffic_reduction_ratio > 0.0
    assert results["cold start"].traffic_reduction_ratio > 0.0


def run_baseline_comparison():
    workload = build_workload(scale=BENCH_SCALE, seed=0)
    cache_gb = cache_sizes_gb_for(workload, (CACHE_FRACTION,))[0]
    config = SimulationConfig(cache_size_gb=cache_gb, seed=0)
    return compare_policies(
        workload,
        {
            "PB": lambda: make_policy("PB"),
            "LRU": lambda: make_policy("LRU"),
            "GDS": lambda: make_policy("GDS"),
            "GDSP": lambda: make_policy("GDSP"),
        },
        config,
        num_runs=BENCH_RUNS,
    )


def test_ablation_classic_baselines(benchmark):
    comparison = benchmark.pedantic(run_baseline_comparison, rounds=1, iterations=1)
    print()
    print("== ablation: PB vs classic proxy-cache baselines ==")
    print(f"{'policy':6} {'delay (s)':>10} {'quality':>9} {'traffic reduction':>18}")
    for policy in comparison.policies():
        metrics = comparison.metrics_by_policy[policy]
        print(
            f"{policy:6} {metrics.average_service_delay:10.1f} "
            f"{metrics.average_stream_quality:9.3f} "
            f"{metrics.traffic_reduction_ratio:18.3f}"
        )
    benchmark.extra_info.update(
        {
            policy: round(
                comparison.metrics_by_policy[policy].average_service_delay, 2
            )
            for policy in comparison.policies()
        }
    )

    delay = comparison.metric("average_service_delay")
    quality = comparison.metric("average_stream_quality")
    # The network-aware partial policy beats every network-unaware baseline on
    # the metrics the paper optimises for.
    for baseline in ("LRU", "GDS", "GDSP"):
        assert delay["PB"] <= delay[baseline]
        assert quality["PB"] >= quality[baseline] - 1e-9
