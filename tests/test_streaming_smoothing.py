"""Tests for optimal work-ahead smoothing of VBR streams."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.streaming.media import VBRStream, synthetic_vbr_stream
from repro.streaming.smoothing import (
    optimal_smoothing,
    peak_rate,
    rate_variability,
    verify_feasible,
)


def test_constant_stream_needs_one_run():
    stream = VBRStream([2.0] * 20, frame_rate=1.0)
    schedule = optimal_smoothing(stream, buffer_kb=10.0)
    assert schedule.num_runs == 1
    assert schedule.run_rates[0] == pytest.approx(2.0)


def test_schedule_is_feasible_for_bursty_stream():
    stream = synthetic_vbr_stream(duration=20.0, mean_rate=48.0, burstiness=0.7, seed=1)
    for buffer_kb in (50.0, 500.0, 5_000.0):
        schedule = optimal_smoothing(stream, buffer_kb=buffer_kb)
        assert verify_feasible(stream, schedule, buffer_kb)


def test_total_transmission_equals_stream_size():
    stream = synthetic_vbr_stream(duration=10.0, mean_rate=48.0, burstiness=0.5, seed=2)
    schedule = optimal_smoothing(stream, buffer_kb=200.0)
    transmitted = schedule.cumulative_transmission()
    assert transmitted[-1] == pytest.approx(stream.size, rel=1e-6)


def test_larger_buffer_reduces_peak_rate():
    stream = synthetic_vbr_stream(duration=30.0, mean_rate=48.0, burstiness=0.8, seed=3)
    small = peak_rate(optimal_smoothing(stream, buffer_kb=20.0))
    large = peak_rate(optimal_smoothing(stream, buffer_kb=2_000.0))
    assert large <= small + 1e-9


def test_smoothing_reduces_rate_variability_versus_raw_stream():
    stream = synthetic_vbr_stream(duration=30.0, mean_rate=48.0, burstiness=0.8, seed=4)
    raw_cov = float(stream.frame_sizes.std() / stream.frame_sizes.mean())
    smoothed_cov = rate_variability(optimal_smoothing(stream, buffer_kb=5_000.0))
    assert smoothed_cov < raw_cov


def test_huge_buffer_approaches_cbr():
    stream = synthetic_vbr_stream(duration=20.0, mean_rate=48.0, burstiness=0.6, seed=5)
    schedule = optimal_smoothing(stream, buffer_kb=stream.size)
    # With a buffer as large as the whole object a single constant-rate run
    # (at no more than the mean rate needed to finish on time) suffices.
    assert schedule.num_runs <= 3
    assert peak_rate(schedule) <= stream.peak_rate


def test_peak_rate_never_exceeds_unsmoothed_peak():
    stream = synthetic_vbr_stream(duration=25.0, mean_rate=48.0, burstiness=0.9, seed=6)
    schedule = optimal_smoothing(stream, buffer_kb=100.0)
    assert peak_rate(schedule) <= stream.peak_rate + 1e-9


def test_zero_buffer_follows_frame_sizes():
    stream = VBRStream([1.0, 4.0, 2.0, 3.0], frame_rate=1.0)
    schedule = optimal_smoothing(stream, buffer_kb=0.0)
    transmitted = schedule.cumulative_transmission()
    assert np.allclose(transmitted, stream.cumulative_schedule())


def test_negative_buffer_rejected():
    stream = VBRStream([1.0, 2.0])
    with pytest.raises(ConfigurationError):
        optimal_smoothing(stream, buffer_kb=-1.0)


def test_rates_kbps_conversion():
    stream = VBRStream([2.0] * 10, frame_rate=24.0)
    schedule = optimal_smoothing(stream, buffer_kb=100.0)
    assert schedule.rates_kbps()[0] == pytest.approx(2.0 * 24.0)
