"""Tests for the cache store's byte accounting."""

import pytest

from repro.core.store import CacheStore
from repro.exceptions import CapacityError, ConfigurationError


class TestCacheStoreBasics:
    def test_empty_store(self):
        store = CacheStore(1_000.0)
        assert len(store) == 0
        assert store.used_kb == 0.0
        assert store.free_kb == 1_000.0
        assert store.occupancy == 0.0
        assert store.cached_bytes(5) == 0.0

    def test_zero_capacity_store_is_legal(self):
        store = CacheStore(0.0)
        assert store.occupancy == 0.0
        with pytest.raises(CapacityError):
            store.set_cached_bytes(1, 10.0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheStore(-1.0)


class TestSetGrowTrim:
    def test_set_and_get(self):
        store = CacheStore(1_000.0)
        store.set_cached_bytes(1, 300.0)
        assert store.cached_bytes(1) == 300.0
        assert store.used_kb == 300.0
        assert 1 in store

    def test_grow(self):
        store = CacheStore(1_000.0)
        store.set_cached_bytes(1, 300.0)
        store.grow(1, 200.0)
        assert store.cached_bytes(1) == 500.0

    def test_grow_beyond_capacity_raises(self):
        store = CacheStore(400.0)
        store.set_cached_bytes(1, 300.0)
        with pytest.raises(CapacityError):
            store.grow(1, 200.0)

    def test_shrink_via_set(self):
        store = CacheStore(1_000.0)
        store.set_cached_bytes(1, 500.0)
        store.set_cached_bytes(1, 100.0)
        assert store.used_kb == 100.0

    def test_set_to_zero_removes_entry(self):
        store = CacheStore(1_000.0)
        store.set_cached_bytes(1, 500.0)
        store.set_cached_bytes(1, 0.0)
        assert 1 not in store
        assert store.used_kb == 0.0

    def test_trim_partial_and_full(self):
        store = CacheStore(1_000.0)
        store.set_cached_bytes(1, 500.0)
        assert store.trim(1, 200.0) == 200.0
        assert store.cached_bytes(1) == 300.0
        assert store.trim(1, 1_000.0) == 300.0
        assert 1 not in store

    def test_trim_absent_object_is_noop(self):
        store = CacheStore(1_000.0)
        assert store.trim(9, 100.0) == 0.0

    def test_evict(self):
        store = CacheStore(1_000.0)
        store.set_cached_bytes(1, 250.0)
        assert store.evict(1) == 250.0
        assert store.free_kb == 1_000.0

    def test_validation(self):
        store = CacheStore(1_000.0)
        with pytest.raises(ConfigurationError):
            store.set_cached_bytes(1, -5.0)
        with pytest.raises(ConfigurationError):
            store.grow(1, -5.0)
        with pytest.raises(ConfigurationError):
            store.trim(1, -5.0)


class TestBookkeeping:
    def test_touch_updates_last_access(self):
        store = CacheStore(1_000.0)
        store.set_cached_bytes(1, 100.0, now=1.0)
        store.touch(1, 5.0)
        assert store.state(1).last_access_time == 5.0
        store.touch(99, 5.0)  # no-op for absent objects

    def test_snapshot_is_a_copy(self):
        store = CacheStore(1_000.0)
        store.set_cached_bytes(1, 100.0)
        snapshot = store.snapshot()
        snapshot[1] = 999.0
        assert store.cached_bytes(1) == 100.0

    def test_clear(self):
        store = CacheStore(1_000.0)
        store.set_cached_bytes(1, 100.0)
        store.set_cached_bytes(2, 200.0)
        store.clear()
        assert len(store) == 0
        assert store.used_kb == 0.0

    def test_verify_consistency(self):
        store = CacheStore(1_000.0)
        store.set_cached_bytes(1, 100.0)
        store.set_cached_bytes(2, 200.0)
        store.trim(1, 50.0)
        assert store.verify_consistency()

    def test_largest_entries(self):
        store = CacheStore(10_000.0)
        store.set_cached_bytes(1, 100.0)
        store.set_cached_bytes(2, 500.0)
        store.set_cached_bytes(3, 250.0)
        assert store.largest_entries(2) == [(2, 500.0), (3, 250.0)]

    def test_occupancy(self):
        store = CacheStore(1_000.0)
        store.set_cached_bytes(1, 250.0)
        assert store.occupancy == pytest.approx(0.25)

    def test_iteration_yields_states(self):
        store = CacheStore(1_000.0)
        store.set_cached_bytes(4, 10.0)
        ids = [entry.object_id for entry in store]
        assert ids == [4]
