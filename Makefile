PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-smoke bench-full bench-figures ingest-demo docs-check kernel-check faults-smoke obs-smoke streaming-smoke hierarchy-smoke

## Tier-1 verification: the full test + benchmark suite.
test:
	$(PYTHON) -m pytest -x -q

## Quick throughput regression gate: replays a small (20k-request) trace on
## the fast path and fails if it is >30% slower than the baseline recorded
## in BENCH_perf.json.
bench-smoke:
	$(PYTHON) -m pytest -q benchmarks/test_bench_perf_throughput.py -k smoke

## Full throughput measurement: 200k-request replay on both paths,
## rewrites BENCH_perf.json (the repo's performance trajectory).
bench-full:
	$(PYTHON) -m pytest -q benchmarks/test_bench_perf_throughput.py

## The paper-figure benchmarks (pytest-benchmark timings, printed tables).
bench-figures:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

## Ingest the bundled sample access logs through the CLI: summary + a
## policy comparison on the Squid log, summary only for the CLF log.
ingest-demo:
	$(PYTHON) -m repro ingest examples/data/sample_squid.log --compare --policies PB,IB,LRU --runs 1
	$(PYTHON) -m repro ingest examples/data/sample_clf.log

## Documentation gate: link-check README.md + docs/*.md and execute the
## README quickstart and docs/clients.md worked-example snippets.
docs-check:
	$(PYTHON) scripts/check_docs.py

## Kernel-seam gate: the replay drivers in repro.sim.simulator must reach
## every subsystem through repro.sim.kernel (serve_request/serve_batch +
## kernel_hooks), never directly — the seam that keeps the four replay
## paths bit-identical.
kernel-check:
	$(PYTHON) scripts/check_kernel.py

## Fault-injection smoke: the fault test suite (replay-path bit-identity,
## retry/backoff semantics, reactive behaviour under fault storms) plus a
## CLI replay with a stochastic outage/flap schedule end-to-end.
faults-smoke:
	$(PYTHON) -m pytest -q tests/test_sim_faults.py
	$(PYTHON) -m repro run --policy PB --scale 0.05 --knowledge passive \
		--reactive-threshold 0.15 --reactive-passive --reactive-hysteresis 0.05 \
		--fault-origin-outages 2 --fault-bandwidth-flaps 4 --fault-seed 1

## Observability smoke: one faulted reactive replay with the windowed
## metrics timeline, the JSONL event trace, and the stage profiler all
## switched on, then a schema check over the two files it wrote
## (docs/observability.md).  Artifacts land in .obs-smoke/.
obs-smoke:
	mkdir -p .obs-smoke
	$(PYTHON) -m repro run --policy PB --scale 0.05 --knowledge passive \
		--reactive-threshold 0.15 --reactive-passive --reactive-hysteresis 0.05 \
		--fault-origin-outages 2 --fault-seed 1 \
		--metrics-out .obs-smoke/metrics.json --metrics-window 1800 \
		--trace-out .obs-smoke/trace.jsonl --trace-level debug --profile
	$(PYTHON) scripts/check_obs.py .obs-smoke/metrics.json .obs-smoke/trace.jsonl

## Streaming smoke: the streaming test suite (engine semantics,
## replay-path bit-identity with sessions on, the golden QoE fixture, the
## prefix-vs-whole ablation) plus one CLI replay with segment-aware
## sessions and the QoE report end-to-end (docs/streaming.md).
streaming-smoke:
	$(PYTHON) -m pytest -q tests/test_sim_streaming.py tests/test_streaming_segmentation.py
	$(PYTHON) -m repro run --policy PB --scale 0.05 --knowledge passive \
		--client-clouds 8 --streaming-fraction 1.0 --streaming-prefetch 2

## Hierarchy smoke: the hierarchy test suite (tier-chain semantics,
## replay-path bit-identity with the fleet on, the golden ablation
## fixture, sharded-replay determinism) plus one sharded 2-tier CLI
## replay that prints the per-tier report end-to-end (docs/hierarchy.md).
hierarchy-smoke:
	$(PYTHON) -m pytest -q tests/test_sim_hierarchy.py
	$(PYTHON) -m repro run --policy PB --scale 0.05 --pops 4 --tiers 2 \
		--tier-cache-kb 100000,400000 --tier-uplink 50,40 --shards 4
