"""Shared fixtures and replay-path helpers for the test suite."""

from __future__ import annotations

from dataclasses import replace as _replace

import numpy as np
import pytest

from repro.core.policies import make_policy
from repro.network.distributions import ConstantBandwidthDistribution
from repro.network.topology import DeliveryTopology
from repro.sim.config import SimulationConfig
from repro.sim.simulator import ProxyCacheSimulator
from repro.trace.columnar import ColumnarTrace
from repro.workload.catalog import Catalog, MediaObject
from repro.workload.gismo import GismoWorkloadGenerator, WorkloadConfig

#: Labels of the four replay loop code paths, in reference order: the
#: classic event calendar and the plain fast loop run on the
#: object-per-request trace, the columnar fast and columnar event loops
#: on the numpy-native columnar trace.
REPLAY_PATH_LABELS = ("event", "fast", "columnar-fast", "columnar-event")


def run_replay_paths(workload, config, policy_name="PB", hierarchy=None):
    """Run the same simulation once per replay loop code path.

    Returns ``{label: SimulationResult}`` for the four
    :data:`REPLAY_PATH_LABELS`.  The workload may carry either trace
    representation; the other is derived via the lossless
    ``ColumnarTrace`` conversions, so all four loops replay the
    identical request stream.  Topology construction is deterministic in
    ``config.seed``, so every run sees the same paths.  ``hierarchy``
    (a :class:`~repro.sim.hierarchy.HierarchyConfig`) is applied to the
    config before replaying, so every path runs the same tier chain.
    """
    if hierarchy is not None:
        config = config.with_hierarchy(hierarchy)
    trace = workload.trace
    if isinstance(trace, ColumnarTrace):
        columnar = workload
        plain = _replace(workload, trace=trace.to_request_trace())
    else:
        columnar = _replace(workload, trace=ColumnarTrace.from_request_trace(trace))
        plain = workload
    grid = (
        ("event", plain, "event"),
        ("fast", plain, "fast"),
        ("columnar-fast", columnar, "columnar"),
        ("columnar-event", columnar, "columnar-event"),
    )
    return {
        label: ProxyCacheSimulator(wl, config).run(
            make_policy(policy_name), replay=replay
        )
        for label, wl, replay in grid
    }


def assert_replay_paths_identical(workload, config, policy_name="PB", hierarchy=None):
    """Assert all four replay paths are bit-identical; return the results.

    Metrics must match exactly; when the reference run carries a
    timeline, fault report, streaming report, or hierarchy report, those
    must match across the paths too (fault reports via ``approx`` for
    NaN-valued recovery fields).  Returns the ``{label:
    SimulationResult}`` dict so callers can make further assertions on
    any path's result.
    """
    results = run_replay_paths(workload, config, policy_name, hierarchy=hierarchy)
    reference = results["event"]
    for label, result in results.items():
        assert result.metrics == reference.metrics, (policy_name, label)
        assert result.as_dict() == reference.as_dict(), (policy_name, label)
        if reference.timeline is not None:
            assert result.timeline == reference.timeline, (policy_name, label)
        if reference.fault_report is not None:
            assert result.fault_report.as_dict() == pytest.approx(
                reference.fault_report.as_dict(), nan_ok=True
            ), (policy_name, label)
        if reference.streaming_report is not None:
            assert result.streaming_report == reference.streaming_report, (
                policy_name,
                label,
            )
        if reference.hierarchy_report is not None:
            assert result.hierarchy_report == reference.hierarchy_report, (
                policy_name,
                label,
            )
    return results


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for test reproducibility."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_catalog() -> Catalog:
    """A tiny hand-built catalog with known sizes and servers."""
    return Catalog(
        [
            MediaObject(object_id=0, duration=100.0, bitrate=48.0, server_id=0, value=5.0),
            MediaObject(object_id=1, duration=200.0, bitrate=48.0, server_id=1, value=2.0),
            MediaObject(object_id=2, duration=50.0, bitrate=96.0, server_id=2, value=9.0),
            MediaObject(object_id=3, duration=400.0, bitrate=24.0, server_id=0, value=1.0),
        ]
    )


@pytest.fixture
def tiny_workload():
    """A very small but fully structured GISMO workload (fast to simulate)."""
    config = WorkloadConfig(
        num_objects=50,
        num_requests=1_500,
        num_servers=10,
        seed=7,
    )
    return GismoWorkloadGenerator(config).generate()


@pytest.fixture
def small_workload():
    """A moderately sized workload for integration tests."""
    config = WorkloadConfig(
        num_objects=200,
        num_requests=5_000,
        num_servers=40,
        seed=11,
    )
    return GismoWorkloadGenerator(config).generate()


@pytest.fixture
def uniform_bandwidth_topology(small_catalog, rng) -> DeliveryTopology:
    """Topology where every path has the same 30 KB/s base bandwidth."""
    return DeliveryTopology.build(
        catalog=small_catalog,
        cache_capacity_kb=10_000.0,
        bandwidth_distribution=ConstantBandwidthDistribution(30.0),
        rng=rng,
    )


@pytest.fixture
def fast_sim_config() -> SimulationConfig:
    """Simulation config suitable for quick unit/integration tests."""
    return SimulationConfig(cache_size_gb=1.0, seed=5, verify_store=True)
