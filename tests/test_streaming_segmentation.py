"""Tests for fine-grain segment maintenance of partially cached objects."""

import pytest

from repro.exceptions import ConfigurationError
from repro.streaming.segmentation import Segment, SegmentationScheme, SegmentedPrefix


class TestSegment:
    def test_size(self):
        assert Segment(index=0, start=0.0, end=256.0).size == 256.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Segment(index=0, start=-1.0, end=10.0)
        with pytest.raises(ConfigurationError):
            Segment(index=0, start=10.0, end=10.0)


class TestSegmentationScheme:
    def test_fixed_size_segments_cover_object(self):
        scheme = SegmentationScheme(base_segment_kb=100.0, exponential=False)
        segments = scheme.segments(350.0)
        assert [s.size for s in segments] == [100.0, 100.0, 100.0, 50.0]
        assert segments[0].start == 0.0
        assert segments[-1].end == 350.0

    def test_exponential_segments_double(self):
        scheme = SegmentationScheme(base_segment_kb=64.0, exponential=True)
        segments = scheme.segments(64.0 + 128.0 + 256.0)
        assert [s.size for s in segments] == [64.0, 128.0, 256.0]

    def test_exponential_needs_logarithmic_count(self):
        scheme = SegmentationScheme(base_segment_kb=1.0, exponential=True)
        # A ~1 GB object divides into only ~20 exponential segments.
        assert len(scheme.segments(1_000_000.0)) <= 21

    def test_segments_for_prefix(self):
        scheme = SegmentationScheme(base_segment_kb=100.0, exponential=False)
        covered = scheme.segments_for_prefix(400.0, 150.0)
        assert [s.index for s in covered] == [0, 1]
        assert scheme.segments_for_prefix(400.0, 0.0) == []

    def test_zero_size_object(self):
        assert SegmentationScheme().segments(0.0) == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SegmentationScheme(base_segment_kb=0.0)
        with pytest.raises(ConfigurationError):
            SegmentationScheme().segments(-1.0)


class TestSegmentedPrefix:
    def make(self, size=1_000.0, base=100.0, exponential=False):
        return SegmentedPrefix(
            size, SegmentationScheme(base_segment_kb=base, exponential=exponential)
        )

    def test_starts_empty(self):
        prefix = self.make()
        assert prefix.cached_bytes == 0.0
        assert prefix.resident_segments == []
        assert prefix.missing_ranges() == [(0.0, 1_000.0)]

    def test_grow_to_rounds_up_to_segment_boundary(self):
        prefix = self.make()
        cached = prefix.grow_to(250.0)
        assert cached == pytest.approx(300.0)  # three 100 KB segments
        assert len(prefix.resident_segments) == 3

    def test_grow_beyond_object_caps_at_size(self):
        prefix = self.make(size=250.0)
        assert prefix.grow_to(1e9) == pytest.approx(250.0)
        assert prefix.missing_ranges() == []

    def test_trim_to_drops_trailing_segments(self):
        prefix = self.make()
        prefix.grow_to(500.0)
        remaining = prefix.trim_to(250.0)
        assert remaining == pytest.approx(200.0)
        assert prefix.missing_ranges() == [(200.0, 1_000.0)]

    def test_holds_prefix(self):
        prefix = self.make()
        prefix.grow_to(300.0)
        assert prefix.holds_prefix(250.0)
        assert prefix.holds_prefix(300.0)
        assert not prefix.holds_prefix(301.0)

    def test_metadata_entries_counts_all_segments(self):
        assert self.make(size=1_000.0, base=100.0).metadata_entries() == 10

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SegmentedPrefix(0.0)
        prefix = self.make()
        with pytest.raises(ConfigurationError):
            prefix.grow_to(-1.0)
        with pytest.raises(ConfigurationError):
            prefix.trim_to(-1.0)


# ----------------------------------------------------------------------
# Randomized property tests (seeded; hypothesis shrinks on failure)
# ----------------------------------------------------------------------
import hypothesis.strategies as st
from hypothesis import given, settings

# Keep size/base ratios small enough that uniform layouts stay at a few
# hundred segments per object — grow_to/trim_to walk segment by segment,
# so unbounded ratios turn each example quadratic.
_sizes = st.floats(min_value=1.0, max_value=32_768.0, allow_nan=False)
_bases = st.floats(min_value=256.0, max_value=4096.0, allow_nan=False)
_targets = st.floats(min_value=0.0, max_value=65_536.0, allow_nan=False)


class TestSegmentedPrefixProperties:
    @given(size=_sizes, base=_bases, exponential=st.booleans(), target=_targets)
    @settings(max_examples=200, deadline=None)
    def test_grow_to_meets_target_at_segment_granularity(
        self, size, base, exponential, target
    ):
        prefix = SegmentedPrefix(size, SegmentationScheme(base, exponential))
        cached = prefix.grow_to(target)
        # Residency never exceeds the object and is exactly the resident
        # segment total.
        assert 0.0 <= cached <= size + 1e-6
        assert cached == sum(s.size for s in prefix.resident_segments)
        # The target is met whenever it fits inside the object.
        if target <= size:
            assert cached >= target - 1e-6
        # Overshoot is bounded by the last admitted segment.
        if prefix.resident_segments:
            last = prefix.resident_segments[-1]
            assert cached - min(target, size) <= last.size + 1e-6
        # grow_to is idempotent at its own result.
        assert prefix.grow_to(target) == cached

    @given(size=_sizes, base=_bases, exponential=st.booleans(), target=_targets)
    @settings(max_examples=200, deadline=None)
    def test_trim_to_respects_target_at_segment_granularity(
        self, size, base, exponential, target
    ):
        prefix = SegmentedPrefix(size, SegmentationScheme(base, exponential))
        prefix.grow_to(size)
        remaining = prefix.trim_to(target)
        assert 0.0 <= remaining <= target + 1e-6 or remaining == 0.0
        assert remaining == sum(s.size for s in prefix.resident_segments)
        # trim_to is idempotent at its own result.
        assert prefix.trim_to(target) == remaining
        # Nothing more could have been kept: admitting one more segment
        # would break the target.
        total = prefix.total_segments
        if len(prefix.resident_segments) < total:
            next_seg = prefix.grow_to(remaining + 1e-9)
            if next_seg > remaining:
                assert next_seg > target

    @given(
        size=_sizes,
        base=_bases,
        exponential=st.booleans(),
        targets=st.lists(_targets, min_size=1, max_size=12),
    )
    @settings(max_examples=200, deadline=None)
    def test_interleaved_grow_trim_keeps_prefix_invariant(
        self, size, base, exponential, targets
    ):
        prefix = SegmentedPrefix(size, SegmentationScheme(base, exponential))
        for i, target in enumerate(targets):
            cached = prefix.grow_to(target) if i % 2 == 0 else prefix.trim_to(target)
            resident = prefix.resident_segments
            assert cached == sum(s.size for s in resident)
            # Resident segments are always the leading segments, contiguous
            # from offset zero — the prefix invariant.
            for j, segment in enumerate(resident):
                assert segment.index == j
            if resident:
                assert resident[0].start == 0.0
                for prev, nxt in zip(resident, resident[1:]):
                    assert prev.end == nxt.start
            # missing_ranges is the exact complement of the prefix.
            missing = prefix.missing_ranges()
            if cached >= size:
                assert missing == []
            else:
                assert missing == [(cached, size)]

    @given(size=_sizes, base=_bases, exponential=st.booleans())
    @settings(max_examples=200, deadline=None)
    def test_segments_tile_the_object_exactly(self, size, base, exponential):
        segments = SegmentationScheme(base, exponential).segments(size)
        assert segments[0].start == 0.0
        assert segments[-1].end == size
        for prev, nxt in zip(segments, segments[1:]):
            assert prev.end == nxt.start
            if exponential:
                # Sizes double except for the final (clipped) segment.
                assert nxt.size <= 2.0 * prev.size + 1e-9
