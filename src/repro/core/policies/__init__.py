"""Cache management policies.

The policy classes implement the algorithms the paper compares:

==============================  =========================================
Class                           Paper name
==============================  =========================================
:class:`IntegralFrequencyPolicy`        IF — integral frequency-based caching
:class:`PartialBandwidthPolicy`         PB — partial bandwidth-based caching
:class:`IntegralBandwidthPolicy`        IB — integral bandwidth-based caching
:class:`HybridPartialBandwidthPolicy`   the estimator-``e`` spectrum of §2.5 / Fig 9
:class:`PartialBandwidthValuePolicy`    PB-V — partial bandwidth-value-based (§2.6)
:class:`IntegralBandwidthValuePolicy`   IB-V — integral bandwidth-value-based (§4.4)
:class:`LRUPolicy`, :class:`LFUPolicy`  classic baselines (§3.3)
:func:`optimal_allocation`              the offline fractional-knapsack optimum (§2.3)
==============================  =========================================
"""

from repro.core.policies.base import CachePolicy, PolicyContext
from repro.core.policies.bandwidth import (
    HybridPartialBandwidthPolicy,
    IntegralBandwidthPolicy,
    PartialBandwidthPolicy,
)
from repro.core.policies.classic import LFUPolicy, LRUPolicy
from repro.core.policies.frequency import IntegralFrequencyPolicy
from repro.core.policies.greedydual import (
    GreedyDualSizePolicy,
    PopularityAwareGreedyDualSizePolicy,
)
from repro.core.policies.optimal import (
    StaticAllocationPolicy,
    optimal_allocation,
    optimal_average_delay,
)
from repro.core.policies.registry import POLICY_REGISTRY, PolicySpec, make_policy
from repro.core.policies.value_based import (
    HybridPartialBandwidthValuePolicy,
    IntegralBandwidthValuePolicy,
    PartialBandwidthValuePolicy,
)

__all__ = [
    "CachePolicy",
    "GreedyDualSizePolicy",
    "HybridPartialBandwidthPolicy",
    "HybridPartialBandwidthValuePolicy",
    "IntegralBandwidthPolicy",
    "IntegralBandwidthValuePolicy",
    "IntegralFrequencyPolicy",
    "LFUPolicy",
    "LRUPolicy",
    "POLICY_REGISTRY",
    "PartialBandwidthPolicy",
    "PartialBandwidthValuePolicy",
    "PolicyContext",
    "PolicySpec",
    "PopularityAwareGreedyDualSizePolicy",
    "StaticAllocationPolicy",
    "make_policy",
    "optimal_allocation",
    "optimal_average_delay",
]
