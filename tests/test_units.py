"""Tests for unit conversions and the positive-part helper."""

import pytest

from repro import units


def test_gb_kb_roundtrip():
    assert units.gb_to_kb(1.0) == pytest.approx(1_000_000.0)
    assert units.kb_to_gb(units.gb_to_kb(7.25)) == pytest.approx(7.25)


def test_mb_kb_roundtrip():
    assert units.mb_to_kb(2.0) == pytest.approx(2_000.0)
    assert units.kb_to_mb(units.mb_to_kb(0.125)) == pytest.approx(0.125)


def test_minutes_seconds_roundtrip():
    assert units.minutes_to_seconds(55.0) == pytest.approx(3300.0)
    assert units.seconds_to_minutes(units.minutes_to_seconds(3.3)) == pytest.approx(3.3)


def test_hours_to_seconds():
    assert units.hours_to_seconds(1.5) == pytest.approx(5400.0)


def test_default_bitrate_matches_table1():
    # 2 KB per frame at 24 frames per second is the paper's 48 KB/s.
    assert units.DEFAULT_BITRATE_KBPS == pytest.approx(48.0)
    assert units.KB_PER_FRAME * units.FRAMES_PER_SECOND == pytest.approx(
        units.DEFAULT_BITRATE_KBPS
    )


def test_positive_part_positive_and_negative():
    assert units.positive_part(3.5) == 3.5
    assert units.positive_part(0.0) == 0.0
    assert units.positive_part(-2.0) == 0.0
