"""Policy framework: the utility-keyed priority-heap replacement engine.

Every online policy in the paper follows the same skeleton (Section 2.4):
maintain a per-object *utility* value, estimate request frequency online,
and on each request try to cache a per-object *target* number of bytes,
evicting the lowest-utility cached content to make room — but never
evicting content whose utility is at least that of the requested object.
Concrete policies differ only in two functions:

* :meth:`CachePolicy.utility` — the priority key (e.g. ``F`` for IF,
  ``F / b`` for PB/IB, ``F V / (T r − T b)`` for PB-V), and
* :meth:`CachePolicy.target_cache_bytes` — how much of the object is worth
  caching (the whole object for integral policies, the
  ``(r − b) T`` prefix for partial ones, zero when bandwidth is abundant).

The engine implements the replacement loop once, with the priority queue
("heap which uses the utility value as the key", Section 2.4) shared by all
policies.  Partial policies may trim the marginal victim and may admit the
requested object partially (the fractional-knapsack behaviour); integral
policies evict and admit whole objects only.
"""

from __future__ import annotations

import heapq
import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.frequency import FrequencyTracker
from repro.core.store import CacheStore
from repro.exceptions import PolicyError
from repro.workload.catalog import MediaObject

#: Byte tolerance below which two cache sizes are considered equal.
_EPSILON_KB = 1e-6


@dataclass(frozen=True)
class PolicyContext:
    """Per-request information a policy's utility/target functions may use.

    Attributes
    ----------
    now:
        Simulation time of the request (seconds).
    bandwidth:
        The bandwidth (KB/s) the cache currently *believes* the path to the
        object's origin server has.  Depending on the simulator's
        configuration this is the oracle base bandwidth or a passive
        estimate; hybrid policies additionally scale it by ``estimator_e``.
    frequency:
        The object's request-frequency estimate ``F_i`` including the
        current request.
    """

    now: float
    bandwidth: float
    frequency: float


class CachePolicy(ABC):
    """Base class for online replacement policies.

    Subclasses set :attr:`allows_partial` and implement :meth:`utility` and
    :meth:`target_cache_bytes`; everything else (frequency tracking, the
    priority heap, eviction planning) is shared.
    """

    #: Human-readable policy name, used in reports and plots.
    name: str = "base"

    #: Whether the policy may cache and evict fractions of objects.
    allows_partial: bool = False

    def __init__(self, frequency_tracker: Optional[FrequencyTracker] = None):
        self.frequencies = frequency_tracker or FrequencyTracker()
        self._utilities: Dict[int, float] = {}
        self._heap: List[Tuple[float, int, int]] = []
        self._heap_counter = itertools.count()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"

    # ------------------------------------------------------------------
    # The two hooks concrete policies implement.
    # ------------------------------------------------------------------
    @abstractmethod
    def utility(self, obj: MediaObject, ctx: PolicyContext) -> float:
        """Priority key: higher utility content is kept in preference."""

    @abstractmethod
    def target_cache_bytes(self, obj: MediaObject, ctx: PolicyContext) -> float:
        """How many KB of this object the policy would like cached."""

    def on_evict(self, object_id: int, utility: float) -> None:
        """Hook invoked whenever the engine evicts a whole object.

        The default does nothing; GreedyDual-style policies override it to
        update their inflation value (the utility of the last victim).
        """

    # ------------------------------------------------------------------
    # Heap maintenance.
    # ------------------------------------------------------------------
    def _set_utility(self, object_id: int, utility: float) -> None:
        self._utilities[object_id] = utility
        heapq.heappush(self._heap, (utility, next(self._heap_counter), object_id))

    def _drop_utility(self, object_id: int) -> None:
        self._utilities.pop(object_id, None)

    def _pop_lowest(
        self, store: CacheStore, exclude: int
    ) -> Optional[Tuple[int, float]]:
        """Pop the valid lowest-utility cached object (excluding ``exclude``).

        Lazily discards stale heap entries (objects no longer cached or whose
        utility has since changed).  Returns ``None`` when no candidate
        remains.  The returned object is *not* yet evicted; the caller either
        commits the eviction or pushes the entry back via :meth:`_restore`.
        """
        held: List[Tuple[float, int]] = []
        result: Optional[Tuple[int, float]] = None
        while self._heap:
            utility, _, object_id = heapq.heappop(self._heap)
            current = self._utilities.get(object_id)
            if current is None or object_id not in store:
                continue
            if abs(current - utility) > 1e-12:
                continue
            if object_id == exclude:
                # Hold the requester's own entry aside; restored below so it
                # is never considered a victim and never re-popped this call.
                held.append((utility, object_id))
                continue
            result = (object_id, utility)
            break
        for utility, object_id in held:
            self._restore(object_id, utility)
        return result

    def _restore(self, object_id: int, utility: float) -> None:
        """Push a popped-but-not-evicted candidate back onto the heap."""
        heapq.heappush(self._heap, (utility, next(self._heap_counter), object_id))

    # ------------------------------------------------------------------
    # The replacement engine.
    # ------------------------------------------------------------------
    def on_request(
        self,
        obj: MediaObject,
        bandwidth: float,
        now: float,
        store: CacheStore,
    ) -> PolicyContext:
        """Handle one request: update state and adjust the cache contents.

        Returns the :class:`PolicyContext` built for the request so callers
        (and tests) can inspect the frequency and bandwidth the decision used.
        """
        frequency = self.frequencies.record(obj.object_id, now)
        ctx = PolicyContext(now=now, bandwidth=float(bandwidth), frequency=frequency)
        store.touch(obj.object_id, now)

        target = min(self.target_cache_bytes(obj, ctx), obj.size)
        utility = self.utility(obj, ctx)
        object_id = obj.object_id
        current = store.cached_bytes(object_id)

        if current > 0:
            # Refresh the requester's key: its frequency just increased.
            self._set_utility(object_id, utility)

        if target <= current + _EPSILON_KB:
            return ctx

        needed = target - current
        if needed <= store.free_kb + _EPSILON_KB:
            store.set_cached_bytes(object_id, target, now)
            self._set_utility(object_id, utility)
            return ctx

        self._evict_and_admit(obj, ctx, store, target, utility)
        return ctx

    def _evict_and_admit(
        self,
        obj: MediaObject,
        ctx: PolicyContext,
        store: CacheStore,
        target: float,
        utility: float,
    ) -> None:
        """Plan evictions of lower-utility content, then admit the object.

        Integral policies admit all-or-nothing; partial policies trim the
        marginal victim and may admit the requested object partially when
        only some of the needed space can be reclaimed.
        """
        object_id = obj.object_id
        current = store.cached_bytes(object_id)
        needed = target - current
        shortfall = needed - store.free_kb

        planned: List[Tuple[int, float, float]] = []  # (victim_id, utility, bytes)
        planned_ids = set()
        reclaimed = 0.0
        blocked_candidate: Optional[Tuple[int, float]] = None

        while shortfall - reclaimed > _EPSILON_KB:
            candidate = self._pop_lowest(store, exclude=object_id)
            if candidate is None:
                break
            victim_id, victim_utility = candidate
            if victim_id in planned_ids:
                # A duplicate heap entry for an already-planned victim; the
                # copy kept in ``planned`` is authoritative, drop this one.
                continue
            if victim_utility >= utility:
                blocked_candidate = candidate
                break
            victim_bytes = store.cached_bytes(victim_id)
            if victim_bytes <= 0:
                continue
            planned.append((victim_id, victim_utility, victim_bytes))
            planned_ids.add(victim_id)
            reclaimed += victim_bytes

        fully_satisfied = reclaimed + _EPSILON_KB >= shortfall

        if not fully_satisfied and not self.allows_partial:
            # Integral policies refuse partial admission: undo the plan.
            for victim_id, victim_utility, _ in planned:
                self._restore(victim_id, victim_utility)
            if blocked_candidate is not None:
                self._restore(*blocked_candidate)
            return

        if blocked_candidate is not None:
            self._restore(*blocked_candidate)

        # Commit evictions.  With full satisfaction a partial policy only
        # trims the marginal (last) victim by what is actually required.
        still_needed = shortfall
        for index, (victim_id, victim_utility, victim_bytes) in enumerate(planned):
            is_last = index == len(planned) - 1
            if self.allows_partial and fully_satisfied and is_last:
                trimmed = store.trim(victim_id, still_needed)
                if store.cached_bytes(victim_id) <= _EPSILON_KB:
                    store.evict(victim_id)
                    self._drop_utility(victim_id)
                    self.on_evict(victim_id, victim_utility)
                else:
                    self._restore(victim_id, victim_utility)
                still_needed -= trimmed
            else:
                store.evict(victim_id)
                self._drop_utility(victim_id)
                self.on_evict(victim_id, victim_utility)
                still_needed -= victim_bytes

        grow_to = target if fully_satisfied else current + store.free_kb
        if grow_to <= current + _EPSILON_KB:
            return
        if grow_to - current > store.free_kb + _EPSILON_KB:
            raise PolicyError(
                f"policy {self.name}: planned growth of object {object_id} exceeds "
                f"free space ({grow_to - current:.1f} KB > {store.free_kb:.1f} KB)"
            )
        store.set_cached_bytes(object_id, min(grow_to, obj.size), ctx.now)
        self._set_utility(object_id, utility)

    # ------------------------------------------------------------------
    # Introspection helpers.
    # ------------------------------------------------------------------
    def cached_utility(self, object_id: int) -> Optional[float]:
        """Current utility key of a cached object (None if not tracked)."""
        return self._utilities.get(object_id)

    def reset(self) -> None:
        """Forget all frequency and heap state (the store is left alone)."""
        self.frequencies.reset()
        self._utilities.clear()
        self._heap.clear()
        self._heap_counter = itertools.count()
