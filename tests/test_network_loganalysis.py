"""Tests for the synthetic proxy-log substrate and the Section 3.1 analysis."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, TraceFormatError
from repro.network.loganalysis import (
    ProxyLogAnalyzer,
    SyntheticProxyLog,
    TransferRecord,
    build_nlanr_like_models,
)


class TestTransferRecord:
    def test_throughput(self):
        record = TransferRecord(
            timestamp=0.0, server_id=1, size_kb=500.0, duration_s=10.0, cache_hit=False
        )
        assert record.throughput == pytest.approx(50.0)

    def test_zero_duration_throughput(self):
        record = TransferRecord(
            timestamp=0.0, server_id=1, size_kb=500.0, duration_s=0.0, cache_hit=False
        )
        assert record.throughput == 0.0


class TestSyntheticProxyLog:
    def test_generates_requested_number_of_records(self):
        records = SyntheticProxyLog(num_servers=20, num_records=500, seed=1).generate()
        assert len(records) == 500
        assert all(record.size_kb > 0 for record in records)

    def test_timestamps_increasing(self):
        records = SyntheticProxyLog(num_servers=10, num_records=200, seed=2).generate()
        times = [record.timestamp for record in records]
        assert times == sorted(times)

    def test_hit_fraction_approximately_respected(self):
        records = SyntheticProxyLog(
            num_servers=20, num_records=5_000, hit_fraction=0.4, seed=3
        ).generate()
        hit_rate = np.mean([record.cache_hit for record in records])
        assert hit_rate == pytest.approx(0.4, abs=0.03)

    def test_deterministic_given_seed(self):
        first = SyntheticProxyLog(num_servers=5, num_records=100, seed=9).generate()
        second = SyntheticProxyLog(num_servers=5, num_records=100, seed=9).generate()
        assert [r.size_kb for r in first] == [r.size_kb for r in second]

    def test_csv_roundtrip(self, tmp_path):
        records = SyntheticProxyLog(num_servers=5, num_records=50, seed=4).generate()
        path = tmp_path / "log.csv"
        SyntheticProxyLog.to_csv(records, path)
        loaded = SyntheticProxyLog.from_csv(path)
        assert len(loaded) == len(records)
        assert loaded[0].server_id == records[0].server_id
        assert loaded[-1].size_kb == pytest.approx(records[-1].size_kb)

    def test_csv_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,y\n1,2\n")
        with pytest.raises(TraceFormatError):
            SyntheticProxyLog.from_csv(path)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SyntheticProxyLog(num_servers=0)
        with pytest.raises(ConfigurationError):
            SyntheticProxyLog(hit_fraction=1.0)
        with pytest.raises(ConfigurationError):
            SyntheticProxyLog(large_object_fraction=0.0)


class TestProxyLogAnalyzer:
    def test_filters_hits_and_small_objects(self):
        records = [
            TransferRecord(0.0, 0, 500.0, 10.0, cache_hit=True),   # hit: dropped
            TransferRecord(1.0, 0, 100.0, 2.0, cache_hit=False),   # small: dropped
            TransferRecord(2.0, 0, 400.0, 10.0, cache_hit=False),  # kept (40 KB/s)
            TransferRecord(3.0, 0, 800.0, 10.0, cache_hit=False),  # kept (80 KB/s)
        ]
        analysis = ProxyLogAnalyzer().analyze(records)
        assert analysis.samples.size == 2
        assert sorted(analysis.samples.tolist()) == pytest.approx([40.0, 80.0])

    def test_no_surviving_records_raises(self):
        records = [TransferRecord(0.0, 0, 10.0, 1.0, cache_hit=False)]
        with pytest.raises(ConfigurationError):
            ProxyLogAnalyzer(min_object_kb=200.0).analyze(records)

    def test_reproduces_nlanr_fractions(self):
        # End-to-end: synthetic log -> analysis -> Figure 2 anchor fractions.
        log = SyntheticProxyLog(num_servers=200, num_records=30_000, seed=0)
        analysis = ProxyLogAnalyzer().analyze(log.generate())
        assert analysis.fraction_below(50.0) == pytest.approx(0.37, abs=0.07)
        assert analysis.fraction_below(100.0) == pytest.approx(0.56, abs=0.07)

    def test_cdf_monotone_and_normalised(self):
        log = SyntheticProxyLog(num_servers=50, num_records=5_000, seed=1)
        analysis = ProxyLogAnalyzer().analyze(log.generate())
        _, cdf = analysis.cdf()
        assert np.all(np.diff(cdf) >= -1e-12)
        assert cdf[-1] == pytest.approx(1.0)

    def test_ratio_statistics_reflect_variability_model(self):
        log = SyntheticProxyLog(num_servers=100, num_records=20_000, seed=2)
        analysis = ProxyLogAnalyzer().analyze(log.generate())
        stats = analysis.ratio_statistics()
        assert stats["mean"] == pytest.approx(1.0, abs=0.1)
        assert 0.4 < stats["coefficient_of_variation"] < 1.1

    def test_to_distribution_is_sampleable(self, rng):
        log = SyntheticProxyLog(num_servers=50, num_records=10_000, seed=3)
        analysis = ProxyLogAnalyzer().analyze(log.generate())
        distribution = analysis.to_distribution()
        samples = distribution.sample(1_000, rng)
        assert samples.min() >= 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProxyLogAnalyzer(min_object_kb=-1.0)
        with pytest.raises(ConfigurationError):
            ProxyLogAnalyzer(bin_width=0.0)


def test_build_nlanr_like_models_end_to_end():
    distribution, ratio_stats = build_nlanr_like_models(
        num_servers=100, num_records=10_000, seed=5
    )
    assert 0.2 < distribution.cdf(50.0) < 0.55
    assert ratio_stats["coefficient_of_variation"] > 0.3
