"""Delivery topology: origin servers, proxy cache, client cloud (Figure 1).

The paper's architecture has three tiers: origin servers somewhere on the
Internet, a caching proxy at the edge, and a homogeneous cloud of clients
behind the proxy with abundant last-mile bandwidth.  The topology object
wires a :class:`~repro.workload.catalog.Catalog` to a
:class:`~repro.network.path.PathRegistry` so that, given an object, the
simulator can look up the bandwidth of the path to that object's origin
server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.network.distributions import BandwidthDistribution, NLANRBandwidthDistribution
from repro.network.path import NetworkPath, PathRegistry
from repro.network.variability import BandwidthVariabilityModel, ConstantVariability
from repro.workload.catalog import Catalog, MediaObject


@dataclass(frozen=True)
class OriginServer:
    """An origin server hosting a subset of the catalog."""

    server_id: int
    object_ids: tuple

    @property
    def object_count(self) -> int:
        """Number of objects hosted on this server."""
        return len(self.object_ids)


@dataclass(frozen=True)
class ClientCloud:
    """The homogeneous client population behind the proxy.

    The paper assumes abundant bandwidth between clients and the proxy
    ("we assume abundant bandwidth at the last mile of the client side"),
    so the only attribute that matters to the model is how to interpret the
    cache-to-client hop: effectively infinite.  The class exists so the
    assumption is explicit and so extensions (heterogeneous last miles) have
    a place to live.
    """

    num_clients: int = 1
    last_mile_bandwidth: float = float("inf")

    def __post_init__(self) -> None:
        if self.num_clients <= 0:
            raise ConfigurationError(f"num_clients must be positive, got {self.num_clients}")
        if self.last_mile_bandwidth <= 0:
            raise ConfigurationError(
                f"last_mile_bandwidth must be positive, got {self.last_mile_bandwidth}"
            )


@dataclass(frozen=True)
class ProxyNode:
    """The edge proxy cache: its capacity is the knapsack constraint ``C``."""

    capacity_kb: float

    def __post_init__(self) -> None:
        if self.capacity_kb < 0:
            raise ConfigurationError(
                f"capacity must be non-negative, got {self.capacity_kb}"
            )


@dataclass
class DeliveryTopology:
    """The full server / proxy / client wiring for one simulation."""

    catalog: Catalog
    paths: PathRegistry
    proxy: ProxyNode
    clients: ClientCloud = field(default_factory=ClientCloud)

    def __post_init__(self) -> None:
        missing = [
            server_id
            for server_id in self.catalog.server_ids()
            if server_id not in self.paths
        ]
        if missing:
            raise ConfigurationError(
                f"catalog references servers with no registered path: {missing[:5]}"
                + ("..." if len(missing) > 5 else "")
            )

    def path_for(self, obj: MediaObject) -> NetworkPath:
        """Return the cache-to-server path serving the given object."""
        return self.paths.get(obj.server_id)

    def path_for_object_id(self, object_id: int) -> NetworkPath:
        """Return the path serving the object with the given id."""
        return self.paths.get(self.catalog.get(object_id).server_id)

    def servers(self) -> List[OriginServer]:
        """Group catalog objects by hosting server."""
        by_server: Dict[int, List[int]] = {}
        for obj in self.catalog:
            by_server.setdefault(obj.server_id, []).append(obj.object_id)
        return [
            OriginServer(server_id=server_id, object_ids=tuple(ids))
            for server_id, ids in sorted(by_server.items())
        ]

    def bottleneck_objects(self) -> List[int]:
        """Objects whose bit-rate exceeds their path's base bandwidth.

        These are the objects the network-aware policies consider caching at
        all; everything else streams fine straight from its origin server.
        """
        return [
            obj.object_id
            for obj in self.catalog
            if obj.bitrate > self.path_for(obj).base_bandwidth
        ]

    @classmethod
    def build(
        cls,
        catalog: Catalog,
        cache_capacity_kb: float,
        bandwidth_distribution: Optional[BandwidthDistribution] = None,
        variability: Optional[BandwidthVariabilityModel] = None,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
    ) -> "DeliveryTopology":
        """Construct a topology by sampling per-server base bandwidths.

        This is the standard construction of the paper's simulations: one
        path per origin server, base bandwidth drawn from the NLANR-derived
        distribution, and a shared variability model (constant, NLANR-like,
        or measured-path-like depending on the experiment).
        """
        rng = rng or np.random.default_rng(seed)
        distribution = bandwidth_distribution or NLANRBandwidthDistribution()
        variability = variability or ConstantVariability()
        paths = PathRegistry.from_distribution(
            catalog.server_ids(), distribution, rng, variability
        )
        return cls(
            catalog=catalog,
            paths=paths,
            proxy=ProxyNode(capacity_kb=cache_capacity_kb),
        )
