"""Value-based policies: maximise the revenue added by the cache (§2.6, §4.4).

Each object has a value ``V_i`` that is earned whenever the object can be
played *immediately* at full quality.  Caching the prefix
``[T_i r_i − T_i b_i]+`` of an object guarantees immediate service, so the
cache-content problem becomes a 0/1 knapsack with per-object weight
``[T_i r_i − T_i b_i]+`` and profit ``λ_i V_i``; the paper's greedy
approximation caches the objects with the highest profit density
``λ_i V_i / (T_i r_i − T_i b_i)``.

Three online policies implement this idea:

* **PB-V** — cache exactly the required prefix, ranked by profit density.
* **IB-V** — cache whole objects ranked by ``λ_i V_i / (T_i r_i b_i)``
  (preferring low-bandwidth, high-value, small objects), the integral
  variant of Section 4.4.
* **HybridPartialBandwidthValue** — PB-V with the bandwidth under-estimated
  by a factor ``e`` (Figure 12); ``e ≈ 0.5`` is the paper's sweet spot.

All three are ``bandwidth_keyed``: their profit densities divide by the
believed bandwidth, so under passive knowledge the reactive hook
(``docs/events.md``) re-keys their heap entries when a probe or — with
``SimulationConfig.reactive_passive`` — a per-request passive observation
shifts a path's estimate past the configured threshold.
"""

from __future__ import annotations

from repro.core.policies.base import CachePolicy, PolicyContext
from repro.exceptions import ConfigurationError
from repro.units import positive_part
from repro.workload.catalog import MediaObject


class HybridPartialBandwidthValuePolicy(CachePolicy):
    """PB-V with bandwidth under-estimation factor ``e`` (Figure 12).

    With ``e = 1`` this is exactly the PB-V policy of Section 2.6; smaller
    ``e`` caches a larger prefix per object, hedging against bandwidth
    variability at the cost of covering fewer objects.
    """

    allows_partial = True
    bandwidth_keyed = True

    def __init__(self, estimator_e: float = 1.0, **kwargs):
        if not 0.0 < estimator_e <= 1.0:
            raise ConfigurationError(
                f"estimator_e must be in (0, 1], got {estimator_e}"
            )
        super().__init__(**kwargs)
        self.estimator_e = float(estimator_e)
        self.name = f"PB-V(e={self.estimator_e:g})"

    def effective_bandwidth(self, ctx: PolicyContext) -> float:
        """The conservative bandwidth estimate ``e * b``."""
        return max(ctx.bandwidth * self.estimator_e, 1e-9)

    def _required_prefix(self, obj: MediaObject, ctx: PolicyContext) -> float:
        deficit = positive_part(obj.bitrate - self.effective_bandwidth(ctx))
        return deficit * obj.duration

    def utility(self, obj: MediaObject, ctx: PolicyContext) -> float:
        prefix = self._required_prefix(obj, ctx)
        if prefix <= 0:
            # The object needs no cache space to earn its value, so it should
            # never displace anything: give it the lowest possible priority.
            return 0.0
        return ctx.frequency * obj.value / prefix

    def target_cache_bytes(self, obj: MediaObject, ctx: PolicyContext) -> float:
        return self._required_prefix(obj, ctx)


class PartialBandwidthValuePolicy(HybridPartialBandwidthValuePolicy):
    """PB-V: greedy profit-density caching of the exact required prefix."""

    name = "PB-V"

    def __init__(self, **kwargs):
        super().__init__(estimator_e=1.0, **kwargs)
        self.name = "PB-V"


class IntegralBandwidthValuePolicy(CachePolicy):
    """IB-V: whole-object caching ranked by ``F_i V_i / (T_i r_i b_i)``.

    The ranking prefers objects with lower path bandwidth ``b_i``, higher
    value ``V_i``, and smaller size ``T_i r_i`` — the integral
    bandwidth-value-based policy of Section 4.4.  Objects whose path already
    sustains their bit-rate are not cached.
    """

    name = "IB-V"
    allows_partial = False
    bandwidth_keyed = True

    def utility(self, obj: MediaObject, ctx: PolicyContext) -> float:
        denominator = obj.size * max(ctx.bandwidth, 1e-9)
        return ctx.frequency * obj.value / denominator

    def target_cache_bytes(self, obj: MediaObject, ctx: PolicyContext) -> float:
        if obj.bitrate <= ctx.bandwidth:
            return 0.0
        return obj.size
