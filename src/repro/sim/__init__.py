"""Trace-driven simulation of the caching-accelerator architecture.

* :mod:`repro.sim.engine` — a small discrete-event simulation engine,
* :mod:`repro.sim.config` — simulation configuration,
* :mod:`repro.sim.metrics` — the paper's performance metrics (Section 3.3),
* :mod:`repro.sim.simulator` — the proxy-cache simulator proper,
* :mod:`repro.sim.runner` — multi-run averaging and parameter sweeps.
"""

from repro.sim.config import BandwidthKnowledge, SimulationConfig
from repro.sim.engine import Event, EventQueue, SimulationEngine
from repro.sim.metrics import MetricsCollector, SimulationMetrics
from repro.sim.runner import PolicyComparison, SweepResult, compare_policies, run_replications, sweep_cache_sizes
from repro.sim.sharing import SharingReport, StreamSharingAnalyzer, prefix_function_for_bandwidth
from repro.sim.simulator import ProxyCacheSimulator, SimulationResult

__all__ = [
    "BandwidthKnowledge",
    "Event",
    "EventQueue",
    "MetricsCollector",
    "PolicyComparison",
    "ProxyCacheSimulator",
    "SharingReport",
    "SimulationConfig",
    "SimulationEngine",
    "SimulationMetrics",
    "SimulationResult",
    "StreamSharingAnalyzer",
    "SweepResult",
    "compare_policies",
    "prefix_function_for_bandwidth",
    "run_replications",
    "sweep_cache_sizes",
]
