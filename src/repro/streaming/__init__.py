"""Streaming-media substrate: encodings, smoothing, and delivery sessions.

This package models the streaming side of the system:

* :mod:`repro.streaming.media` — CBR/VBR/layered stream encodings and their
  cumulative transmission schedules,
* :mod:`repro.streaming.smoothing` — the optimal work-ahead smoothing of
  Salehi et al. used to turn VBR schedules into low-variability ones
  (the paper assumes VBR objects are smoothed before caching decisions),
* :mod:`repro.streaming.session` — the joint cache + origin-server delivery
  model: startup delay, degraded-quality playout, and byte accounting,
* :mod:`repro.streaming.prefetch` — prefix prefetching schedules.
"""

from repro.streaming.media import CBRStream, LayeredEncoding, VBRStream
from repro.streaming.prefetch import PrefetchPlan, plan_prefix_prefetch
from repro.streaming.segmentation import Segment, SegmentationScheme, SegmentedPrefix
from repro.streaming.session import DeliveryOutcome, DeliverySession, ServiceMode
from repro.streaming.smoothing import optimal_smoothing, peak_rate, rate_variability

__all__ = [
    "CBRStream",
    "DeliveryOutcome",
    "DeliverySession",
    "LayeredEncoding",
    "PrefetchPlan",
    "Segment",
    "SegmentationScheme",
    "SegmentedPrefix",
    "ServiceMode",
    "VBRStream",
    "optimal_smoothing",
    "peak_rate",
    "plan_prefix_prefetch",
    "rate_variability",
]
