"""IF — Integral Frequency-based caching.

The first algorithm compared in Section 4.1: cache the objects with the
highest request frequency, whole objects only, regardless of the bandwidth
available from their origin servers.  It is the natural adaptation of LFU to
streaming objects and serves as the network-unaware baseline; the paper
shows it maximises traffic reduction but does poorly on service delay and
stream quality because it wastes space on popular objects that would stream
fine straight from their servers.
"""

from __future__ import annotations

from repro.core.policies.base import CachePolicy, PolicyContext
from repro.workload.catalog import MediaObject


class IntegralFrequencyPolicy(CachePolicy):
    """IF: utility ``F_i``, target the whole object, integral replacement."""

    name = "IF"
    allows_partial = False

    def utility(self, obj: MediaObject, ctx: PolicyContext) -> float:
        return ctx.frequency

    def target_cache_bytes(self, obj: MediaObject, ctx: PolicyContext) -> float:
        return obj.size
