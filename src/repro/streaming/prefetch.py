"""Prefix prefetching schedules for joint cache + server delivery.

Section 2.7 notes that restricting cached content to object *prefixes* makes
joint delivery straightforward: the client plays the prefix out of the cache
while the remainder ("suffix") is prefetched from the origin server in the
background.  This module computes the timing of that prefetch and verifies
that the suffix arrives before the playout position catches up with it —
the condition under which the cached prefix truly hides the slow server
path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.workload.catalog import MediaObject


@dataclass(frozen=True)
class PrefetchPlan:
    """The schedule for fetching an object's suffix during prefix playout.

    Attributes
    ----------
    prefix_bytes:
        KB of the object served from the cache.
    suffix_bytes:
        KB that must be fetched from the origin server.
    prefix_playout_seconds:
        How long the cached prefix plays for (prefix size / bit-rate).
    suffix_fetch_seconds:
        How long fetching the suffix takes at the server bandwidth.
    startup_delay:
        Extra delay (seconds) needed before playout can start so that the
        suffix is complete by the time the player reaches it.  Zero when
        the prefix is long enough.
    feasible_without_delay:
        True when the suffix download finishes during prefix playout.
    """

    prefix_bytes: float
    suffix_bytes: float
    prefix_playout_seconds: float
    suffix_fetch_seconds: float
    startup_delay: float
    feasible_without_delay: bool


def plan_prefix_prefetch(
    obj: MediaObject, cached_prefix_bytes: float, server_bandwidth: float
) -> PrefetchPlan:
    """Plan the suffix prefetch for an object with a cached prefix.

    The client starts playing the cached prefix immediately (or after
    ``startup_delay`` seconds if the prefix is too short) while the suffix
    streams from the origin server at ``server_bandwidth`` KB/s.  Playback is
    continuous iff the suffix transfer completes no later than the moment
    the playout position reaches the end of the prefix, i.e.::

        suffix_bytes / b  <=  startup_delay + prefix_bytes / r

    which rearranges to the paper's delay formula
    ``startup_delay = [T r − T b − x]+ / b``.
    """
    if cached_prefix_bytes < 0:
        raise ConfigurationError(
            f"cached_prefix_bytes must be non-negative, got {cached_prefix_bytes}"
        )
    if server_bandwidth < 0:
        raise ConfigurationError(
            f"server_bandwidth must be non-negative, got {server_bandwidth}"
        )

    prefix = min(float(cached_prefix_bytes), obj.size)
    suffix = obj.size - prefix
    prefix_playout = prefix / obj.bitrate
    if suffix <= 0:
        return PrefetchPlan(
            prefix_bytes=prefix,
            suffix_bytes=0.0,
            prefix_playout_seconds=prefix_playout,
            suffix_fetch_seconds=0.0,
            startup_delay=0.0,
            feasible_without_delay=True,
        )
    if server_bandwidth <= 0:
        return PrefetchPlan(
            prefix_bytes=prefix,
            suffix_bytes=suffix,
            prefix_playout_seconds=prefix_playout,
            suffix_fetch_seconds=float("inf"),
            startup_delay=float("inf"),
            feasible_without_delay=False,
        )

    suffix_fetch = suffix / server_bandwidth
    # While the suffix streams, playout also proceeds through it, so the
    # binding constraint is the paper's delay formula, not simply
    # suffix_fetch <= prefix_playout.
    startup_delay = obj.startup_delay(server_bandwidth, prefix)
    return PrefetchPlan(
        prefix_bytes=prefix,
        suffix_bytes=suffix,
        prefix_playout_seconds=prefix_playout,
        suffix_fetch_seconds=suffix_fetch,
        startup_delay=startup_delay,
        feasible_without_delay=startup_delay <= 0.0,
    )
