"""Tests for delivery sessions (joint cache + server service) and prefetching."""

import pytest

from repro.exceptions import ConfigurationError
from repro.streaming.prefetch import plan_prefix_prefetch
from repro.streaming.session import (
    DeliverySession,
    ServiceMode,
    delay_reduction,
    joint_playout_feasible,
    outcome_without_cache,
    required_prefix_for_immediate_playout,
)
from repro.workload.catalog import MediaObject


@pytest.fixture
def obj():
    """A 100-second, 48 KB/s object (4800 KB) worth $5."""
    return MediaObject(object_id=7, duration=100.0, bitrate=48.0, value=5.0, layers=4)


class TestDeliverySession:
    def test_no_cache_enough_bandwidth(self, obj):
        session = DeliverySession(obj, cached_bytes=0.0, server_bandwidth=60.0)
        assert session.service_delay() == 0.0
        assert session.stream_quality() == 1.0
        assert session.supports_immediate_full_quality()

    def test_no_cache_insufficient_bandwidth(self, obj):
        session = DeliverySession(obj, cached_bytes=0.0, server_bandwidth=24.0)
        assert session.service_delay() == pytest.approx(100.0)
        assert session.stream_quality() == pytest.approx(0.5)
        assert not session.supports_immediate_full_quality()

    def test_exact_prefix_hides_delay(self, obj):
        prefix = required_prefix_for_immediate_playout(obj, 24.0)
        session = DeliverySession(obj, cached_bytes=prefix, server_bandwidth=24.0)
        assert session.service_delay() == 0.0
        assert session.stream_quality() == 1.0

    def test_half_prefix_halves_delay(self, obj):
        prefix = required_prefix_for_immediate_playout(obj, 24.0)
        session = DeliverySession(obj, cached_bytes=prefix / 2, server_bandwidth=24.0)
        assert session.service_delay() == pytest.approx(50.0)

    def test_cached_bytes_capped_at_object_size(self, obj):
        session = DeliverySession(obj, cached_bytes=10 * obj.size, server_bandwidth=1.0)
        assert session.bytes_from_cache() == pytest.approx(obj.size)
        assert session.bytes_from_server() == 0.0
        assert session.service_delay() == 0.0

    def test_outcome_byte_accounting(self, obj):
        session = DeliverySession(obj, cached_bytes=1000.0, server_bandwidth=24.0)
        outcome = session.outcome()
        assert outcome.bytes_from_cache == pytest.approx(1000.0)
        assert outcome.bytes_from_server == pytest.approx(obj.size - 1000.0)
        assert outcome.total_bytes == pytest.approx(obj.size)
        assert outcome.cached_fraction == pytest.approx(1000.0 / obj.size)
        assert outcome.value == 5.0

    def test_outcome_modes(self, obj):
        delayed = DeliverySession(obj, 0.0, 24.0).outcome()
        assert delayed.mode_if_waiting is ServiceMode.DELAYED_FULL
        assert delayed.mode_if_degrading is ServiceMode.DEGRADED
        immediate = DeliverySession(obj, 0.0, 50.0).outcome()
        assert immediate.mode_if_waiting is ServiceMode.IMMEDIATE_FULL
        assert immediate.mode_if_degrading is ServiceMode.IMMEDIATE_FULL

    def test_validation(self, obj):
        with pytest.raises(ConfigurationError):
            DeliverySession(obj, cached_bytes=-1.0, server_bandwidth=10.0)
        with pytest.raises(ConfigurationError):
            DeliverySession(obj, cached_bytes=0.0, server_bandwidth=-10.0)


class TestHelpers:
    def test_required_prefix_zero_with_enough_bandwidth(self, obj):
        assert required_prefix_for_immediate_playout(obj, 48.0) == 0.0
        assert required_prefix_for_immediate_playout(obj, 24.0) == pytest.approx(2400.0)

    def test_joint_playout_feasible(self, obj):
        assert joint_playout_feasible(obj, 2400.0, 24.0)
        assert not joint_playout_feasible(obj, 1000.0, 24.0)
        assert joint_playout_feasible(obj, 1000.0, 24.0, startup_tolerance=60.0)
        with pytest.raises(ConfigurationError):
            joint_playout_feasible(obj, 0.0, 24.0, startup_tolerance=-1.0)

    def test_outcome_without_cache(self, obj):
        outcome = outcome_without_cache(obj, 24.0)
        assert outcome.bytes_from_cache == 0.0
        assert outcome.service_delay == pytest.approx(100.0)

    def test_delay_reduction(self, obj):
        assert delay_reduction(obj, 2400.0, 24.0) == pytest.approx(100.0)
        assert delay_reduction(obj, 1200.0, 24.0) == pytest.approx(50.0)
        assert delay_reduction(obj, 0.0, 24.0) == 0.0
        # Both infinite (zero bandwidth, nothing cached): no reduction.
        assert delay_reduction(obj, 0.0, 0.0) == 0.0


class TestPrefetchPlanning:
    def test_fully_cached_object_needs_no_prefetch(self, obj):
        plan = plan_prefix_prefetch(obj, obj.size, server_bandwidth=1.0)
        assert plan.suffix_bytes == 0.0
        assert plan.feasible_without_delay
        assert plan.startup_delay == 0.0

    def test_prefetch_matches_delay_formula(self, obj):
        plan = plan_prefix_prefetch(obj, 1200.0, server_bandwidth=24.0)
        assert plan.prefix_bytes == pytest.approx(1200.0)
        assert plan.suffix_bytes == pytest.approx(obj.size - 1200.0)
        assert plan.startup_delay == pytest.approx(obj.startup_delay(24.0, 1200.0))
        assert not plan.feasible_without_delay

    def test_sufficient_prefix_is_feasible(self, obj):
        prefix = required_prefix_for_immediate_playout(obj, 24.0)
        plan = plan_prefix_prefetch(obj, prefix, server_bandwidth=24.0)
        assert plan.feasible_without_delay
        # The suffix transfer finishes exactly when playout reaches it.
        playout_budget = plan.startup_delay + plan.prefix_bytes / obj.bitrate
        assert plan.suffix_fetch_seconds <= playout_budget + obj.duration

    def test_zero_bandwidth_infeasible(self, obj):
        plan = plan_prefix_prefetch(obj, 100.0, server_bandwidth=0.0)
        assert plan.startup_delay == float("inf")
        assert not plan.feasible_without_delay

    def test_validation(self, obj):
        with pytest.raises(ConfigurationError):
            plan_prefix_prefetch(obj, -1.0, 10.0)
        with pytest.raises(ConfigurationError):
            plan_prefix_prefetch(obj, 0.0, -10.0)
