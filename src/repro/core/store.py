"""The proxy's cache store.

The store tracks, for every object, how many kilobytes of its *prefix* are
currently cached, and enforces the capacity constraint
``sum_i x_i <= C`` from the paper's optimisation problem (Section 2.2).
It is deliberately policy-agnostic: all decisions about *what* to cache live
in :mod:`repro.core.policies`; the store only guarantees the accounting is
consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.exceptions import CapacityError, ConfigurationError


@dataclass(slots=True)
class CachedObjectState:
    """Book-keeping for one (partially) cached object.

    ``__slots__`` matters here: one instance exists per cached object and
    the replacement loop reads/writes them on every request.
    """

    object_id: int
    cached_bytes: float
    last_access_time: float = 0.0
    insertions: int = 0


class CacheStore:
    """Byte-accurate storage accounting for partial object prefixes.

    Parameters
    ----------
    capacity_kb:
        Total cache capacity ``C`` in KB.  A zero-capacity store is legal
        (it models the no-cache baseline) — every admission attempt simply
        fails.
    """

    def __init__(self, capacity_kb: float):
        if capacity_kb < 0:
            raise ConfigurationError(f"capacity must be non-negative, got {capacity_kb}")
        self.capacity_kb = float(capacity_kb)
        self._entries: Dict[int, CachedObjectState] = {}
        self._used = 0.0
        #: Monotone count of complete removals (an object's cached prefix
        #: shrinking to zero through :meth:`set_cached_bytes`, which is
        #: where :meth:`trim` / :meth:`evict` land).  :meth:`clear` does
        #: not count: it resets a run, it is not a replacement decision.
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._entries

    def __iter__(self) -> Iterator[CachedObjectState]:
        return iter(self._entries.values())

    @property
    def used_kb(self) -> float:
        """Total KB currently occupied."""
        return self._used

    @property
    def free_kb(self) -> float:
        """Remaining capacity in KB (never negative)."""
        free = self.capacity_kb - self._used
        return free if free > 0.0 else 0.0

    @property
    def occupancy(self) -> float:
        """Fraction of capacity in use (0 for an empty or zero-capacity store)."""
        if self.capacity_kb <= 0:
            return 0.0
        return self._used / self.capacity_kb

    def cached_bytes(self, object_id: int) -> float:
        """KB of the object's prefix currently cached (0 if absent)."""
        entry = self._entries.get(object_id)
        return entry.cached_bytes if entry is not None else 0.0

    def state(self, object_id: int) -> CachedObjectState:
        """Return the book-keeping entry, raising ``KeyError`` if absent."""
        return self._entries[object_id]

    def object_ids(self) -> List[int]:
        """Ids of all objects with a cached prefix."""
        return list(self._entries.keys())

    def touch(self, object_id: int, now: float) -> None:
        """Record an access time for recency-based policies; no-op if absent."""
        entry = self._entries.get(object_id)
        if entry is not None:
            entry.last_access_time = now

    def touch_and_bytes(self, object_id: int, now: float) -> float:
        """Record an access and return the cached prefix KB, in one lookup.

        Equivalent to :meth:`touch` followed by :meth:`cached_bytes`; the
        replacement engine calls this once per request, so the single dict
        probe matters.
        """
        entry = self._entries.get(object_id)
        if entry is None:
            return 0.0
        entry.last_access_time = now
        return entry.cached_bytes

    def set_cached_bytes(self, object_id: int, target_bytes: float, now: float = 0.0) -> None:
        """Set the cached prefix of an object to exactly ``target_bytes`` KB.

        Growing beyond the available free space raises
        :class:`~repro.exceptions.CapacityError`; shrinking to zero removes
        the entry entirely.
        """
        if target_bytes < 0:
            raise ConfigurationError(
                f"target_bytes must be non-negative, got {target_bytes}"
            )
        current = self.cached_bytes(object_id)
        delta = target_bytes - current
        # The tolerance is relative to the capacity: callers legitimately grow
        # an object by exactly the remaining free space, and the float
        # round-trip (current + free) - current can overshoot by a few ULPs.
        tolerance = 1e-9 * max(self.capacity_kb, 1.0)
        if delta > self.free_kb + tolerance:
            raise CapacityError(
                f"cannot grow object {object_id} by {delta:.1f} KB; "
                f"only {self.free_kb:.1f} KB free"
            )
        if target_bytes <= 0:
            if self._entries.pop(object_id, None) is not None:
                self.evictions += 1
        else:
            entry = self._entries.get(object_id)
            if entry is None:
                entry = CachedObjectState(
                    object_id=object_id,
                    cached_bytes=0.0,
                    last_access_time=now,
                )
                self._entries[object_id] = entry
            entry.cached_bytes = target_bytes
            entry.last_access_time = now
            entry.insertions += 1 if delta > 0 else 0
        self._used = max(self._used + delta, 0.0)

    def grow(self, object_id: int, additional_bytes: float, now: float = 0.0) -> None:
        """Grow an object's cached prefix by ``additional_bytes`` KB."""
        if additional_bytes < 0:
            raise ConfigurationError(
                f"additional_bytes must be non-negative, got {additional_bytes}"
            )
        self.set_cached_bytes(object_id, self.cached_bytes(object_id) + additional_bytes, now)

    def trim(self, object_id: int, bytes_to_remove: float) -> float:
        """Remove up to ``bytes_to_remove`` KB from an object's cached prefix.

        Returns the number of KB actually reclaimed (0 if the object is not
        cached).  Trimming everything removes the entry.
        """
        if bytes_to_remove < 0:
            raise ConfigurationError(
                f"bytes_to_remove must be non-negative, got {bytes_to_remove}"
            )
        current = self.cached_bytes(object_id)
        if current <= 0:
            return 0.0
        reclaimed = min(current, bytes_to_remove)
        self.set_cached_bytes(object_id, current - reclaimed)
        return reclaimed

    def evict(self, object_id: int) -> float:
        """Remove an object entirely; returns the KB reclaimed."""
        return self.trim(object_id, float("inf"))

    def clear(self) -> None:
        """Empty the cache."""
        self._entries.clear()
        self._used = 0.0

    def snapshot(self) -> Dict[int, float]:
        """Map of object id to cached KB (a copy, safe to mutate)."""
        return {oid: entry.cached_bytes for oid, entry in self._entries.items()}

    def verify_consistency(self) -> bool:
        """Check that the used-bytes counter matches the sum of entries.

        Used by tests and by the simulator's optional integrity checks.
        """
        total = sum(entry.cached_bytes for entry in self._entries.values())
        return abs(total - self._used) < 1e-6 and self._used <= self.capacity_kb + 1e-6

    def largest_entries(self, count: int = 10) -> List[Tuple[int, float]]:
        """The ``count`` largest cached prefixes, for diagnostics."""
        ranked = sorted(
            ((oid, entry.cached_bytes) for oid, entry in self._entries.items()),
            key=lambda item: item[1],
            reverse=True,
        )
        return ranked[:count]
