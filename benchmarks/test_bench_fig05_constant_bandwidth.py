"""Figure 5 — IF vs PB vs IB under the constant-bandwidth assumption.

Regenerates the three panels (traffic reduction ratio, average service
delay, average stream quality as functions of cache size) and asserts the
orderings the paper reports: IF reduces the most traffic, PB achieves the
lowest delay and the highest quality, IB lies in between.
"""

from benchmarks.conftest import (
    BENCH_CACHE_FRACTIONS,
    BENCH_JOBS,
    BENCH_RUNS,
    BENCH_SCALE,
    report,
    run_once,
    summarize_sweep,
)
from repro.analysis.experiments import experiment_fig5_constant_bandwidth


def test_fig5_constant_bandwidth(benchmark):
    result = run_once(
        benchmark,
        experiment_fig5_constant_bandwidth,
        scale=BENCH_SCALE,
        num_runs=BENCH_RUNS,
        cache_fractions=BENCH_CACHE_FRACTIONS,
        seed=0,
        n_jobs=BENCH_JOBS,
    )
    sweep = result.data["sweep"]
    extra = {}
    for metric in ("traffic_reduction_ratio", "average_service_delay", "average_stream_quality"):
        extra.update(summarize_sweep(sweep, metric))
    report(benchmark, result, extra=extra)

    # Check the orderings at every cache size.  A small slack absorbs the
    # run-to-run noise of the reduced benchmark scale; the full-scale curves
    # in the paper do not cross at all.
    slack = 0.02
    for index in range(len(sweep.parameter_values)):
        trr = {p: sweep.series(p, "traffic_reduction_ratio")[index] for p in sweep.policies()}
        delay = {p: sweep.series(p, "average_service_delay")[index] for p in sweep.policies()}
        quality = {p: sweep.series(p, "average_stream_quality")[index] for p in sweep.policies()}
        # Figure 5(a): IF highest traffic reduction, PB lowest.
        assert trr["IF"] >= trr["IB"] * (1 - slack) >= trr["PB"] * (1 - slack) ** 2
        # Figure 5(b): PB lowest delay, IF highest; IB in between.
        assert delay["PB"] <= delay["IB"] * (1 + slack) <= delay["IF"] * (1 + slack) ** 2
        # Figure 5(c): PB highest quality, IF lowest.
        assert quality["PB"] >= quality["IB"] * (1 - slack) >= quality["IF"] * (1 - slack) ** 2

    # At the largest cache size the separation is clear: strict ordering holds.
    last = len(sweep.parameter_values) - 1
    assert sweep.series("IF", "traffic_reduction_ratio")[last] > sweep.series(
        "PB", "traffic_reduction_ratio"
    )[last]
    assert sweep.series("PB", "average_service_delay")[last] < sweep.series(
        "IF", "average_service_delay"
    )[last]
    assert sweep.series("PB", "average_stream_quality")[last] > sweep.series(
        "IF", "average_stream_quality"
    )[last]

    # Larger caches monotonically improve every policy's delay.
    for policy in sweep.policies():
        series = sweep.series(policy, "average_service_delay")
        assert series[-1] <= series[0]
