"""Simulation configuration.

A :class:`SimulationConfig` bundles everything about *how* a trace is
replayed that is independent of the workload itself: the cache capacity, the
bandwidth model and its variability, how the cache learns bandwidth
(oracle measurements versus passive estimation, optionally refreshed by
periodic re-measurement between requests), and the warm-up protocol.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.network.distributions import BandwidthDistribution, NLANRBandwidthDistribution
from repro.network.topology import ClientCloud
from repro.network.variability import BandwidthVariabilityModel, ConstantVariability
from repro.obs.config import ObservabilityConfig
from repro.sim.events import RemeasurementConfig
from repro.sim.faults import FaultConfig
from repro.sim.hierarchy import HierarchyConfig
from repro.sim.streaming import StreamingConfig
from repro.units import gb_to_kb


class BandwidthKnowledge(enum.Enum):
    """How the cache learns the bandwidth of each cache-to-server path."""

    #: The cache knows each path's long-term average bandwidth exactly
    #: (the paper's default assumption: the cache "measures" bandwidth).
    ORACLE = "oracle"
    #: The cache estimates bandwidth passively from the throughput of
    #: completed transfers (Section 2.7's passive measurement).
    PASSIVE = "passive"


@dataclass(frozen=True)
class ClientCloudConfig:
    """How the per-client last-mile hop is modeled in a simulation.

    The trace's ``client_id`` column is hashed into ``groups`` client
    groups (``client_id % groups``), and each group gets one last-mile
    :class:`~repro.network.path.NetworkPath`.  Exactly one of two modes
    provisions the group base bandwidths:

    * ``bandwidth`` — every group gets this base bandwidth (KB/s).  ``inf``
      models the hop explicitly while keeping it non-binding, which is how
      the paper's abundant-last-mile assumption is reproduced bit-for-bit
      through the composition code.
    * ``distribution`` — one draw per group from a
      :class:`~repro.network.distributions.BandwidthDistribution`
      (heterogeneous clouds, e.g. the NLANR model).

    With neither given, ``bandwidth=inf`` is assumed.  ``variability``
    modulates every group's per-request draw (shared model instance, so
    batched draws stay available); ``seed`` adds entropy to the cloud's
    dedicated random stream — last-mile construction and per-request draws
    never touch the request stream's generator (see ``docs/clients.md``).

    ``estimate_last_mile`` opts the reactive hook into **per-group
    last-mile estimation**: under passive-driven re-keying
    (:attr:`SimulationConfig.reactive_passive`) each request's *delivered*
    throughput — the bottleneck of the origin hop and the client group's
    last mile — is recorded in the estimator's ``(server, group)`` keyed
    mode, and the rekeyer compares each group's view on its own delivered
    trajectory instead of the origin estimate capped at the group base.  A
    last-mile degradation invisible to the origin estimate can then still
    re-key the heap.  Metric arithmetic is untouched either way (the group
    estimates live in a separate keyed space).
    """

    groups: int = 1
    bandwidth: Optional[float] = None
    distribution: Optional[BandwidthDistribution] = None
    variability: Optional[BandwidthVariabilityModel] = None
    seed: int = 0
    estimate_last_mile: bool = False

    def __post_init__(self) -> None:
        if self.groups <= 0:
            raise ConfigurationError(f"groups must be positive, got {self.groups}")
        if self.bandwidth is not None and self.distribution is not None:
            raise ConfigurationError(
                "give either a homogeneous bandwidth or a distribution, not both"
            )
        if self.bandwidth is not None and self.bandwidth <= 0:
            raise ConfigurationError(
                f"client-cloud bandwidth must be positive, got {self.bandwidth}"
            )

    def build_cloud(self, rng: "np.random.Generator") -> ClientCloud:
        """Materialise the configured :class:`ClientCloud`.

        ``rng`` must be the cloud's *dedicated* generator (the simulator
        seeds it from ``(stream tag, simulation seed, config seed)``), so
        attaching a cloud never perturbs origin-path construction or the
        request stream's bandwidth draws.
        """
        if self.distribution is not None:
            return ClientCloud.from_distribution(
                self.groups, self.distribution, rng, variability=self.variability
            )
        bandwidth = self.bandwidth if self.bandwidth is not None else float("inf")
        return ClientCloud.homogeneous(
            bandwidth, variability=self.variability, groups=self.groups
        )


@dataclass
class SimulationConfig:
    """Parameters of one trace-driven simulation run.

    Attributes
    ----------
    cache_size_gb:
        Proxy cache capacity in GB (the paper varies this from 4 to 128 GB,
        i.e. about 0.5% to 16.9% of the 790 GB unique object size).
    bandwidth_distribution:
        Distribution of per-path base bandwidth; defaults to the NLANR model
        of Figure 2.
    variability:
        Per-request bandwidth variability model; defaults to constant
        bandwidth (the Figure 5 setting).
    bandwidth_knowledge:
        Whether policies see oracle base bandwidths or passive estimates.
    warmup_fraction:
        Fraction of the trace used to warm the cache before metrics are
        collected (the paper uses the first half).
    min_path_bandwidth:
        Floor (KB/s) applied to sampled base bandwidths so that a handful of
        near-zero draws cannot dominate the delay average; the paper's
        bandwidth samples come from completed transfers and therefore have
        an implicit floor as well.
    passive_smoothing:
        EWMA weight of the passive estimator (only used with
        ``BandwidthKnowledge.PASSIVE``).
    remeasurement:
        Optional :class:`~repro.sim.events.RemeasurementConfig` enabling
        periodic bandwidth re-measurement between requests: each configured
        path is sampled on its cadence and the samples feed the passive
        estimator (under ``BandwidthKnowledge.PASSIVE``) and the run's
        :class:`~repro.network.measurement.BandwidthMeasurementLog`.
        Scheduling re-measurement routes the replay through an
        event-capable path (the columnar event loop for dense columnar
        traces, the classic event calendar otherwise); see
        ``docs/events.md``.
    client_clouds:
        Optional :class:`ClientCloudConfig` modeling per-client last-mile
        bandwidth: each client group gets its own cache-to-client path and
        every request experiences the bottleneck of its origin hop and its
        client's last-mile hop.  ``None`` (default) keeps the paper's
        abundant-last-mile assumption; see ``docs/clients.md``.
    reactive_threshold:
        Optional fractional threshold enabling the reactive policy hook:
        when a bandwidth-belief update (a periodic re-measurement probe, or
        — with ``reactive_passive`` — an ordinary request's passive
        observation) moves a path's believed bandwidth by more than this
        fraction relative to the value the policy was last re-keyed at,
        the active policy's heap entries for objects on that path are
        re-keyed immediately instead of waiting for the next request.
        Requires ``BandwidthKnowledge.PASSIVE`` and at least one shift
        source (``remeasurement`` or ``reactive_passive``); see
        ``docs/events.md``.
    reactive_passive:
        When True, the passive per-request observations themselves drive
        the reactive hook on every replay path — the paper's "free"
        measurements can move heap keys without waiting for a probe.
        Requires ``reactive_threshold``.
    reactive_hysteresis:
        Optional re-arm band (fraction, in ``(0, reactive_threshold]``):
        after a re-key the shifted view is disarmed and only re-arms once
        its believed bandwidth re-enters ``hysteresis x anchor`` of the new
        anchor, so an oscillating estimate cannot re-key on every swing.
        ``None`` (default) keeps every view always armed.
    reactive_rekey_cap:
        Optional hard per-server budget of reactive re-keys per run; shifts
        past the budget are counted on
        ``SimulationResult.reactive_suppressed`` instead of re-keying.
    faults:
        Optional :class:`~repro.sim.faults.FaultConfig` injecting origin
        outages, last-mile link failures, and bandwidth flaps into the
        replay, together with the fetch timeout / retry / serve-stale
        model.  ``None`` (default) replays a fault-free network and keeps
        every replay path bit-identical to the pre-fault simulator; see
        ``docs/faults.md``.
    streaming:
        Optional :class:`~repro.sim.streaming.StreamingConfig` serving a
        (deterministic) fraction of the catalog as segment-aware media
        streams: partial prefix residency backed by
        :class:`~repro.streaming.segmentation.SegmentedPrefix`,
        session-position prefetch, and the wait / degrade / abandon QoE
        model of :class:`~repro.sim.streaming.StreamingDeliveryEngine`.
        ``None`` (default) keeps every replay path bit-identical to the
        pre-streaming simulator; see ``docs/streaming.md``.
    hierarchy:
        Optional :class:`~repro.sim.hierarchy.HierarchyConfig` replacing
        the single proxy with a multi-cache fleet: per-pop edge caches,
        parent tiers joined by static uplinks, and optional ICP-style
        sibling lookups, each tier running its own store and policy
        instance.  ``None`` (default) keeps every replay path
        bit-identical to the single-proxy simulator.  Incompatible with
        ``streaming`` and the reactive re-keying machinery (both assume
        the single proxy store); see ``docs/hierarchy.md``.
    observability:
        Optional :class:`~repro.obs.config.ObservabilityConfig` switching
        on the run's observability layers: the windowed metrics timeline
        (``SimulationResult.timeline``), the JSONL event trace, and the
        per-stage profiler (``SimulationResult.profile``).  ``None``
        (default) records nothing and keeps the replay loops on their
        uninstrumented hot path — simulated results are bit-identical
        either way; see ``docs/observability.md``.
    seed:
        Seed for the simulation's random number generator (path bandwidth
        assignment and per-request variability draws).
    verify_store:
        When True the simulator asserts cache-store consistency after every
        request; slows the run, intended for tests.
    """

    cache_size_gb: float = 16.0
    bandwidth_distribution: BandwidthDistribution = field(
        default_factory=NLANRBandwidthDistribution
    )
    variability: BandwidthVariabilityModel = field(default_factory=ConstantVariability)
    bandwidth_knowledge: BandwidthKnowledge = BandwidthKnowledge.ORACLE
    warmup_fraction: float = 0.5
    min_path_bandwidth: float = 4.0
    passive_smoothing: float = 0.25
    remeasurement: Optional[RemeasurementConfig] = None
    client_clouds: Optional[ClientCloudConfig] = None
    reactive_threshold: Optional[float] = None
    reactive_passive: bool = False
    reactive_hysteresis: Optional[float] = None
    reactive_rekey_cap: Optional[int] = None
    faults: Optional[FaultConfig] = None
    streaming: Optional[StreamingConfig] = None
    hierarchy: Optional[HierarchyConfig] = None
    observability: Optional[ObservabilityConfig] = None
    seed: int = 0
    verify_store: bool = False

    def __post_init__(self) -> None:
        if self.cache_size_gb < 0:
            raise ConfigurationError(
                f"cache_size_gb must be non-negative, got {self.cache_size_gb}"
            )
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigurationError(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction}"
            )
        if self.min_path_bandwidth < 0:
            raise ConfigurationError(
                f"min_path_bandwidth must be non-negative, got {self.min_path_bandwidth}"
            )
        if not 0.0 < self.passive_smoothing <= 1.0:
            raise ConfigurationError(
                f"passive_smoothing must be in (0, 1], got {self.passive_smoothing}"
            )
        if self.reactive_threshold is not None:
            if self.reactive_threshold <= 0:
                raise ConfigurationError(
                    f"reactive_threshold must be positive, got {self.reactive_threshold}"
                )
            if self.remeasurement is None and not self.reactive_passive:
                raise ConfigurationError(
                    "reactive_threshold requires a shift source: enable periodic "
                    "remeasurement, passive-driven re-keying (reactive_passive), "
                    "or both"
                )
            if self.bandwidth_knowledge is not BandwidthKnowledge.PASSIVE:
                raise ConfigurationError(
                    "reactive_threshold requires BandwidthKnowledge.PASSIVE: under "
                    "oracle knowledge the believed bandwidth never shifts"
                )
        elif self.reactive_passive:
            raise ConfigurationError(
                "reactive_passive requires reactive_threshold: without a "
                "threshold no shift is ever actionable"
            )
        if self.reactive_hysteresis is not None:
            if self.reactive_threshold is None:
                raise ConfigurationError(
                    "reactive_hysteresis requires reactive_threshold"
                )
            if not 0.0 < self.reactive_hysteresis <= self.reactive_threshold:
                raise ConfigurationError(
                    f"reactive_hysteresis must be in (0, reactive_threshold="
                    f"{self.reactive_threshold}], got {self.reactive_hysteresis}"
                )
        if self.reactive_rekey_cap is not None:
            if self.reactive_threshold is None:
                raise ConfigurationError(
                    "reactive_rekey_cap requires reactive_threshold"
                )
            if self.reactive_rekey_cap <= 0:
                raise ConfigurationError(
                    f"reactive_rekey_cap must be positive, got {self.reactive_rekey_cap}"
                )
        if self.hierarchy is not None:
            if self.streaming is not None:
                raise ConfigurationError(
                    "hierarchy cannot be combined with streaming: segment-"
                    "aware sessions assume the single proxy store (planned "
                    "follow-up, see docs/hierarchy.md)"
                )
            if self.reactive_threshold is not None:
                raise ConfigurationError(
                    "hierarchy cannot be combined with reactive re-keying: "
                    "the re-keyer walks the single proxy's policy heap "
                    "(planned follow-up, see docs/hierarchy.md)"
                )

    @property
    def cache_size_kb(self) -> float:
        """Cache capacity in KB."""
        return gb_to_kb(self.cache_size_gb)

    def with_cache_size(self, cache_size_gb: float) -> "SimulationConfig":
        """Copy of this config with a different cache capacity."""
        return replace(self, cache_size_gb=cache_size_gb)

    def with_seed(self, seed: int) -> "SimulationConfig":
        """Copy of this config with a different random seed."""
        return replace(self, seed=seed)

    def with_variability(
        self, variability: Optional[BandwidthVariabilityModel]
    ) -> "SimulationConfig":
        """Copy of this config with a different variability model."""
        return replace(self, variability=variability or ConstantVariability())

    def with_remeasurement(
        self, remeasurement: Optional[RemeasurementConfig]
    ) -> "SimulationConfig":
        """Copy of this config with a different re-measurement cadence.

        Pass ``None`` to disable periodic re-measurement (the default).
        """
        return replace(self, remeasurement=remeasurement)

    def with_client_clouds(
        self, client_clouds: Optional[ClientCloudConfig]
    ) -> "SimulationConfig":
        """Copy of this config with a different client-cloud model.

        Pass ``None`` to return to the paper's unmodeled abundant last
        mile (the default).
        """
        return replace(self, client_clouds=client_clouds)

    def with_faults(self, faults: Optional[FaultConfig]) -> "SimulationConfig":
        """Copy of this config with a different fault-injection model.

        Pass ``None`` to replay a fault-free network (the default).
        """
        return replace(self, faults=faults)

    def with_streaming(
        self, streaming: Optional[StreamingConfig]
    ) -> "SimulationConfig":
        """Copy of this config with a different streaming-session model.

        Pass ``None`` to serve every object with the plain whole-object
        delivery arithmetic (the default).
        """
        return replace(self, streaming=streaming)

    def with_hierarchy(
        self, hierarchy: Optional[HierarchyConfig]
    ) -> "SimulationConfig":
        """Copy of this config with a different cache-hierarchy layout.

        Pass ``None`` to return to the single network-aware proxy (the
        default).
        """
        return replace(self, hierarchy=hierarchy)

    def with_observability(
        self, observability: Optional[ObservabilityConfig]
    ) -> "SimulationConfig":
        """Copy of this config with a different observability setup.

        Pass ``None`` to record nothing (the default).
        """
        return replace(self, observability=observability)

    def cache_fraction_of(self, total_unique_kb: float) -> float:
        """Cache size as a fraction of the total unique object size."""
        if total_unique_kb <= 0:
            return 0.0
        return self.cache_size_kb / total_unique_kb
