"""Stream sharing (batching / patching) analysis at the proxy.

The paper's future-work section proposes "combining our partial caching
mechanisms with other streaming content delivery techniques, such as
patching and batching techniques at caching proxies".  This module provides
that extension as an analysis layer over a request trace:

* **Batching** — when requests for the same object arrive within one
  playback window of each other, the proxy can serve the later arrivals from
  the ongoing origin-server stream instead of opening a new one, so the
  suffix bytes are fetched from the server only once per *batch*.
* **Patching** — later arrivals additionally need the part of the stream
  they missed (the "patch") which, with prefix caching, is often already in
  the cache; the analysis reports how much of the patch traffic the cached
  prefix absorbs.

The analysis is deliberately independent of the replacement policies: it
takes a trace, the catalog, and a prefix-size function, and reports how many
origin-server bytes batching and patching would save on top of whatever the
cache already serves.  This keeps the core reproduction faithful to the
paper while making the future-work combination measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.exceptions import ConfigurationError
from repro.workload.catalog import Catalog, MediaObject
from repro.workload.trace import RequestTrace

#: A function mapping a media object to the cached prefix size (KB) assumed
#: to be resident when a batch forms.  The analysis treats it as static for
#: the duration of the trace, which matches the paper's static-optimum lens.
PrefixFunction = Callable[[MediaObject], float]


@dataclass(frozen=True)
class SharingReport:
    """Outcome of the batching/patching analysis over one trace."""

    #: Total KB the origin servers would send without any sharing (cache
    #: misses only — the cached prefix is already excluded).
    baseline_server_bytes: float
    #: KB actually sent by origin servers when later arrivals join an
    #: ongoing stream (batching) and fetch only their patch.
    shared_server_bytes: float
    #: KB of patch data that was needed by late joiners.
    patch_bytes: float
    #: KB of patch data absorbed by the cached prefix.
    patch_bytes_from_cache: float
    #: Number of request batches formed (every request belongs to exactly one).
    batches: int
    #: Number of requests that joined an existing batch.
    joined_requests: int
    #: Total number of requests analysed.
    requests: int

    @property
    def server_byte_savings(self) -> float:
        """Fraction of origin-server bytes removed by sharing."""
        if self.baseline_server_bytes <= 0:
            return 0.0
        return 1.0 - self.shared_server_bytes / self.baseline_server_bytes

    @property
    def join_ratio(self) -> float:
        """Fraction of requests that could join an ongoing stream."""
        if self.requests == 0:
            return 0.0
        return self.joined_requests / self.requests


class StreamSharingAnalyzer:
    """Estimate the origin-server traffic saved by batching and patching.

    Parameters
    ----------
    catalog:
        The media-object catalog referenced by the trace.
    prefix_for:
        Function returning the cached prefix (KB) assumed for each object;
        defaults to "nothing cached".  Pass the paper's ``(r − b)·T`` prefix
        to study the combination of partial caching with sharing.
    batching_window:
        Maximum age (seconds) of an ongoing stream that a new request may
        join.  ``None`` means a request can join any stream of the same
        object that is still being transmitted (i.e. the window equals the
        object duration).
    """

    def __init__(
        self,
        catalog: Catalog,
        prefix_for: Optional[PrefixFunction] = None,
        batching_window: Optional[float] = None,
    ):
        if batching_window is not None and batching_window < 0:
            raise ConfigurationError(
                f"batching_window must be non-negative, got {batching_window}"
            )
        self.catalog = catalog
        self.prefix_for = prefix_for or (lambda obj: 0.0)
        self.batching_window = batching_window

    def analyze(self, trace: RequestTrace) -> SharingReport:
        """Run the analysis over a request trace."""
        baseline = 0.0
        shared = 0.0
        patch_total = 0.0
        patch_from_cache = 0.0
        batches = 0
        joined = 0
        requests = 0
        # Per object: start time of the most recent origin stream (batch leader).
        open_streams: Dict[int, float] = {}

        for request in trace:
            requests += 1
            obj = self.catalog.get(request.object_id)
            prefix = min(max(self.prefix_for(obj), 0.0), obj.size)
            suffix = obj.size - prefix
            baseline += suffix

            window = (
                obj.duration if self.batching_window is None else min(
                    self.batching_window, obj.duration
                )
            )
            leader_start = open_streams.get(request.object_id)
            leader_active = (
                leader_start is not None
                and request.time - leader_start < obj.duration
            )
            can_join = leader_active and request.time - leader_start <= window

            if can_join:
                # The joiner shares the remainder of the leader's stream and
                # only needs a patch covering what it missed.
                joined += 1
                missed_seconds = request.time - leader_start
                patch = min(missed_seconds * obj.bitrate, obj.size)
                patch_total += patch
                absorbed = min(patch, prefix)
                patch_from_cache += absorbed
                shared += patch - absorbed
            else:
                # This request becomes the leader of a new batch; the origin
                # server streams the suffix once for the whole batch.
                batches += 1
                open_streams[request.object_id] = request.time
                shared += suffix

        return SharingReport(
            baseline_server_bytes=baseline,
            shared_server_bytes=shared,
            patch_bytes=patch_total,
            patch_bytes_from_cache=patch_from_cache,
            batches=batches,
            joined_requests=joined,
            requests=requests,
        )


def prefix_function_for_bandwidth(
    bandwidths: Dict[int, float]
) -> PrefixFunction:
    """Build a prefix function from per-object bandwidths.

    The returned function yields the paper's delay-hiding prefix
    ``(r − b)+ · T`` for each object, i.e. what a PB-managed cache would hold
    for objects it decided to cache.
    """

    def prefix_for(obj: MediaObject) -> float:
        bandwidth = float(bandwidths.get(obj.object_id, 0.0))
        return obj.minimum_prefix_for_bandwidth(bandwidth)

    return prefix_for


def sharing_summary_rows(reports: Dict[str, SharingReport]) -> List[Dict[str, float]]:
    """Flatten labelled reports into printable rows (used by examples/benches)."""
    rows = []
    for label, report in reports.items():
        rows.append(
            {
                "configuration": label,
                "server_byte_savings": report.server_byte_savings,
                "join_ratio": report.join_ratio,
                "batches": float(report.batches),
                "patch_absorbed_by_cache": (
                    report.patch_bytes_from_cache / report.patch_bytes
                    if report.patch_bytes > 0
                    else 0.0
                ),
            }
        )
    return rows
