"""Streaming-media sessions as a first-class simulator workload.

This module wires the :mod:`repro.streaming` substrate (segmentation,
layered encodings, prefix prefetch, work-ahead smoothing) into the
trace-driven simulator.  A :class:`StreamingConfig` attached to
:class:`~repro.sim.config.SimulationConfig` marks a (deterministic)
fraction of the catalog as media streams; requests for those objects are
served as *segment-aware delivery sessions* instead of the plain
whole-object delivery arithmetic:

* **Partial residency** is backed by
  :class:`~repro.streaming.segmentation.SegmentedPrefix`: the policy's
  byte target is quantised up to a segment boundary on admission
  (:meth:`StreamingDeliveryEngine.admission_target`), and under cache
  pressure victims lose trailing *segments* via ``trim_to`` instead of
  being evicted wholesale (:meth:`StreamingDeliveryEngine.trim_victim`).
* **Sessions** model the paper's wait / degrade / abandon client choice
  against the delivered (last-mile-capped) bandwidth: a viewer waits out
  a short full-quality startup delay, falls back to the number of
  :class:`~repro.streaming.media.LayeredEncoding` layers the path
  sustains, and abandons when the path cannot sustain even the base
  ``layer_rate`` and waiting would exceed the abandonment budget.
* **Prefetch** of upcoming segments is driven by session position via
  :func:`~repro.streaming.prefetch.plan_prefix_prefetch`: a session that
  actually plays entitles its object to ``prefetch_segments`` extra
  segments on the admission that immediately follows; an abandoned
  session (position never advanced) entitles it to none.
* **VBR streams** (an optional fraction) derive their required sustained
  rate from the *smoothed* schedule — ``peak_rate(optimal_smoothing(...))``
  over a :func:`~repro.streaming.media.synthetic_vbr_stream` — matching
  the paper's assumption that VBR objects are smoothed before caching
  decisions are made.

All of the above happens inside shared engine methods invoked at the
identical per-request sequence point by every replay loop, so QoE
metrics and timelines are bit-identical across the event, fast,
columnar-fast, and columnar-event paths; with ``streaming=None`` the
engine is never constructed and the simulator's arithmetic (and RNG
consumption) is exactly the pre-streaming code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.streaming.media import CBRStream, LayeredEncoding, synthetic_vbr_stream
from repro.streaming.prefetch import plan_prefix_prefetch
from repro.streaming.segmentation import SegmentationScheme, SegmentedPrefix
from repro.streaming.smoothing import optimal_smoothing, peak_rate

#: Entropy tag mixed into the streaming generator's seed so stream-id
#: selection never collides with the request stream (bare config seed),
#: the client-cloud streams, or the re-measurement streams.
_STREAMING_STREAM_TAG = 0x535452  # "STR"

#: Frame-slot budget for the synthetic VBR model of one object.  Long
#: objects are modelled at a coarser frame rate so the O(frames) smoothing
#: pass stays bounded regardless of catalog durations.
_VBR_MAX_FRAMES = 512


@dataclass(frozen=True)
class StreamingConfig:
    """Configuration of the streaming-session workload.

    Attributes
    ----------
    fraction:
        Fraction of catalog objects served as media streams, in
        ``(0, 1]``.  Selection is a deterministic permutation drawn from a
        dedicated tagged RNG stream, so enabling streaming never perturbs
        the request-stream draws.
    prefix_caching:
        ``True`` (default) caches segment-aligned *prefixes*: admission
        targets are quantised to segment boundaries and victims are
        tail-trimmed segment by segment under pressure.  ``False`` is the
        ablation baseline: stream objects are admitted and evicted as
        whole objects only.
    base_segment_kb:
        First-segment size handed to
        :class:`~repro.streaming.segmentation.SegmentationScheme`.
    exponential_segments:
        Whether segment sizes double (the paper's exponential layout,
        O(log size) metadata) or stay uniform.
    prefetch_segments:
        Extra upcoming segments a *playing* session entitles its object
        to on the admission that follows it (0 disables prefetch).
    abandon_after_s:
        Viewer patience: a session whose full-quality startup delay
        exceeds this budget degrades if the path sustains at least one
        encoding layer, and abandons otherwise.
    vbr_fraction:
        Fraction of stream objects modelled as VBR (smoothed work-ahead
        schedules determine their required sustained rate).
    vbr_burstiness:
        Coefficient of variation of the synthetic VBR frame sizes,
        in ``[0, 1)``.
    smoothing_buffer_s:
        Client buffer used by the optimal-smoothing pass, in seconds of
        playout at the object's mean rate.
    seed:
        Dedicated seed for stream-id / VBR selection and the synthetic
        VBR frame-size draws.
    """

    fraction: float = 1.0
    prefix_caching: bool = True
    base_segment_kb: float = 256.0
    exponential_segments: bool = True
    prefetch_segments: int = 1
    abandon_after_s: float = 60.0
    vbr_fraction: float = 0.0
    vbr_burstiness: float = 0.5
    smoothing_buffer_s: float = 10.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ConfigurationError(
                f"fraction must be in (0, 1], got {self.fraction}"
            )
        if self.base_segment_kb <= 0:
            raise ConfigurationError(
                f"base_segment_kb must be positive, got {self.base_segment_kb}"
            )
        if self.prefetch_segments < 0:
            raise ConfigurationError(
                f"prefetch_segments must be non-negative, got {self.prefetch_segments}"
            )
        if self.abandon_after_s <= 0:
            raise ConfigurationError(
                f"abandon_after_s must be positive, got {self.abandon_after_s}"
            )
        if not 0.0 <= self.vbr_fraction <= 1.0:
            raise ConfigurationError(
                f"vbr_fraction must be in [0, 1], got {self.vbr_fraction}"
            )
        if not 0.0 <= self.vbr_burstiness < 1.0:
            raise ConfigurationError(
                f"vbr_burstiness must be in [0, 1), got {self.vbr_burstiness}"
            )
        if self.smoothing_buffer_s < 0:
            raise ConfigurationError(
                f"smoothing_buffer_s must be non-negative, got {self.smoothing_buffer_s}"
            )

    def scheme(self) -> SegmentationScheme:
        """The segmentation layout shared by every stream object."""
        return SegmentationScheme(
            base_segment_kb=self.base_segment_kb,
            exponential=self.exponential_segments,
        )


@dataclass(frozen=True)
class StreamingReport:
    """Whole-run QoE accounting for the streaming sessions of one run.

    All session counters cover the measurement phase only (warm-up
    sessions mutate the cache but are not recorded), mirroring
    :class:`~repro.sim.metrics.SimulationMetrics`.
    """

    #: Number of catalog objects served as media streams.
    stream_objects: int
    #: Measured streaming sessions (one per request of a stream object).
    sessions: int
    #: Sessions that waited out a (non-zero) full-quality startup delay.
    waited_sessions: int
    #: Sessions that degraded to fewer layers for immediate playout.
    degraded_sessions: int
    #: Sessions abandoned before playout started.
    abandoned_sessions: int
    #: Mean startup delay (seconds) across sessions, abandonments included.
    mean_startup_delay_s: float
    #: Stall time over stall-plus-watch time (abandoned sessions are all
    #: stall), the windowed rebuffering headline.
    rebuffer_ratio: float
    #: Mean delivered quality (fraction of layers) across sessions.
    mean_quality: float
    #: Abandoned sessions over all sessions.
    abandonment_rate: float
    #: Sessions whose suffix prefetch was feasible with zero extra delay.
    feasible_suffix_sessions: int
    #: Admissions extended past the policy target by session prefetch.
    prefetch_extensions: int
    #: Mid-segment fragments trimmed back to a boundary at serve time.
    fragment_trims: int
    #: KB reclaimed by segment-aware victim trimming under pressure.
    pressure_trimmed_kb: float

    def as_dict(self) -> Dict[str, float]:
        """The report as a flat dictionary (for tables and JSON)."""
        return {
            "stream_objects": float(self.stream_objects),
            "sessions": float(self.sessions),
            "waited_sessions": float(self.waited_sessions),
            "degraded_sessions": float(self.degraded_sessions),
            "abandoned_sessions": float(self.abandoned_sessions),
            "mean_startup_delay_s": self.mean_startup_delay_s,
            "rebuffer_ratio": self.rebuffer_ratio,
            "mean_quality": self.mean_quality,
            "abandonment_rate": self.abandonment_rate,
            "feasible_suffix_sessions": float(self.feasible_suffix_sessions),
            "prefetch_extensions": float(self.prefetch_extensions),
            "fragment_trims": float(self.fragment_trims),
            "pressure_trimmed_kb": self.pressure_trimmed_kb,
        }


class _StreamEntry:
    """Per-object precomputed state of one media stream."""

    __slots__ = (
        "obj",
        "size",
        "duration",
        "required_rate",
        "encoding",
        "prefix",
        "tolerance",
    )

    def __init__(self, obj, required_rate: float, scheme: SegmentationScheme):
        self.obj = obj
        self.size = obj.size
        self.duration = obj.duration
        self.required_rate = required_rate
        self.encoding = LayeredEncoding(full_rate=required_rate, layers=obj.layers)
        #: Segment calculator: re-synced from store byte counts before every
        #: use, so it serves as the boundary arithmetic (floor / ceil /
        #: tail-trim) rather than a second source of residency truth.
        self.prefix = SegmentedPrefix(self.size, scheme)
        self.tolerance = 1e-9 * max(self.size, 1.0)


def select_stream_ids(
    catalog, config: StreamingConfig, sim_seed: int
) -> Tuple[List[int], List[int]]:
    """Deterministically choose which objects stream (and which are VBR).

    Returns ``(stream_ids, vbr_ids)``.  The choice is a permutation of the
    sorted catalog ids drawn from a dedicated tagged RNG stream — seeded by
    ``(tag, config.seed, sim_seed)``, never by the bare simulation seed —
    so flipping streaming on cannot perturb any other random stream, and
    the same ``(config, seed)`` pair always marks the same objects on
    every replay path.
    """
    all_ids = sorted(obj.object_id for obj in catalog)
    if config.fraction >= 1.0 and config.vbr_fraction <= 0.0:
        return all_ids, []
    rng = np.random.default_rng(
        (
            _STREAMING_STREAM_TAG,
            config.seed & 0xFFFFFFFF,
            sim_seed & 0xFFFFFFFF,
        )
    )
    permuted = [all_ids[i] for i in rng.permutation(len(all_ids))]
    n_stream = len(all_ids) if config.fraction >= 1.0 else max(
        1, int(config.fraction * len(all_ids) + 1e-9)
    )
    stream_ids = permuted[:n_stream]
    n_vbr = int(config.vbr_fraction * n_stream + 1e-9)
    return sorted(stream_ids), sorted(stream_ids[:n_vbr])


class StreamingDeliveryEngine:
    """Segment-aware session delivery shared by every replay loop.

    One engine is constructed per run.  The replay loops call
    :meth:`serve` for every ``FETCH_OK`` request of a stream object (and
    :meth:`record_failed` for fetches that failed outright), at the exact
    sequence point where non-stream requests run the plain delivery
    arithmetic; the simulator additionally installs
    :meth:`admission_target` and :meth:`trim_victim` as the policy's
    streaming hooks.  Because every path funnels through these shared
    methods with identical inputs, the QoE counters — and the metrics
    derived from them — are bit-identical across replay paths by
    construction.
    """

    def __init__(self, config: StreamingConfig, catalog, store, sim_seed: int = 0):
        self.config = config
        self.store = store
        stream_ids, vbr_ids = select_stream_ids(catalog, config, sim_seed)
        self.stream_ids = frozenset(stream_ids)
        self.vbr_ids = frozenset(vbr_ids)
        scheme = config.scheme()
        self._entries: Dict[int, _StreamEntry] = {}
        for object_id in stream_ids:
            obj = catalog.get(object_id)
            required_rate = obj.bitrate
            if object_id in self.vbr_ids:
                required_rate = max(
                    required_rate, self._smoothed_peak_rate(obj, config)
                )
            self._entries[object_id] = _StreamEntry(obj, required_rate, scheme)
        self._prefetch_segments = config.prefetch_segments
        #: ``(object_id, allowed_segments)`` set by the session that just
        #: played; consumed by the admission that immediately follows it.
        self._pending_prefetch: Optional[Tuple[int, int]] = None

        # Cumulative QoE counters (measurement phase only).  The timeline
        # reads these at its snapshot points, exactly like the store /
        # rekeyer / injector counters.
        self.sessions = 0
        self.startup_sum = 0.0
        self.rebuffer_sum = 0.0
        self.watch_sum = 0.0
        self.quality_sum = 0.0
        self.abandoned = 0
        self.waited = 0
        self.degraded = 0
        self.feasible_suffix = 0
        self.prefetch_extensions = 0
        self.fragment_trims = 0
        self.pressure_trimmed_kb = 0.0

    @staticmethod
    def _smoothed_peak_rate(obj, config: StreamingConfig) -> float:
        """Required sustained rate of a VBR object: its smoothed peak.

        The synthetic VBR schedule is built at a frame rate coarse enough
        to bound the smoothing pass at :data:`_VBR_MAX_FRAMES` slots, then
        smoothed against ``smoothing_buffer_s`` seconds of client buffer;
        the peak of the smoothed schedule is what the delivery path must
        sustain for full-quality playout.
        """
        frame_rate = min(24.0, _VBR_MAX_FRAMES / obj.duration)
        stream = synthetic_vbr_stream(
            duration=obj.duration,
            mean_rate=obj.bitrate,
            burstiness=config.vbr_burstiness,
            frame_rate=frame_rate,
            seed=(config.seed & 0xFFFFFFFF) * 1_000_003 + obj.object_id,
        )
        buffer_kb = max(config.smoothing_buffer_s * obj.bitrate, stream.peak_rate)
        return peak_rate(optimal_smoothing(stream, buffer_kb))

    # ------------------------------------------------------------------
    # The kernel seam.
    # ------------------------------------------------------------------
    def kernel_hooks(self) -> dict:
        """The delivery-stage hooks for :mod:`repro.sim.kernel`.

        ``serve`` runs a stream object's request as a segment-aware
        session at the kernel's *delivery* stage, ``record_failed``
        accounts a failed-fetch session, and ``stream_ids`` is the
        frozen set deciding which object ids stream.  Binding through
        this seam (instead of reaching into the engine from each replay
        driver) is what ``scripts/check_kernel.py`` enforces.
        """
        return {
            "serve": self.serve,
            "record_failed": self.record_failed,
            "stream_ids": self.stream_ids,
        }

    # ------------------------------------------------------------------
    # Session delivery (called from the kernel's delivery stage).
    # ------------------------------------------------------------------
    def serve(
        self,
        object_id: int,
        bandwidth: float,
        now: float,
        measuring: bool,
        waited: float = 0.0,
    ) -> Tuple[float, float, float, float, bool]:
        """Run one delivery session against the current cache state.

        Returns ``(bytes_from_cache, bytes_from_server, delay, quality,
        full_quality)`` in the units the metrics collector accumulates.
        The session model (deterministic client choice, Section 2.2/3.3
        style):

        * residency is floored to a segment boundary first — a mid-segment
          fragment left by a pressured partial admission is trimmed away,
        * a session whose full-quality startup delay fits the abandonment
          budget *waits* (quality 1, the delay counts as rebuffering),
        * otherwise it *degrades* to the layers the available rate
          (cached prefix spread over the duration, plus the delivered
          bandwidth) sustains, starting immediately,
        * otherwise it *abandons*: no playout, the server bytes streamed
          during the wait are wasted, and the budget counts as stall.

        Cache mutations (fragment trims) and the session-position prefetch
        entitlement happen regardless of ``measuring``; the QoE counters
        move only during the measurement phase.
        """
        entry = self._entries[object_id]
        store = self.store
        cached = store.cached_bytes(object_id)
        if cached > 0.0:
            # Floor residency to a segment boundary: sync the calculator up
            # (grow_to may overshoot to the ceiling) then trim back down.
            entry.prefix.grow_to(cached)
            floored = entry.prefix.trim_to(cached)
            if floored < cached - entry.tolerance:
                store.trim(object_id, cached - floored)
                self.fragment_trims += 1
                cached = floored
            elif cached > entry.size:
                cached = entry.size

        plan = plan_prefix_prefetch(entry.obj, cached, bandwidth)
        delay_full = plan.startup_delay
        if entry.required_rate != entry.obj.bitrate:
            # VBR: the smoothed peak rate, not the mean rate, must be
            # sustained; same [T r - T b - x]+ / b form at the higher rate.
            missing = (
                entry.duration * entry.required_rate
                - entry.duration * bandwidth
                - cached
            )
            if missing <= 0:
                delay_full = 0.0
            elif bandwidth <= 0:
                delay_full = float("inf")
            else:
                delay_full = missing / bandwidth

        encoding = entry.encoding
        available = cached / entry.duration + (bandwidth if bandwidth > 0.0 else 0.0)
        layers_ok = encoding.supported_layers(available)

        abandoned = False
        if delay_full <= 0.0:
            stall, quality, watch = 0.0, 1.0, entry.duration
        elif delay_full <= self.config.abandon_after_s:
            stall, quality, watch = delay_full, 1.0, entry.duration
        elif layers_ok >= 1:
            stall = 0.0
            quality = layers_ok / entry.obj.layers
            watch = entry.duration
        else:
            abandoned = True
            stall, quality, watch = self.config.abandon_after_s, 0.0, 0.0

        if abandoned:
            served = bandwidth * stall
            remaining = entry.size - cached
            if served > remaining:
                served = remaining
            bytes_cache, bytes_server = 0.0, served
            self._pending_prefetch = (object_id, 0)
        else:
            fraction = quality
            bytes_cache = fraction * cached
            bytes_server = fraction * (entry.size - cached)
            self._pending_prefetch = (object_id, self._prefetch_segments)

        delay = stall + waited
        if measuring:
            self.sessions += 1
            self.startup_sum += delay
            self.rebuffer_sum += delay
            self.watch_sum += watch
            self.quality_sum += quality
            if abandoned:
                self.abandoned += 1
            elif stall > 0.0:
                self.waited += 1
            elif quality < 1.0:
                self.degraded += 1
            if plan.feasible_without_delay:
                self.feasible_suffix += 1
        return bytes_cache, bytes_server, delay, quality, quality >= 1.0

    def record_failed(self, waited: float, quality: float) -> None:
        """Account a stream session whose fetch failed after every retry.

        The origin was unreachable: the viewer waited out the retry budget
        and got (at most) the stale cached prefix — the session counts as
        abandoned, its wait as both startup delay and rebuffering, and the
        stale-serve ``quality`` (zero when nothing was cached) as the
        delivered quality.  Called only during the measurement phase, at
        the same sequence point on every replay path.
        """
        self.sessions += 1
        self.abandoned += 1
        self.startup_sum += waited
        self.rebuffer_sum += waited
        self.quality_sum += quality

    # ------------------------------------------------------------------
    # Policy hooks (installed on the policy for the duration of a run).
    # ------------------------------------------------------------------
    def admission_target(
        self, object_id: int, target_kb: float, size_kb: float
    ) -> float:
        """Quantise a policy's byte target for one stream object.

        Non-stream objects pass through untouched.  In whole-object mode
        any positive target becomes the full object (the ablation
        baseline).  In prefix mode the target is rounded *up* to the next
        segment boundary and extended by the pending session-position
        prefetch entitlement (set by :meth:`serve`; an abandoned session
        grants none), capped at the object size.
        """
        entry = self._entries.get(object_id)
        if entry is None:
            return target_kb
        if target_kb <= 1e-6:
            return target_kb
        if not self.config.prefix_caching:
            return size_kb
        prefix = entry.prefix
        prefix.trim_to(target_kb)
        quantized = prefix.grow_to(target_kb)
        pending = self._pending_prefetch
        extra = (
            pending[1]
            if pending is not None and pending[0] == object_id
            else 0
        )
        extended = quantized
        for _ in range(extra):
            if extended >= entry.size:
                break
            extended = prefix.grow_to(extended + entry.tolerance + 1e-9)
        if extended > quantized:
            self.prefetch_extensions += 1
        return min(extended, size_kb)

    def trim_victim(
        self, victim_id: int, needed_kb: float
    ) -> Optional[Tuple[float, bool]]:
        """Reclaim space from a stream victim by dropping tail segments.

        Returns ``None`` for non-stream victims (the policy then runs its
        ordinary eviction arithmetic).  For a stream victim, residency is
        floored to a boundary and trailing segments are dropped via
        ``trim_to`` until at least ``needed_kb`` KB are reclaimed; the
        return value is ``(reclaimed_kb, emptied)`` so the policy can
        either retire the victim's heap entry (``emptied``) or restore it.
        """
        entry = self._entries.get(victim_id)
        if entry is None:
            return None
        store = self.store
        current = store.cached_bytes(victim_id)
        if current <= 0.0:
            return 0.0, True
        keep = current - needed_kb
        if keep < 0.0:
            keep = 0.0
        entry.prefix.grow_to(current)
        entry.prefix.trim_to(current)
        remaining = entry.prefix.trim_to(keep)
        reclaimed = current - remaining
        if reclaimed > 0.0:
            store.trim(victim_id, reclaimed)
            self.pressure_trimmed_kb += reclaimed
        return reclaimed, remaining <= 1e-6

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------
    def report(self) -> StreamingReport:
        """The whole-run QoE report (measurement-phase sessions only)."""
        sessions = self.sessions
        stall_plus_watch = self.rebuffer_sum + self.watch_sum
        return StreamingReport(
            stream_objects=len(self._entries),
            sessions=sessions,
            waited_sessions=self.waited,
            degraded_sessions=self.degraded,
            abandoned_sessions=self.abandoned,
            mean_startup_delay_s=(
                self.startup_sum / sessions if sessions > 0 else 0.0
            ),
            rebuffer_ratio=(
                self.rebuffer_sum / stall_plus_watch
                if stall_plus_watch > 0
                else 0.0
            ),
            mean_quality=(self.quality_sum / sessions if sessions > 0 else 1.0),
            abandonment_rate=(
                self.abandoned / sessions if sessions > 0 else 0.0
            ),
            feasible_suffix_sessions=self.feasible_suffix,
            prefetch_extensions=self.prefetch_extensions,
            fragment_trims=self.fragment_trims,
            pressure_trimmed_kb=self.pressure_trimmed_kb,
        )
