"""Tests for request traces and the GISMO workload generator."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, TraceFormatError
from repro.workload.gismo import GismoWorkloadGenerator, WorkloadConfig, table1_workload
from repro.workload.trace import Request, RequestTrace


class TestRequest:
    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            Request(time=-1.0, object_id=0)


class TestRequestTrace:
    def make_trace(self):
        return RequestTrace(
            [
                Request(time=1.0, object_id=3),
                Request(time=2.0, object_id=1),
                Request(time=2.5, object_id=3),
                Request(time=4.0, object_id=2),
            ]
        )

    def test_len_duration_bounds(self):
        trace = self.make_trace()
        assert len(trace) == 4
        assert trace.start_time == 1.0
        assert trace.end_time == 4.0
        assert trace.duration == pytest.approx(3.0)

    def test_out_of_order_rejected(self):
        with pytest.raises(ConfigurationError):
            RequestTrace([Request(time=2.0, object_id=0), Request(time=1.0, object_id=1)])

    def test_object_ids_first_seen_order(self):
        assert self.make_trace().object_ids() == [3, 1, 2]

    def test_request_counts(self):
        assert self.make_trace().request_counts() == {3: 2, 1: 1, 2: 1}

    def test_split_halves(self):
        warmup, measure = self.make_trace().split(0.5)
        assert len(warmup) == 2
        assert len(measure) == 2
        assert measure[0].object_id == 3

    def test_split_validates_fraction(self):
        with pytest.raises(ConfigurationError):
            self.make_trace().split(1.5)

    def test_slicing_returns_trace(self):
        sliced = self.make_trace()[1:3]
        assert isinstance(sliced, RequestTrace)
        assert len(sliced) == 2

    def test_csv_roundtrip(self, tmp_path):
        trace = self.make_trace()
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        assert RequestTrace.from_csv(path) == trace

    def test_csv_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(TraceFormatError):
            RequestTrace.from_csv(path)

    def test_csv_bad_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,object_id,client_id\n1.0,notanint,0\n")
        with pytest.raises(TraceFormatError):
            RequestTrace.from_csv(path)

    def test_from_arrays_validation(self):
        with pytest.raises(ConfigurationError):
            RequestTrace.from_arrays([1.0, 2.0], [1])
        with pytest.raises(ConfigurationError):
            RequestTrace.from_arrays([1.0], [1], client_ids=[1, 2])

    def test_empty_trace_properties(self):
        empty = RequestTrace([])
        assert len(empty) == 0
        assert empty.duration == 0.0
        assert empty.object_ids() == []


class TestWorkloadConfig:
    def test_defaults_follow_table1(self):
        config = WorkloadConfig()
        assert config.num_objects == 5_000
        assert config.num_requests == 100_000
        assert config.zipf_alpha == pytest.approx(0.73)
        assert config.bitrate == pytest.approx(48.0)

    def test_scaled_preserves_shape(self):
        scaled = WorkloadConfig().scaled(0.1)
        assert scaled.num_objects == 500
        assert scaled.num_requests == 10_000
        assert scaled.zipf_alpha == pytest.approx(0.73)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig().scaled(0.0)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(num_objects=0)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(num_requests=0)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(value_min=5.0, value_max=1.0)


class TestGismoWorkloadGenerator:
    def test_generation_is_deterministic(self):
        config = WorkloadConfig(num_objects=30, num_requests=500, num_servers=5, seed=3)
        first = GismoWorkloadGenerator(config).generate()
        second = GismoWorkloadGenerator(config).generate()
        assert first.trace == second.trace
        assert first.catalog.total_size == pytest.approx(second.catalog.total_size)

    def test_catalog_matches_config(self, tiny_workload):
        config = tiny_workload.config
        assert len(tiny_workload.catalog) == config.num_objects
        assert len(tiny_workload.trace) == config.num_requests
        servers = set(obj.server_id for obj in tiny_workload.catalog)
        assert servers.issubset(set(range(config.num_servers)))

    def test_object_values_within_range(self, tiny_workload):
        for obj in tiny_workload.catalog:
            assert 1.0 <= obj.value <= 10.0

    def test_requests_reference_catalog_objects(self, tiny_workload):
        ids = set(tiny_workload.catalog.object_ids())
        assert all(request.object_id in ids for request in tiny_workload.trace)

    def test_popularity_skew_visible_in_trace(self, tiny_workload):
        counts = tiny_workload.trace.request_counts()
        top_object = max(counts, key=counts.get)
        # Low-ranked object ids are the popular ones by construction.
        assert top_object < len(tiny_workload.catalog) / 4

    def test_expected_rates_sum_to_requests(self, tiny_workload):
        assert tiny_workload.expected_rates.sum() == pytest.approx(
            tiny_workload.config.num_requests
        )

    def test_describe_reports_requests(self, tiny_workload):
        summary = tiny_workload.describe()
        assert summary["requests"] == float(len(tiny_workload.trace))
        assert summary["zipf_alpha"] == pytest.approx(0.73)


class TestTable1Workload:
    def test_full_scale_matches_paper_totals(self):
        workload = table1_workload(seed=0, scale=0.02)
        # At 2% scale: 100 objects, 2000 requests; shape parameters unchanged.
        assert len(workload.catalog) == 100
        assert len(workload.trace) == 2_000

    def test_total_size_extrapolates_to_about_790_gb(self):
        # Mean object size is ~55 min * 48 KB/s ~ 158 MB; 5000 objects ~ 790 GB.
        workload = table1_workload(seed=1, scale=0.05)
        scaled_total = workload.catalog.total_size_gb / 0.05
        assert scaled_total == pytest.approx(790.0, rel=0.15)

    def test_scale_rejected_when_invalid(self):
        with pytest.raises(ConfigurationError):
            table1_workload(scale=-1.0)
