"""Tests for base-bandwidth distributions (Figure 2 models)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.network.distributions import (
    ConstantBandwidthDistribution,
    EmpiricalBandwidthDistribution,
    HistogramBandwidthDistribution,
    NLANRBandwidthDistribution,
    UniformBandwidthDistribution,
)


class TestConstantBandwidthDistribution:
    def test_sample_and_cdf(self, rng):
        dist = ConstantBandwidthDistribution(100.0)
        assert np.all(dist.sample(5, rng) == 100.0)
        assert dist.mean() == 100.0
        assert dist.cdf(99.0) == 0.0
        assert dist.cdf(100.0) == 1.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            ConstantBandwidthDistribution(0.0)


class TestUniformBandwidthDistribution:
    def test_samples_within_range(self, rng):
        dist = UniformBandwidthDistribution(10.0, 50.0)
        samples = dist.sample(1_000, rng)
        assert samples.min() >= 10.0
        assert samples.max() <= 50.0
        assert dist.mean() == pytest.approx(30.0)

    def test_cdf_linear(self):
        dist = UniformBandwidthDistribution(0.0, 100.0)
        assert dist.cdf(-1.0) == 0.0
        assert dist.cdf(25.0) == pytest.approx(0.25)
        assert dist.cdf(200.0) == 1.0

    def test_rejects_bad_range(self):
        with pytest.raises(ConfigurationError):
            UniformBandwidthDistribution(50.0, 10.0)


class TestHistogramBandwidthDistribution:
    def test_masses_normalised(self):
        dist = HistogramBandwidthDistribution([0, 10, 20], [3.0, 1.0])
        assert dist.bin_masses.tolist() == pytest.approx([0.75, 0.25])

    def test_cdf_and_quantile_are_inverse(self):
        dist = HistogramBandwidthDistribution([0, 10, 20, 40], [1.0, 2.0, 1.0])
        for probability in (0.1, 0.5, 0.9):
            assert dist.cdf(dist.quantile(probability)) == pytest.approx(probability, abs=1e-9)

    def test_sampling_respects_masses(self, rng):
        dist = HistogramBandwidthDistribution([0, 10, 100], [0.9, 0.1])
        samples = dist.sample(20_000, rng)
        assert np.mean(samples < 10.0) == pytest.approx(0.9, abs=0.02)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HistogramBandwidthDistribution([0], [])
        with pytest.raises(ConfigurationError):
            HistogramBandwidthDistribution([0, 10], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            HistogramBandwidthDistribution([10, 0], [1.0])
        with pytest.raises(ConfigurationError):
            HistogramBandwidthDistribution([0, 10], [-1.0])
        with pytest.raises(ConfigurationError):
            HistogramBandwidthDistribution([0, 10, 20], [1.0, 1.0]).quantile(1.5)


class TestNLANRBandwidthDistribution:
    def test_anchor_fractions_match_paper(self):
        dist = NLANRBandwidthDistribution()
        # The paper: 37% of requests below 50 KB/s, 56% below 100 KB/s.
        assert dist.cdf(50.0) == pytest.approx(0.37, abs=1e-9)
        assert dist.cdf(100.0) == pytest.approx(0.56, abs=1e-9)

    def test_support_bounded_by_450(self, rng):
        dist = NLANRBandwidthDistribution()
        samples = dist.sample(10_000, rng)
        assert samples.max() <= 450.0
        assert samples.min() >= 0.0

    def test_sampled_fractions_match_cdf(self, rng):
        dist = NLANRBandwidthDistribution()
        samples = dist.sample(50_000, rng)
        assert np.mean(samples < 50.0) == pytest.approx(0.37, abs=0.02)
        assert np.mean(samples < 100.0) == pytest.approx(0.56, abs=0.02)

    def test_mean_is_heterogeneous_but_moderate(self):
        mean = NLANRBandwidthDistribution().mean()
        assert 80.0 < mean < 200.0


class TestEmpiricalBandwidthDistribution:
    def test_built_from_samples_reproduces_fractions(self, rng):
        reference = NLANRBandwidthDistribution()
        raw = reference.sample(30_000, rng)
        empirical = EmpiricalBandwidthDistribution(raw, bin_width=4.0)
        assert empirical.cdf(50.0) == pytest.approx(reference.cdf(50.0), abs=0.03)
        assert empirical.cdf(100.0) == pytest.approx(reference.cdf(100.0), abs=0.03)
        assert empirical.sample_count == 30_000

    def test_rejects_empty_or_negative(self):
        with pytest.raises(ConfigurationError):
            EmpiricalBandwidthDistribution([])
        with pytest.raises(ConfigurationError):
            EmpiricalBandwidthDistribution([-1.0, 2.0])
        with pytest.raises(ConfigurationError):
            EmpiricalBandwidthDistribution([1.0], bin_width=0.0)
