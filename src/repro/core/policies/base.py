"""Policy framework: the utility-keyed priority-heap replacement engine.

Every online policy in the paper follows the same skeleton (Section 2.4):
maintain a per-object *utility* value, estimate request frequency online,
and on each request try to cache a per-object *target* number of bytes,
evicting the lowest-utility cached content to make room — but never
evicting content whose utility is at least that of the requested object.
Concrete policies differ only in two functions:

* :meth:`CachePolicy.utility` — the priority key (e.g. ``F`` for IF,
  ``F / b`` for PB/IB, ``F V / (T r − T b)`` for PB-V), and
* :meth:`CachePolicy.target_cache_bytes` — how much of the object is worth
  caching (the whole object for integral policies, the
  ``(r − b) T`` prefix for partial ones, zero when bandwidth is abundant).

The engine implements the replacement loop once, with the priority queue
("heap which uses the utility value as the key", Section 2.4) shared by all
policies.  Partial policies may trim the marginal victim and may admit the
requested object partially (the fractional-knapsack behaviour); integral
policies evict and admit whole objects only.
"""

from __future__ import annotations

import heapq
import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.frequency import FrequencyTracker
from repro.core.store import CacheStore
from repro.exceptions import PolicyError
from repro.workload.catalog import MediaObject

#: Byte tolerance below which two cache sizes are considered equal.
_EPSILON_KB = 1e-6


@dataclass(frozen=True, slots=True)
class PolicyContext:
    """Per-request information a policy's utility/target functions may use.

    Frozen (hashable) as before; ``__slots__`` keeps the one-per-request
    construction cheap.

    Attributes
    ----------
    now:
        Simulation time of the request (seconds).
    bandwidth:
        The bandwidth (KB/s) the cache currently *believes* the path to the
        object's origin server has.  Depending on the simulator's
        configuration this is the oracle base bandwidth or a passive
        estimate; hybrid policies additionally scale it by ``estimator_e``.
    frequency:
        The object's request-frequency estimate ``F_i`` including the
        current request.
    """

    now: float
    bandwidth: float
    frequency: float


class CachePolicy(ABC):
    """Base class for online replacement policies.

    Subclasses set :attr:`allows_partial` and implement :meth:`utility` and
    :meth:`target_cache_bytes`; everything else (frequency tracking, the
    priority heap, eviction planning) is shared.
    """

    #: Human-readable policy name, used in reports and plots.
    name: str = "base"

    #: Whether the policy may cache and evict fractions of objects.
    allows_partial: bool = False

    #: Whether :meth:`utility` depends on ``ctx.bandwidth``.  Only
    #: bandwidth-keyed policies react to out-of-band bandwidth shifts
    #: (:meth:`on_bandwidth_shift`); for the others a re-key would either be
    #: a no-op (frequency-keyed utilities) or outright wrong (recency-keyed
    #: utilities must only move on requests).  Inflation-keyed policies may
    #: opt in with a re-key that preserves each entry's inflation component
    #: (GreedyDual's ``"delay"`` cost model does; see
    #: :meth:`repro.core.policies.greedydual.GreedyDualSizePolicy.on_bandwidth_shift`).
    bandwidth_keyed: bool = False

    #: Extra heap entries tolerated before a compaction pays off; keeps tiny
    #: caches from compacting on every request.
    _COMPACTION_SLACK: int = 64

    #: Streaming hooks, installed per run by the simulator when a
    #: :class:`~repro.sim.streaming.StreamingConfig` is active and removed
    #: again afterwards.  ``stream_quantize(object_id, target_kb, size_kb)``
    #: reshapes the admission target of stream objects (segment-boundary
    #: quantisation plus session prefetch, or whole-object in the ablation
    #: baseline); ``stream_trim(victim_id, needed_kb)`` reclaims space from
    #: a stream victim by dropping tail segments, returning ``(reclaimed,
    #: emptied)``, or ``None`` for non-stream victims.  Both default to
    #: ``None`` so the streaming-off request path costs one attribute test.
    stream_quantize = None
    stream_trim = None

    def __init__(self, frequency_tracker: Optional[FrequencyTracker] = None):
        self.frequencies = frequency_tracker or FrequencyTracker()
        self._catalog = None
        self._server_objects: Optional[Dict[int, List[int]]] = None
        self._utilities: Dict[int, float] = {}
        self._heap: List[Tuple[float, int, int]] = []
        self._heap_counter = itertools.count()
        #: Sequence number of each object's *live* heap entry.  A heap entry
        #: ``(utility, seq, object_id)`` is valid iff ``_entry_seq[object_id]
        #: == seq``; every re-push bumps the sequence, so staleness detection
        #: is an exact integer comparison rather than a float-tolerance test.
        self._entry_seq: Dict[int, int] = {}
        self._heap_peak = 0
        self._compactions = 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"

    # ------------------------------------------------------------------
    # The two hooks concrete policies implement.
    # ------------------------------------------------------------------
    @abstractmethod
    def utility(self, obj: MediaObject, ctx: PolicyContext) -> float:
        """Priority key: higher utility content is kept in preference."""

    @abstractmethod
    def target_cache_bytes(self, obj: MediaObject, ctx: PolicyContext) -> float:
        """How many KB of this object the policy would like cached."""

    def on_evict(self, object_id: int, utility: float) -> None:
        """Hook invoked whenever the engine evicts a whole object.

        The default does nothing; GreedyDual-style policies override it to
        update their inflation value (the utility of the last victim).
        """

    def install(self, store: CacheStore, catalog=None) -> None:
        """Give the policy its pre-replay context (called by the simulator).

        The base implementation only remembers the catalog, which is what
        lets :meth:`on_bandwidth_shift` resolve tracked object ids back to
        their origin servers.  Subclasses that pre-populate the store
        (:class:`~repro.core.policies.optimal.StaticAllocationPolicy`)
        override this wholesale.
        """
        self._catalog = catalog
        self._server_objects = None

    def _objects_on_server(self, server_id: int) -> List[int]:
        """Catalog object ids hosted on one server (index built lazily).

        The index costs one catalog pass on the first bandwidth shift and
        makes each subsequent shift O(objects on that server) instead of a
        scan over everything the policy has ever tracked.
        """
        if self._server_objects is None:
            by_server: Dict[int, List[int]] = {}
            for obj in self._catalog:
                by_server.setdefault(obj.server_id, []).append(obj.object_id)
            self._server_objects = by_server
        return self._server_objects.get(server_id, [])

    def on_bandwidth_shift(self, server_id: int, bandwidth: float, now: float) -> int:
        """React to a shift in one path's believed bandwidth.

        Called by the simulator's reactive hook
        (``SimulationConfig.reactive_threshold``; see ``docs/events.md``)
        when a bandwidth-belief update — a periodic probe, or a passive
        per-request observation under
        ``SimulationConfig.reactive_passive`` — moves a path's believed
        value past the configured threshold (hysteresis- and
        rate-cap-gated).  Every tracked object served by ``server_id`` has its
        utility recomputed under the new believed ``bandwidth`` (and its
        current frequency estimate) and is re-pushed onto the heap —
        generation-keyed, so the superseded entries become stale garbage
        that the existing lazy-invalidation + compaction machinery reclaims.
        Entries whose utility is unchanged are left alone.

        Returns the number of heap entries re-keyed; 0 when the policy is
        not bandwidth-keyed or no catalog was installed.
        """
        if not self.bandwidth_keyed or self._catalog is None:
            return 0
        catalog_get = self._catalog.get
        frequency = self.frequencies.frequency
        utilities = self._utilities
        rekeyed = 0
        for object_id in self._objects_on_server(server_id):
            old_utility = utilities.get(object_id)
            if old_utility is None:
                continue
            ctx = PolicyContext(
                now=now,
                bandwidth=float(bandwidth),
                frequency=frequency(object_id, now),
            )
            utility = self.utility(catalog_get(object_id), ctx)
            if utility != old_utility:
                self._set_utility(object_id, utility)
                rekeyed += 1
        return rekeyed

    # ------------------------------------------------------------------
    # Heap maintenance.
    # ------------------------------------------------------------------
    def _set_utility(self, object_id: int, utility: float) -> None:
        seq = next(self._heap_counter)
        self._utilities[object_id] = utility
        self._entry_seq[object_id] = seq
        heap = self._heap
        heapq.heappush(heap, (utility, seq, object_id))
        if len(heap) > self._heap_peak:
            self._heap_peak = len(heap)
        if len(heap) > 2 * len(self._entry_seq) + self._COMPACTION_SLACK:
            self._compact_heap()

    def _drop_utility(self, object_id: int) -> None:
        self._utilities.pop(object_id, None)
        self._entry_seq.pop(object_id, None)

    def _compact_heap(self) -> None:
        """Rebuild the heap from the live entries only.

        Re-keying an object leaves its previous heap entry behind as garbage;
        once stale entries outnumber live ones (~50% of the heap) a rebuild
        amortises to O(1) per request and bounds the heap at twice the number
        of tracked objects.  Live entries keep their original sequence
        numbers, so the pop order — and therefore every eviction decision —
        is exactly what the un-compacted heap would have produced.
        """
        utilities = self._utilities
        self._heap = [
            (utilities[object_id], seq, object_id)
            for object_id, seq in self._entry_seq.items()
        ]
        heapq.heapify(self._heap)
        self._compactions += 1

    def _pop_lowest(
        self,
        store: CacheStore,
        exclude: int = -1,
        held_out: Optional[List[Tuple[float, int]]] = None,
    ) -> Optional[Tuple[int, float]]:
        """Pop the valid lowest-utility cached object (excluding ``exclude``).

        Lazily discards stale heap entries (superseded sequence numbers or
        objects no longer cached).  Returns ``None`` when no candidate
        remains.  The returned object is *not* yet evicted; the caller either
        commits the eviction or pushes the entry back via :meth:`_restore`.

        When the *live* entry of ``exclude`` is reached it is popped once
        into ``held_out`` as ``(utility, seq)`` — still referenced by
        ``_entry_seq``, just physically out of the heap — so the caller can
        reinstate it verbatim with :meth:`_reinstate_held`.  The sequence
        check guarantees this happens at most once per eviction loop.
        Without ``held_out`` the held entry is reinstated before returning,
        so a standalone call leaves the heap intact.
        """
        heap = self._heap
        entry_seq = self._entry_seq
        reinstate = held_out is None
        held: List[Tuple[float, int]] = [] if reinstate else held_out
        result: Optional[Tuple[int, float]] = None
        while heap:
            utility, seq, object_id = heapq.heappop(heap)
            if entry_seq.get(object_id) != seq:
                continue
            if object_id == exclude:
                held.append((utility, seq))
                continue
            if object_id not in store:
                # Defensive: tracked but no longer cached.  Consume the live
                # entry so a later compaction cannot resurrect it.
                entry_seq.pop(object_id, None)
                continue
            result = (object_id, utility)
            break
        if reinstate and held:
            self._reinstate_held(exclude, held)
        return result

    def _reinstate_held(self, object_id: int, held: List[Tuple[float, int]]) -> None:
        """Push a held-aside live entry back exactly as it was.

        The entry keeps its original sequence number (``_entry_seq`` never
        stopped referencing it), so heap order is exactly as if it had never
        been held.
        """
        for utility, seq in held:
            heapq.heappush(self._heap, (utility, seq, object_id))
        held.clear()

    def _restore(self, object_id: int, utility: float) -> None:
        """Push a popped-but-not-evicted candidate back onto the heap."""
        seq = next(self._heap_counter)
        self._entry_seq[object_id] = seq
        heapq.heappush(self._heap, (utility, seq, object_id))
        if len(self._heap) > self._heap_peak:
            self._heap_peak = len(self._heap)

    # ------------------------------------------------------------------
    # The replacement engine.
    # ------------------------------------------------------------------
    def on_request(
        self,
        obj: MediaObject,
        bandwidth: float,
        now: float,
        store: CacheStore,
    ) -> PolicyContext:
        """Handle one request: update state and adjust the cache contents.

        Returns the :class:`PolicyContext` built for the request so callers
        (and tests) can inspect the frequency and bandwidth the decision used.
        """
        object_id = obj.object_id
        frequency = self.frequencies.record(object_id, now)
        ctx = PolicyContext(now=now, bandwidth=float(bandwidth), frequency=frequency)
        current = store.touch_and_bytes(object_id, now)

        target = self.target_cache_bytes(obj, ctx)
        size = obj.size
        if target > size:
            target = size
        quantize = self.stream_quantize
        if quantize is not None:
            target = quantize(object_id, target, size)

        if current > 0:
            # Refresh the requester's key: its frequency just increased.
            utility = self.utility(obj, ctx)
            self._set_utility(object_id, utility)
            if target <= current + _EPSILON_KB:
                return ctx
        else:
            if target <= _EPSILON_KB:
                # Nothing cached and nothing wanted: the (possibly costly)
                # utility function need not run at all.
                return ctx
            utility = self.utility(obj, ctx)

        needed = target - current
        if needed <= store.free_kb + _EPSILON_KB:
            store.set_cached_bytes(object_id, target, now)
            self._set_utility(object_id, utility)
            return ctx

        self._evict_and_admit(obj, ctx, store, target, utility)
        return ctx

    def _evict_and_admit(
        self,
        obj: MediaObject,
        ctx: PolicyContext,
        store: CacheStore,
        target: float,
        utility: float,
    ) -> None:
        """Plan evictions of lower-utility content, then admit the object.

        Integral policies admit all-or-nothing; partial policies trim the
        marginal victim and may admit the requested object partially when
        only some of the needed space can be reclaimed.
        """
        object_id = obj.object_id
        current = store.cached_bytes(object_id)
        needed = target - current
        shortfall = needed - store.free_kb

        # The requester's own live heap entry is held aside at most *once*
        # for the whole eviction loop (see _pop_lowest), instead of being
        # popped and re-pushed on every iteration.
        held: List[Tuple[float, int]] = []

        planned: List[Tuple[int, float, float]] = []  # (victim_id, utility, bytes)
        reclaimed = 0.0
        blocked_candidate: Optional[Tuple[int, float]] = None

        while shortfall - reclaimed > _EPSILON_KB:
            candidate = self._pop_lowest(store, exclude=object_id, held_out=held)
            if candidate is None:
                break
            victim_id, victim_utility = candidate
            if victim_utility >= utility:
                blocked_candidate = candidate
                break
            victim_bytes = store.cached_bytes(victim_id)
            if victim_bytes <= 0:
                continue
            planned.append((victim_id, victim_utility, victim_bytes))
            reclaimed += victim_bytes

        fully_satisfied = reclaimed + _EPSILON_KB >= shortfall

        if not fully_satisfied and not self.allows_partial:
            # Integral policies refuse partial admission: undo the plan.
            for victim_id, victim_utility, _ in planned:
                self._restore(victim_id, victim_utility)
            if blocked_candidate is not None:
                self._restore(*blocked_candidate)
            self._reinstate_held(object_id, held)
            return

        if blocked_candidate is not None:
            self._restore(*blocked_candidate)

        # Commit evictions.  With full satisfaction a partial policy only
        # trims the marginal (last) victim by what is actually required.
        # Stream victims (streaming hook installed) lose whole tail
        # segments instead: the engine floors the reclaim to segment
        # boundaries and reports whether the victim emptied.
        still_needed = shortfall
        stream_trim = self.stream_trim
        for index, (victim_id, victim_utility, victim_bytes) in enumerate(planned):
            is_last = index == len(planned) - 1
            if stream_trim is not None:
                want = (
                    still_needed
                    if self.allows_partial and fully_satisfied and is_last
                    else victim_bytes
                )
                trimmed = stream_trim(victim_id, want)
                if trimmed is not None:
                    reclaimed_kb, emptied = trimmed
                    if emptied:
                        self._drop_utility(victim_id)
                        self.on_evict(victim_id, victim_utility)
                    else:
                        self._restore(victim_id, victim_utility)
                    still_needed -= reclaimed_kb
                    continue
            if self.allows_partial and fully_satisfied and is_last:
                trimmed = store.trim(victim_id, still_needed)
                if store.cached_bytes(victim_id) <= _EPSILON_KB:
                    store.evict(victim_id)
                    self._drop_utility(victim_id)
                    self.on_evict(victim_id, victim_utility)
                else:
                    self._restore(victim_id, victim_utility)
                still_needed -= trimmed
            else:
                store.evict(victim_id)
                self._drop_utility(victim_id)
                self.on_evict(victim_id, victim_utility)
                still_needed -= victim_bytes

        grow_to = target if fully_satisfied else current + store.free_kb
        if grow_to <= current + _EPSILON_KB:
            self._reinstate_held(object_id, held)
            return
        if grow_to - current > store.free_kb + _EPSILON_KB:
            raise PolicyError(
                f"policy {self.name}: planned growth of object {object_id} exceeds "
                f"free space ({grow_to - current:.1f} KB > {store.free_kb:.1f} KB)"
            )
        store.set_cached_bytes(object_id, min(grow_to, obj.size), ctx.now)
        self._set_utility(object_id, utility)

    # ------------------------------------------------------------------
    # Introspection helpers.
    # ------------------------------------------------------------------
    def cached_utility(self, object_id: int) -> Optional[float]:
        """Current utility key of a cached object (None if not tracked)."""
        return self._utilities.get(object_id)

    def heap_statistics(self) -> Dict[str, int]:
        """Size, staleness, and compaction counters of the priority heap.

        Used by the throughput benchmark (peak heap size) and by tests that
        assert the compaction invariants.
        """
        live = len(self._entry_seq)
        return {
            "size": len(self._heap),
            "live_entries": live,
            "stale_entries": len(self._heap) - live,
            "peak_size": self._heap_peak,
            "compactions": self._compactions,
            "tracked_objects": len(self._utilities),
        }

    def reset(self) -> None:
        """Forget all frequency and heap state (the store is left alone)."""
        self.frequencies.reset()
        self._utilities.clear()
        self._heap.clear()
        self._entry_seq.clear()
        self._heap_counter = itertools.count()
        self._heap_peak = 0
        self._compactions = 0
