"""Columnar request traces backed by parallel numpy arrays.

:class:`ColumnarTrace` stores a request trace as three parallel arrays —
``times`` (float64), ``object_ids`` (int64), ``client_ids`` (int32) —
instead of one :class:`~repro.workload.trace.Request` object per request.
On million-request traces this removes roughly 100 bytes per request of
object overhead, makes slicing zero-copy (slices are numpy views on the
parent's buffers), and lets the simulator's fast replay path and the
shared-memory parallel transport (:mod:`repro.trace.shm`) consume the
arrays directly.

The class implements the full ``RequestTrace`` protocol — ``len``/``iter``/
indexing, the warm-up/measurement ``split``, CSV round-trip in the exact
format :meth:`RequestTrace.to_csv` writes, plus a binary ``.npz``
round-trip — and converts losslessly to and from :class:`RequestTrace`:
iteration yields :class:`Request` objects built from native Python scalars,
so every consumer of the object protocol sees bit-identical values.
"""

from __future__ import annotations

import csv
from array import array
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError, TraceFormatError
from repro.workload.trace import (
    TRACE_CSV_FIELDS,
    Request,
    RequestTrace,
    iter_csv_rows,
)

#: dtypes of the three trace columns, in canonical column order.
COLUMN_DTYPES: Tuple[Tuple[str, np.dtype], ...] = (
    ("times", np.dtype(np.float64)),
    ("object_ids", np.dtype(np.int64)),
    ("client_ids", np.dtype(np.int32)),
)


class ColumnarTrace:
    """An ordered request trace stored as parallel numpy arrays."""

    __slots__ = ("_times", "_object_ids", "_client_ids", "_owner")

    def __init__(
        self,
        times,
        object_ids,
        client_ids=None,
        *,
        validate: bool = True,
        _owner: Optional[object] = None,
    ):
        times_arr = np.asarray(times, dtype=np.float64)
        ids_arr = np.asarray(object_ids, dtype=np.int64)
        if client_ids is None:
            clients_arr = np.zeros(times_arr.size, dtype=np.int32)
        else:
            clients_arr = np.asarray(client_ids, dtype=np.int32)
        if times_arr.ndim != 1 or ids_arr.ndim != 1 or clients_arr.ndim != 1:
            raise ConfigurationError("trace columns must be one-dimensional arrays")
        if not (times_arr.size == ids_arr.size == clients_arr.size):
            raise ConfigurationError(
                "trace columns differ in length: "
                f"times={times_arr.size}, object_ids={ids_arr.size}, "
                f"client_ids={clients_arr.size}"
            )
        if validate and times_arr.size:
            if not np.isfinite(times_arr[0]) or times_arr[0] < 0:
                raise ConfigurationError(
                    f"request time must be non-negative, got {times_arr[0]}"
                )
            if times_arr.size > 1 and np.any(np.diff(times_arr) < 0):
                bad = int(np.argmax(np.diff(times_arr) < 0)) + 1
                raise ConfigurationError(
                    "requests must be ordered by non-decreasing time "
                    f"({times_arr[bad]} follows {times_arr[bad - 1]})"
                )
        self._times = times_arr
        self._object_ids = ids_arr
        self._client_ids = clients_arr
        # Anything that must outlive the arrays (e.g. the SharedMemory block
        # the columns are views on); None for ordinary heap-backed traces.
        self._owner = _owner

    # ------------------------------------------------------------------
    # Raw column access (the simulator fast path and shm transport).
    # ------------------------------------------------------------------
    @property
    def times_array(self) -> np.ndarray:
        """Arrival times as a float64 array (a view, not a copy)."""
        return self._times

    @property
    def object_ids_array(self) -> np.ndarray:
        """Requested object ids as an int64 array (a view, not a copy)."""
        return self._object_ids

    @property
    def client_ids_array(self) -> np.ndarray:
        """Client ids as an int32 array (a view, not a copy)."""
        return self._client_ids

    @property
    def nbytes(self) -> int:
        """Total payload size of the three columns in bytes."""
        return self._times.nbytes + self._object_ids.nbytes + self._client_ids.nbytes

    # ------------------------------------------------------------------
    # The RequestTrace protocol.
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._times.size

    def __iter__(self) -> Iterator[Request]:
        # One batch tolist per column yields native scalars, so the Request
        # objects are indistinguishable from a RequestTrace's.
        return (
            Request(time=t, object_id=o, client_id=c)
            for t, o, c in zip(
                self._times.tolist(),
                self._object_ids.tolist(),
                self._client_ids.tolist(),
            )
        )

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[Request, "ColumnarTrace"]:
        if isinstance(index, slice):
            # Basic slicing of 1-D arrays is zero-copy: the child trace's
            # columns are views on this trace's buffers.
            return ColumnarTrace(
                self._times[index],
                self._object_ids[index],
                self._client_ids[index],
                validate=False,
                _owner=self._owner,
            )
        return Request(
            time=self._times[index].item(),
            object_id=self._object_ids[index].item(),
            client_id=self._client_ids[index].item(),
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ColumnarTrace):
            return (
                np.array_equal(self._times, other._times)
                and np.array_equal(self._object_ids, other._object_ids)
                and np.array_equal(self._client_ids, other._client_ids)
            )
        if isinstance(other, RequestTrace):
            if len(other) != len(self):
                return False
            return all(a == b for a, b in zip(self, other))
        return NotImplemented

    def __repr__(self) -> str:
        return f"ColumnarTrace(requests={len(self)}, span={self.duration:.1f}s)"

    @property
    def duration(self) -> float:
        """Time span covered by the trace in seconds."""
        if not self._times.size:
            return 0.0
        return (self._times[-1] - self._times[0]).item()

    @property
    def start_time(self) -> float:
        """Timestamp of the first request (0.0 for an empty trace)."""
        return self._times[0].item() if self._times.size else 0.0

    @property
    def end_time(self) -> float:
        """Timestamp of the last request (0.0 for an empty trace)."""
        return self._times[-1].item() if self._times.size else 0.0

    def object_ids(self) -> List[int]:
        """Distinct object ids referenced by the trace, in first-seen order."""
        return list(dict.fromkeys(self._object_ids.tolist()))

    def request_counts(self) -> Dict[int, int]:
        """Map of object id to number of requests, in first-seen order."""
        counts: Dict[int, int] = {}
        for object_id in self._object_ids.tolist():
            counts[object_id] = counts.get(object_id, 0) + 1
        return counts

    def split(self, fraction: float = 0.5) -> Tuple["ColumnarTrace", "ColumnarTrace"]:
        """Split into (warm-up, measurement) zero-copy views by request count."""
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in [0, 1], got {fraction}")
        cut = int(round(fraction * len(self)))
        return self[:cut], self[cut:]

    def client_shard(self, shard: int, num_shards: int) -> "ColumnarTrace":
        """Select the sub-trace of clients with ``client_id % num_shards == shard``.

        Partitions the trace by client affinity — the same modulo rule the
        simulator uses to pin clients to last-mile replicas and hierarchy
        pops — so the union of the ``num_shards`` shards is exactly this
        trace and each client's requests land in exactly one shard.  The
        selection is a boolean-mask fancy index (a compact copy, not a
        view); relative request order within the shard is preserved, so
        the result is still time-ordered.
        """
        if num_shards <= 0:
            raise ConfigurationError(
                f"num_shards must be positive, got {num_shards}"
            )
        if not 0 <= shard < num_shards:
            raise ConfigurationError(
                f"shard must be in [0, {num_shards}), got {shard}"
            )
        mask = (self._client_ids.astype(np.int64, copy=False) % num_shards) == shard
        return ColumnarTrace(
            self._times[mask],
            self._object_ids[mask],
            self._client_ids[mask],
            validate=False,
        )

    # ------------------------------------------------------------------
    # Conversions.
    # ------------------------------------------------------------------
    def to_request_trace(self) -> RequestTrace:
        """Materialize as an object-per-request :class:`RequestTrace`."""
        return RequestTrace(iter(self))

    @classmethod
    def from_request_trace(cls, trace: RequestTrace) -> "ColumnarTrace":
        """Build a columnar copy of an object-per-request trace."""
        count = len(trace)
        times = np.fromiter((r.time for r in trace), dtype=np.float64, count=count)
        object_ids = np.fromiter(
            (r.object_id for r in trace), dtype=np.int64, count=count
        )
        client_ids = np.fromiter(
            (r.client_id for r in trace), dtype=np.int32, count=count
        )
        return cls(times, object_ids, client_ids, validate=False)

    @classmethod
    def from_trace(
        cls, trace: Union["ColumnarTrace", RequestTrace]
    ) -> "ColumnarTrace":
        """Coerce any trace to columnar form (no copy if already columnar)."""
        if isinstance(trace, cls):
            return trace
        return cls.from_request_trace(trace)

    @classmethod
    def concat(
        cls,
        segments: Sequence[Union["ColumnarTrace", RequestTrace]],
        *,
        rebase: bool = False,
        gap: float = 0.0,
    ) -> "ColumnarTrace":
        """Stitch trace segments into one trace (multi-day log studies).

        Parameters
        ----------
        segments:
            The traces to concatenate, in chronological order.  Each may be
            columnar or object-per-request; each must itself be
            time-ordered.  An empty sequence yields an empty trace.
        rebase:
            With ``False`` (default) the segments' timestamps are taken as
            a shared clock (e.g. epoch seconds) and concatenation requires
            each segment to start no earlier than its predecessor ends —
            violations raise :class:`~repro.exceptions.ConfigurationError`
            naming the offending boundary.  With ``True`` each segment
            after the first is shifted so it begins ``gap`` seconds after
            its predecessor's last request (intra-segment spacing is
            preserved exactly); use this to stitch rolling logs whose
            timestamps were re-based to zero per segment, as
            ``repro ingest --append`` does.
        gap:
            Idle seconds inserted between segments when ``rebase=True``
            (must be non-negative; ignored otherwise).

        Returns a new heap-backed trace (the result never aliases the
        inputs' buffers).  ``concat`` then ``split``/slicing round-trips
        losslessly; see ``docs/traces.md`` for a worked multi-day example.
        """
        if gap < 0:
            raise ConfigurationError(f"gap must be non-negative, got {gap}")
        columnar = [cls.from_trace(segment) for segment in segments]
        if not any(len(segment) for segment in columnar):
            return cls(
                np.empty(0, np.float64), np.empty(0, np.int64), np.empty(0, np.int32)
            )
        times_parts: List[np.ndarray] = []
        kept: List["ColumnarTrace"] = []
        previous_end: Optional[float] = None
        for index, segment in enumerate(columnar):
            if not len(segment):
                continue  # empty segments contribute nothing, shift nothing
            times = segment.times_array
            if rebase and previous_end is not None:
                # Two steps so the boundary is exact: (t - t[0]) is 0.0 for
                # the first element, and adding the target start keeps the
                # stitched clock non-decreasing to the last ulp.
                times = (times - times[0]) + (previous_end + gap)
            elif previous_end is not None and times[0] < previous_end:
                raise ConfigurationError(
                    f"segment {index} starts at {times[0]:g}, before the "
                    f"previous segment ends at {previous_end:g}; pass "
                    "rebase=True to shift segments into sequence"
                )
            times_parts.append(times)
            kept.append(segment)
            previous_end = float(times[-1])
        return cls(
            np.concatenate(times_parts),
            np.concatenate([segment.object_ids_array for segment in kept]),
            np.concatenate([segment.client_ids_array for segment in kept]),
            validate=False,
        )

    # ------------------------------------------------------------------
    # Serialisation: CSV (RequestTrace-compatible) and binary .npz.
    # ------------------------------------------------------------------
    def to_csv(self, path: Union[str, Path]) -> None:
        """Write the trace as CSV, byte-identical to ``RequestTrace.to_csv``."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(TRACE_CSV_FIELDS)
            writer.writerows(
                zip(
                    self._times.tolist(),
                    self._object_ids.tolist(),
                    self._client_ids.tolist(),
                )
            )

    @classmethod
    def from_csv(cls, path: Union[str, Path]) -> "ColumnarTrace":
        """Read a CSV trace (as written by either trace class), streaming.

        Rows are validated as they are parsed (:func:`iter_csv_rows`) and
        accumulated in compact typed buffers, never as per-row objects.
        """
        times = array("d")
        object_ids = array("q")
        client_ids = array("l")
        for time, object_id, client_id in iter_csv_rows(path):
            times.append(time)
            object_ids.append(object_id)
            client_ids.append(client_id)
        return cls(
            np.frombuffer(times, dtype=np.float64) if len(times) else np.empty(0),
            np.frombuffer(object_ids, dtype=np.int64) if len(times) else np.empty(0, np.int64),
            np.array(client_ids, dtype=np.int32),
            validate=False,
        )

    def to_npz(self, path: Union[str, Path]) -> None:
        """Write the three columns to a compressed ``.npz`` archive.

        Schema: arrays ``times`` (float64), ``object_ids`` (int64) and
        ``client_ids`` (int32) of equal length (see ``docs/traces.md``).
        """
        np.savez_compressed(
            Path(path),
            times=self._times,
            object_ids=self._object_ids,
            client_ids=self._client_ids,
        )

    @classmethod
    def from_npz(cls, path: Union[str, Path]) -> "ColumnarTrace":
        """Read a trace previously written by :meth:`to_npz`."""
        path = Path(path)
        try:
            with np.load(path) as archive:
                columns = {}
                for name, dtype in COLUMN_DTYPES:
                    if name not in archive:
                        raise TraceFormatError(
                            f"{path}: missing trace column {name!r} "
                            f"(found {sorted(archive.files)})"
                        )
                    columns[name] = archive[name].astype(dtype, copy=False)
        except (OSError, ValueError) as exc:
            raise TraceFormatError(f"{path}: not a readable .npz trace: {exc}") from exc
        try:
            return cls(
                columns["times"], columns["object_ids"], columns["client_ids"]
            )
        except ConfigurationError as exc:
            raise TraceFormatError(f"{path}: {exc}") from exc
