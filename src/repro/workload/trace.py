"""Request-trace data structures and serialisation.

A :class:`Request` is one client request for one streaming media object at a
point in time.  A :class:`RequestTrace` is an ordered sequence of requests
plus helpers for splitting into warm-up and measurement halves (the protocol
the paper uses in Section 4.1), slicing, and round-tripping through CSV so
traces can be archived alongside experiment results.
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError, TraceFormatError

#: Column order of the CSV trace format shared by :class:`RequestTrace` and
#: :class:`repro.trace.columnar.ColumnarTrace`.
TRACE_CSV_FIELDS: Tuple[str, str, str] = ("time", "object_id", "client_id")


def iter_csv_rows(path: Union[str, Path]) -> Iterator[Tuple[float, int, int]]:
    """Stream validated ``(time, object_id, client_id)`` rows from a CSV trace.

    Rows are parsed and validated one at a time — malformed numeric fields,
    non-finite or negative times, and out-of-order timestamps all raise
    :class:`~repro.exceptions.TraceFormatError` carrying the offending line
    number, *without* first materializing the rest of the file.
    """
    path = Path(path)
    with path.open("r", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or tuple(header) != TRACE_CSV_FIELDS:
            raise TraceFormatError(
                f"{path}: expected header {TRACE_CSV_FIELDS}, got {header}"
            )
        previous_time: float = -math.inf
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            try:
                time = float(row[0])
                object_id = int(row[1])
                client_id = int(row[2])
            except (ValueError, IndexError) as exc:
                raise TraceFormatError(f"{path}:{line_number}: bad row {row!r}") from exc
            if not math.isfinite(time) or time < 0:
                raise TraceFormatError(
                    f"{path}:{line_number}: time must be finite and non-negative, "
                    f"got {row[0]!r}"
                )
            if time < previous_time:
                raise TraceFormatError(
                    f"{path}:{line_number}: time {time} decreases "
                    f"(previous request at {previous_time})"
                )
            previous_time = time
            yield time, object_id, client_id


@dataclass(frozen=True)
class Request:
    """A single request in a workload trace.

    Attributes
    ----------
    time:
        Arrival time in seconds from the start of the trace.
    object_id:
        Id of the requested media object (must exist in the catalog).
    client_id:
        Identifier of the requesting client; the paper assumes a homogeneous
        client cloud behind the proxy, so most experiments use a single id.
    """

    time: float
    object_id: int
    client_id: int = 0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(f"request time must be non-negative, got {self.time}")


class RequestTrace:
    """An ordered sequence of :class:`Request` objects."""

    _FIELDS = TRACE_CSV_FIELDS

    def __init__(self, requests: Iterable[Request]):
        self._requests: List[Request] = list(requests)
        for earlier, later in zip(self._requests, self._requests[1:]):
            if later.time < earlier.time:
                raise ConfigurationError(
                    "requests must be ordered by non-decreasing time "
                    f"({later.time} follows {earlier.time})"
                )

    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self._requests)

    def __getitem__(self, index: Union[int, slice]) -> Union[Request, "RequestTrace"]:
        if isinstance(index, slice):
            return RequestTrace(self._requests[index])
        return self._requests[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RequestTrace):
            return NotImplemented
        return self._requests == other._requests

    @property
    def duration(self) -> float:
        """Time span covered by the trace in seconds."""
        if not self._requests:
            return 0.0
        return self._requests[-1].time - self._requests[0].time

    @property
    def start_time(self) -> float:
        """Timestamp of the first request (0.0 for an empty trace)."""
        return self._requests[0].time if self._requests else 0.0

    @property
    def end_time(self) -> float:
        """Timestamp of the last request (0.0 for an empty trace)."""
        return self._requests[-1].time if self._requests else 0.0

    def object_ids(self) -> List[int]:
        """Distinct object ids referenced by the trace, in first-seen order."""
        seen: List[int] = []
        seen_set = set()
        for request in self._requests:
            if request.object_id not in seen_set:
                seen.append(request.object_id)
                seen_set.add(request.object_id)
        return seen

    def request_counts(self) -> dict:
        """Map of object id to number of requests in the trace."""
        counts: dict = {}
        for request in self._requests:
            counts[request.object_id] = counts.get(request.object_id, 0) + 1
        return counts

    def split(self, fraction: float = 0.5) -> Tuple["RequestTrace", "RequestTrace"]:
        """Split into (warm-up, measurement) sub-traces by request count.

        The paper warms the cache with the first half of the workload and
        computes all metrics over the second half (Section 4.1).
        """
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in [0, 1], got {fraction}")
        cut = int(round(fraction * len(self._requests)))
        return RequestTrace(self._requests[:cut]), RequestTrace(self._requests[cut:])

    def to_csv(self, path: Union[str, Path]) -> None:
        """Write the trace to ``path`` as a CSV with a header row."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self._FIELDS)
            for request in self._requests:
                writer.writerow([request.time, request.object_id, request.client_id])

    @classmethod
    def from_csv(cls, path: Union[str, Path]) -> "RequestTrace":
        """Read a trace previously written by :meth:`to_csv`.

        Rows are streamed and validated as they are parsed (see
        :func:`iter_csv_rows`): a malformed or out-of-order row raises
        :class:`~repro.exceptions.TraceFormatError` with its line number
        without reading the remainder of the file first.
        """
        return cls(
            Request(time=time, object_id=object_id, client_id=client_id)
            for time, object_id, client_id in iter_csv_rows(path)
        )

    @classmethod
    def from_arrays(
        cls,
        times: Sequence[float],
        object_ids: Sequence[int],
        client_ids: Sequence[int] = (),
    ) -> "RequestTrace":
        """Build a trace from parallel arrays (as produced by generators)."""
        if len(times) != len(object_ids):
            raise ConfigurationError(
                f"times ({len(times)}) and object_ids ({len(object_ids)}) differ in length"
            )
        has_clients = len(client_ids) > 0
        if has_clients and len(client_ids) != len(times):
            raise ConfigurationError(
                f"client_ids ({len(client_ids)}) must match times ({len(times)})"
            )
        # Convert whole arrays to native Python scalars up front: one batch
        # ``tolist`` per column is far cheaper than boxing a numpy scalar per
        # request on million-request traces.
        times_list = _as_scalar_list(times, float)
        ids_list = _as_scalar_list(object_ids, int)
        if has_clients:
            clients_list = _as_scalar_list(client_ids, int)
            requests = [
                Request(time=t, object_id=o, client_id=c)
                for t, o, c in zip(times_list, ids_list, clients_list)
            ]
        else:
            requests = [
                Request(time=t, object_id=o) for t, o in zip(times_list, ids_list)
            ]
        return cls(requests)


def _as_scalar_list(values: Sequence, scalar_type: type) -> list:
    """Return ``values`` as a list of native ``scalar_type`` elements.

    ``ndarray.tolist`` already yields native scalars, so the per-element
    cast runs only when the batch conversion produced the wrong type (e.g.
    integer arrival times) or no ``tolist`` exists.
    """
    tolist = getattr(values, "tolist", None)
    converted = tolist() if tolist is not None else list(values)
    if converted and type(converted[0]) is scalar_type:
        return converted
    return [scalar_type(value) for value in converted]
