"""Per-stage wall-clock profiling: the :class:`StageProfiler`.

The profiler answers "where does a run's wall-clock go" at the stage
granularity the ROADMAP's vectorisation work needs: workload draw,
topology build, the replay loop itself, policy operations, bandwidth
estimation, reactive observation, and fault evaluation.  Two collection
styles cover the simulator's structure:

* **block timing** (:meth:`stage` / :meth:`add`) for code the simulator
  runs once — topology build, the whole replay loop;
* **call wrapping** (:meth:`attach`) for per-request callables — the
  wrapper is installed as an *instance* attribute shadowing the bound
  method and removed again by :meth:`detach_all`, so profiling leaves
  no trace on the objects after the run.

Wrapping adds a Python-level indirection per call, so a profiled run is
slower than an unprofiled one; the simulated results are unchanged
(timers only read the wall clock, never the simulation state).  Nested
stages record *inclusive* time: a reactive observation that consults the
estimator bills the estimator's share to both stages.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Tuple

__all__ = ["StageProfiler"]


class StageProfiler:
    """Accumulate wall-clock seconds and call counts per named stage."""

    def __init__(self) -> None:
        """Create an empty profiler with no stages recorded."""
        self._seconds: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}
        self._wrapped: List[Tuple[Any, str]] = []

    def add(self, stage: str, seconds: float, calls: int = 1) -> None:
        """Credit ``seconds`` (and ``calls`` invocations) to ``stage``."""
        self._seconds[stage] = self._seconds.get(stage, 0.0) + seconds
        self._calls[stage] = self._calls.get(stage, 0) + calls

    @contextmanager
    def stage(self, name: str):
        """Context manager timing one block of code under ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - started)

    def wrap(self, stage: str, func: Callable) -> Callable:
        """Return a callable that times every invocation of ``func``."""
        seconds = self._seconds
        calls = self._calls
        perf_counter = time.perf_counter

        def timed(*args, **kwargs):
            started = perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                seconds[stage] = seconds.get(stage, 0.0) + (
                    perf_counter() - started
                )
                calls[stage] = calls.get(stage, 0) + 1

        return timed

    def attach(self, obj: Any, attribute: str, stage: str) -> bool:
        """Shadow ``obj.attribute`` with a timing wrapper billing ``stage``.

        The wrapper is set as an instance attribute over the bound
        method; :meth:`detach_all` restores the original by deleting the
        shadow.  Returns ``False`` (and wraps nothing) when ``obj``
        rejects instance attributes (``__slots__``) — that stage is then
        simply absent from the report rather than breaking the run.
        """
        wrapper = self.wrap(stage, getattr(obj, attribute))
        try:
            setattr(obj, attribute, wrapper)
        except AttributeError:
            return False
        self._wrapped.append((obj, attribute))
        return True

    def detach_all(self) -> None:
        """Remove every wrapper installed by :meth:`attach`."""
        while self._wrapped:
            obj, attribute = self._wrapped.pop()
            try:
                delattr(obj, attribute)
            except AttributeError:
                pass

    def report(self) -> Dict[str, Dict[str, float]]:
        """Stage → ``{"seconds": total, "calls": count}``, a plain dict."""
        return {
            stage: {
                "seconds": self._seconds[stage],
                "calls": self._calls.get(stage, 0),
            }
            for stage in self._seconds
        }
