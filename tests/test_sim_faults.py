"""Fault injection and graceful degradation (``repro.sim.faults``).

Pinned guarantees:

* **Bit-identity, faults off** — a config with ``faults=None`` replays
  exactly like a config that never mentions faults, on all four replay
  paths, per policy.
* **Bit-identity, faults on** — with an active fault schedule all four
  replay paths still agree exactly, because every path calls the injector
  at the same sequence point with the same arguments.
* **Fetch model semantics** — the timeout threshold, the exponential
  retry backoff (and its budget), serve-stale classification, and the
  bandwidth-floor sample fed to the estimator on failure.
* **Fault-storm reactive behaviour** — hysteresis re-arms across
  outage/recovery oscillation and ``reactive_rekey_cap`` holds under
  adversarial flapping.
"""

import numpy as np
import pytest

from repro.core.policies import make_policy
from repro.exceptions import ConfigurationError
from repro.network.measurement import PassiveEstimator
from repro.network.path import BANDWIDTH_FLOOR
from repro.network.variability import NLANRRatioVariability
from repro.sim.config import BandwidthKnowledge, ClientCloudConfig, SimulationConfig
from repro.sim.events import ReactiveRekeyer
from repro.sim.faults import (
    FETCH_FAILED,
    FETCH_OK,
    FaultConfig,
    FaultEpisode,
    FaultInjector,
    FaultSchedule,
    stale_quality,
)
from repro.sim.simulator import ProxyCacheSimulator
from repro.workload.gismo import GismoWorkloadGenerator, WorkloadConfig

from conftest import assert_replay_paths_identical, run_replay_paths


@pytest.fixture(scope="module")
def workload():
    config = WorkloadConfig(seed=0).scaled(0.02)  # 100 objects, 2000 requests
    return GismoWorkloadGenerator(config).generate(columnar=True)


@pytest.fixture(scope="module")
def outage_schedule(workload):
    """A scripted outage window over the busiest servers, mid-trace."""
    trace = workload.trace
    span = trace.end_time - trace.start_time
    start = trace.start_time + 0.35 * span
    end = start + 0.2 * span
    counts = {}
    for object_id, count in trace.request_counts().items():
        server = workload.catalog.get(object_id).server_id
        counts[server] = counts.get(server, 0) + count
    busiest = sorted(counts, key=lambda s: counts[s], reverse=True)[:3]
    return tuple(
        FaultEpisode("origin-outage", start, end, server_id=server)
        for server in sorted(busiest)
    )


def _passive_config(**overrides):
    base = dict(
        cache_size_gb=0.5,
        variability=NLANRRatioVariability(),
        bandwidth_knowledge=BandwidthKnowledge.PASSIVE,
        seed=0,
    )
    base.update(overrides)
    return SimulationConfig(**base)


def _run(workload, config, replay, policy="PB"):
    return ProxyCacheSimulator(workload, config).run(
        make_policy(policy), replay=replay
    )


# ----------------------------------------------------------------------
# Episode / config validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEpisode("meteor-strike", 0.0, 1.0, server_id=0)

    def test_empty_window_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEpisode("origin-outage", 5.0, 5.0, server_id=0)

    def test_origin_kind_must_not_target_group(self):
        with pytest.raises(ConfigurationError):
            FaultEpisode("origin-outage", 0.0, 1.0, group_id=2)

    def test_link_kind_must_not_target_server(self):
        with pytest.raises(ConfigurationError):
            FaultEpisode("link-down", 0.0, 1.0, server_id=2)

    def test_outage_kinds_require_zero_factor(self):
        with pytest.raises(ConfigurationError):
            FaultEpisode("origin-outage", 0.0, 1.0, server_id=0, factor=0.5)

    def test_flap_kinds_require_partial_factor(self):
        with pytest.raises(ConfigurationError):
            FaultEpisode("bandwidth-flap", 0.0, 1.0, server_id=0, factor=0.0)
        with pytest.raises(ConfigurationError):
            FaultEpisode("bandwidth-flap", 0.0, 1.0, server_id=0, factor=1.0)

    def test_config_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(random_origin_outages=-1)
        with pytest.raises(ConfigurationError):
            FaultConfig(severity=1.0)
        with pytest.raises(ConfigurationError):
            FaultConfig(timeout_factor=1.0)
        with pytest.raises(ConfigurationError):
            FaultConfig(max_retries=-1)
        with pytest.raises(ConfigurationError):
            FaultConfig(recovery_fraction=0.0)

    def test_backoff_budget(self):
        config = FaultConfig(max_retries=3, backoff_base_s=2.0)
        # 2 * (2^3 - 1) = 14 seconds of cumulative backoff.
        assert config.backoff_budget_s == 14.0
        assert FaultConfig(max_retries=0).backoff_budget_s == 0.0

    def test_schedule_sorts_and_windows(self):
        late = FaultEpisode("origin-outage", 50.0, 60.0, server_id=0)
        early = FaultEpisode("bandwidth-flap", 5.0, 15.0, server_id=1, factor=0.2)
        schedule = FaultSchedule(episodes=(late, early))
        assert schedule.episodes[0] is early
        assert schedule.window() == (5.0, 60.0)
        assert len(schedule) == 2 and bool(schedule)
        assert not FaultSchedule(episodes=())

    def test_build_schedule_rejects_unknown_targets(self, workload):
        simulator = ProxyCacheSimulator(workload, _passive_config())
        topology = simulator.build_topology(np.random.default_rng(0))
        bad_server = max(topology.paths.server_ids()) + 1000
        config = FaultConfig(
            episodes=(
                FaultEpisode("origin-outage", 0.0, 1.0, server_id=bad_server),
            )
        )
        with pytest.raises(ConfigurationError):
            config.build_schedule(topology, trace_start=0.0, trace_end=10.0)
        # No modeled last mile: stochastic link flaps have nothing to hit.
        with pytest.raises(ConfigurationError):
            FaultConfig(random_link_flaps=1).build_schedule(
                topology, trace_start=0.0, trace_end=10.0
            )

    def test_build_schedule_is_deterministic(self, workload):
        simulator = ProxyCacheSimulator(workload, _passive_config())
        topology = simulator.build_topology(np.random.default_rng(0))
        config = FaultConfig(
            random_origin_outages=3, random_bandwidth_flaps=2, seed=11
        )
        first = config.build_schedule(topology, trace_start=0.0, trace_end=1e4)
        second = config.build_schedule(topology, trace_start=0.0, trace_end=1e4)
        assert first.episodes == second.episodes
        assert len(first) == 5
        window = first.window()
        assert 0.0 <= window[0] and window[0] < 1e4


# ----------------------------------------------------------------------
# Injector semantics (unit level)
# ----------------------------------------------------------------------
def _injector(episodes, estimator=None, **config_kwargs):
    config = FaultConfig(episodes=tuple(episodes), **config_kwargs)
    return FaultInjector(FaultSchedule(episodes=tuple(episodes)), config, estimator)


class TestInjector:
    def test_no_active_fault_returns_none(self):
        injector = _injector(
            [FaultEpisode("origin-outage", 10.0, 20.0, server_id=0)]
        )
        assert injector.intercept(5.0, 0, None, 100.0, None) is None
        # Other servers are untouched even during the outage.
        assert injector.intercept(15.0, 1, None, 100.0, None) is None

    def test_outage_fails_after_exhausting_backoff_budget(self):
        config_retries, backoff = 2, 1.0
        injector = _injector(
            [FaultEpisode("origin-outage", 10.0, 1e6, server_id=0)],
            max_retries=config_retries,
            backoff_base_s=backoff,
        )
        disposition = injector.intercept(15.0, 0, None, 100.0, None)
        code, observed, origin_sample, waited, retries = disposition
        assert code == FETCH_FAILED
        # The estimator sees a stalled transfer, not silence.
        assert observed == BANDWIDTH_FLOOR
        assert origin_sample == BANDWIDTH_FLOOR
        # Total wait equals the full exponential budget, never more.
        assert waited == backoff * ((1 << config_retries) - 1)
        assert retries == config_retries
        assert injector.failed_fetches == 1

    def test_retry_succeeds_when_outage_ends_inside_backoff(self):
        injector = _injector(
            [FaultEpisode("origin-outage", 10.0, 16.0, server_id=0)],
            max_retries=3,
            backoff_base_s=2.0,
        )
        # Request at t=15: attempt 1 re-evaluates at t=17 (> end): served.
        disposition = injector.intercept(15.0, 0, None, 100.0, None)
        code, observed, origin_sample, waited, retries = disposition
        assert code == FETCH_OK
        assert observed == 100.0 and origin_sample == 100.0
        assert waited == 2.0 and retries == 1
        assert injector.retried_requests == 1
        assert injector.total_retries == 1

    def test_flap_degrades_without_failing(self):
        injector = _injector(
            [FaultEpisode("bandwidth-flap", 10.0, 20.0, server_id=0, factor=0.5)],
            timeout_factor=4.0,  # threshold factor 0.25 < 0.5: no timeout
        )
        code, observed, origin_sample, waited, retries = injector.intercept(
            15.0, 0, None, 100.0, None
        )
        assert code == FETCH_OK
        assert observed == 50.0 and origin_sample == 50.0
        assert waited == 0.0 and retries == 0
        assert injector.degraded_requests == 1
        assert injector.failed_fetches == 0

    def test_link_fault_hits_only_its_group(self):
        injector = _injector(
            [FaultEpisode("link-flap", 10.0, 20.0, group_id=1, factor=0.5)]
        )
        assert injector.intercept(15.0, 0, 0, 100.0, 80.0) is None
        code, observed, origin_sample, _, _ = injector.intercept(
            15.0, 0, 1, 100.0, 80.0
        )
        assert code == FETCH_OK
        # Last-mile degraded to 40; origin hop unaffected.
        assert observed == 40.0
        assert origin_sample == 100.0

    def test_mean_time_to_recovery_tracks_estimate(self):
        estimator = PassiveEstimator()
        estimator.observe(0, 100.0)  # known server at ~100 KB/s
        injector = _injector(
            [FaultEpisode("origin-outage", 10.0, 20.0, server_id=0)],
            estimator=estimator,
            recovery_fraction=0.8,
        )
        snapshot = estimator.estimate(0)
        # During the outage the loop feeds the floor sample.
        injector.intercept(15.0, 0, None, 100.0, None)
        estimator.observe(0, BANDWIDTH_FLOOR)
        # After the outage, estimates climb back; recovery is logged the
        # moment a request sees the estimate above 80% of the snapshot.
        for t in (25.0, 30.0, 35.0, 40.0, 45.0, 50.0):
            injector.intercept(t, 0, None, 100.0, None)
            estimator.observe(0, 120.0)
        injector.intercept(55.0, 0, None, 100.0, None)
        report = injector.report()
        assert len(report.recoveries) == 1
        server, seconds = report.recoveries[0]
        assert server == 0 and seconds > 0.0
        assert report.mean_time_to_recovery_s == seconds
        assert report.unrecovered == 0
        assert estimator.estimate(0) > 0.8 * snapshot

    def test_stale_quality_quantised_to_layers(self):
        # 600 KB cached of a 100 s, 48 KB/s stream: supports 6 KB/s,
        # fraction 0.125 → one layer of eight.
        assert stale_quality(600.0, 100.0, 48.0, 1.0 / 8.0) == 1.0 / 8.0
        assert stale_quality(0.0, 100.0, 48.0, 1.0 / 8.0) == 0.0
        assert stale_quality(1e9, 100.0, 48.0, 1.0 / 8.0) == 1.0


# ----------------------------------------------------------------------
# Replay-path bit-identity, faults off and on
# ----------------------------------------------------------------------
class TestReplayIdentity:
    def test_faults_none_identical_to_default_config(self, workload):
        """``faults=None`` must replay exactly like a pre-fault config."""
        explicit = run_replay_paths(workload, _passive_config(faults=None))
        default = run_replay_paths(workload, _passive_config())
        for label, a in explicit.items():
            b = default[label]
            assert a.metrics == b.metrics
            assert a.fault_report is None
            assert a.metrics.availability == 1.0
            assert a.metrics.failed_requests == 0

    @pytest.mark.parametrize("policy_name", ["PB", "IB", "LRU", "IB-V"])
    def test_all_paths_identical_with_outage(
        self, workload, outage_schedule, policy_name
    ):
        config = _passive_config(faults=FaultConfig(episodes=outage_schedule))
        results = assert_replay_paths_identical(workload, config, policy_name)
        auto = _run(workload, config, None, policy=policy_name)
        assert auto.metrics == results["event"].metrics
        assert auto.fault_report.as_dict() == pytest.approx(
            results["event"].fault_report.as_dict(), nan_ok=True
        )

    def test_all_paths_identical_with_stochastic_faults(self, workload):
        config = _passive_config(
            faults=FaultConfig(
                random_origin_outages=2,
                random_bandwidth_flaps=3,
                mean_duration_s=400.0,
                severity=0.2,
                seed=7,
            )
        )
        results = assert_replay_paths_identical(workload, config)
        assert results["event"].fault_report.episodes == 5

    def test_all_paths_identical_with_link_faults_and_reactive(self, workload):
        outage = FaultEpisode("link-down", 2000.0, 3000.0, group_id=1)
        config = _passive_config(
            client_clouds=ClientCloudConfig(
                groups=4, bandwidth=200.0, variability=NLANRRatioVariability()
            ),
            reactive_threshold=0.15,
            reactive_passive=True,
            reactive_hysteresis=0.05,
            faults=FaultConfig(episodes=(outage,)),
        )
        results = assert_replay_paths_identical(workload, config)
        reference = results["event"]
        for result in results.values():
            assert result.reactive_shifts == reference.reactive_shifts


# ----------------------------------------------------------------------
# End-to-end outage semantics
# ----------------------------------------------------------------------
class TestOutageSemantics:
    def test_outage_reduces_availability_and_serves_stale(
        self, workload, outage_schedule
    ):
        config = _passive_config(faults=FaultConfig(episodes=outage_schedule))
        result = _run(workload, config, "fast")
        metrics = result.metrics
        report = result.fault_report
        assert report.failed_fetches > 0
        assert metrics.availability < 1.0
        # Every failed fetch resolved to either a stale serve or a failure.
        assert report.stale_serves + report.failed_requests == report.failed_fetches
        assert report.stale_serves > 0  # the busiest servers have cached prefixes
        # Retries respect the budget: never more than max_retries per fetch.
        attempts = report.retried_requests
        assert attempts > 0
        assert report.total_retries <= attempts * config.faults.max_retries
        # The dead servers' estimates collapsed and recovered.
        assert len(report.recoveries) + report.unrecovered == len(outage_schedule)

    def test_serve_stale_off_turns_stale_serves_into_failures(
        self, workload, outage_schedule
    ):
        stale_on = _passive_config(faults=FaultConfig(episodes=outage_schedule))
        stale_off = _passive_config(
            faults=FaultConfig(episodes=outage_schedule, serve_stale=False)
        )
        on = _run(workload, stale_on, "fast")
        off = _run(workload, stale_off, "fast")
        assert on.fault_report.stale_serves > 0
        assert off.fault_report.stale_serves == 0
        # Same fetches fail either way; only their resolution changes: every
        # stale serve of the lenient run becomes a hard failure.
        assert off.fault_report.failed_fetches == on.fault_report.failed_fetches
        assert (
            off.fault_report.failed_requests
            == on.fault_report.failed_requests + on.fault_report.stale_serves
        )
        assert off.metrics.availability <= on.metrics.availability

    def test_fault_metrics_surface_in_as_dict(self, workload, outage_schedule):
        config = _passive_config(faults=FaultConfig(episodes=outage_schedule))
        table = _run(workload, config, "fast").metrics.as_dict()
        for key in (
            "availability",
            "failed_requests",
            "stale_served_requests",
            "retried_requests",
            "total_retries",
        ):
            assert key in table


# ----------------------------------------------------------------------
# Fault storms vs the reactive machinery (hysteresis, re-key cap)
# ----------------------------------------------------------------------
class _CountingPolicy:
    """Minimal policy stub: counts on_bandwidth_shift invocations."""

    def __init__(self):
        self.shifts = []

    def on_bandwidth_shift(self, server_id, bandwidth, now):
        self.shifts.append((server_id, bandwidth, now))
        return 1


class TestFaultStorms:
    def test_hysteresis_rearms_across_outage_recovery_oscillation(self):
        """An outage/recovery flap 100→1→100→1→100 re-keys twice, not four times.

        After a re-key the view re-anchors at the *new* believed value and
        disarms; while disarmed, swings away from that anchor are swallowed,
        and only a sample settling back inside the hysteresis band re-arms
        the view for the next genuine shift.
        """
        policy = _CountingPolicy()
        estimator = PassiveEstimator(smoothing=1.0)  # estimate = last sample
        estimator.observe(0, 100.0)
        rekeyer = ReactiveRekeyer(
            policy, estimator, threshold=0.3, hysteresis=0.1
        )

        def swing(now, sample):
            prior = estimator.estimate(0)
            estimator.observe(0, sample)
            rekeyer.notify(now, 0, prior)

        # Outage: the estimate collapses far past the threshold -> re-key,
        # re-anchor at the collapsed value, disarm.
        swing(1.0, 1.0)
        assert rekeyer.shifts == 1
        assert rekeyer.disarmed_views(0) == (None,)
        assert rekeyer.anchor_for(0) == 1.0
        # Recovery spike while disarmed: far outside the band around the
        # collapsed anchor — swallowed, no re-key, still disarmed.
        swing(2.0, 100.0)
        assert rekeyer.shifts == 1
        assert rekeyer.disarmed_views(0) == (None,)
        # Outage again: the estimate settles back at the anchor -> re-arm.
        swing(3.0, 1.0)
        assert rekeyer.disarmed_views(0) == ()
        assert rekeyer.shifts == 1  # re-arming itself never re-keys
        # Armed again, so the next recovery swing re-keys and re-anchors up.
        swing(4.0, 100.0)
        assert rekeyer.shifts == 2
        assert rekeyer.disarmed_views(0) == (None,)
        assert rekeyer.anchor_for(0) == 100.0
        # Settling at the recovered value re-arms once more.
        swing(5.0, 100.0)
        assert rekeyer.disarmed_views(0) == ()
        assert rekeyer.shifts == 2
        assert len(policy.shifts) == 2

    def test_rekey_cap_holds_under_adversarial_flapping(self):
        policy = _CountingPolicy()
        estimator = PassiveEstimator(smoothing=1.0)
        estimator.observe(0, 100.0)
        rekeyer = ReactiveRekeyer(
            policy, estimator, threshold=0.3, rekey_cap=2
        )
        # No hysteresis: the cap is the only brake.  Alternate 100 <-> 1
        # forever; the anchor freezes at 100 once the cap bites, so every
        # collapsed swing afterwards still crosses the threshold.
        for step in range(50):
            prior = estimator.estimate(0)
            estimator.observe(0, 1.0 if step % 2 == 0 else 100.0)
            rekeyer.notify(float(step), 0, prior)
        assert rekeyer.rekeys_by_server[0] == 2
        assert rekeyer.shifts == 2
        # Steps 0 and 1 spent the budget; of the remaining 48 swings, the 24
        # collapsed ones (believed 1 vs frozen anchor 100) are suppressed and
        # the 24 recovered ones sit inside the threshold of the anchor.
        assert rekeyer.suppressed == 24
        assert len(policy.shifts) == 2

    def test_simulated_fault_storm_respects_rekey_cap(self, workload):
        """End-to-end: oscillating outages cannot exceed the per-server cap."""
        trace = workload.trace
        span = trace.end_time - trace.start_time
        # Five short outages on every server (broadcast), evenly spaced.
        episodes = tuple(
            FaultEpisode(
                "origin-outage",
                trace.start_time + (0.1 + 0.15 * k) * span,
                trace.start_time + (0.15 + 0.15 * k) * span,
            )
            for k in range(5)
        )
        cap = 3
        config = _passive_config(
            reactive_threshold=0.15,
            reactive_passive=True,
            reactive_hysteresis=0.05,
            reactive_rekey_cap=cap,
            faults=FaultConfig(episodes=episodes),
        )
        results = assert_replay_paths_identical(workload, config)
        result = results["event"]
        assert result.fault_report.failed_fetches > 0
        server_count = len(workload.catalog.server_ids())
        assert result.reactive_shifts <= cap * server_count
        assert result.reactive_suppressed > 0
