"""Property-based tests for workload, network, streaming, and knapsack models."""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.policies.optimal import optimal_allocation, optimal_average_delay
from repro.network.distributions import HistogramBandwidthDistribution
from repro.streaming.media import VBRStream
from repro.streaming.session import DeliverySession
from repro.streaming.smoothing import optimal_smoothing, verify_feasible
from repro.workload.catalog import Catalog, MediaObject
from repro.workload.popularity import ZipfPopularity
from repro.workload.trace import Request, RequestTrace


# ----------------------------------------------------------------------
# Zipf popularity
# ----------------------------------------------------------------------
@given(
    alpha=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    num_objects=st.integers(min_value=1, max_value=2_000),
)
@settings(max_examples=100, deadline=None)
def test_zipf_probabilities_valid_distribution(alpha, num_objects):
    probs = ZipfPopularity(alpha).probabilities(num_objects)
    assert probs.shape == (num_objects,)
    assert np.all(probs >= 0)
    assert probs.sum() == pytest.approx(1.0)
    assert np.all(np.diff(probs) <= 1e-15)


# ----------------------------------------------------------------------
# Histogram bandwidth distributions
# ----------------------------------------------------------------------
@given(
    masses=st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=15),
    probability=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=100, deadline=None)
def test_histogram_cdf_quantile_consistency(masses, probability):
    edges = np.arange(len(masses) + 1) * 10.0
    dist = HistogramBandwidthDistribution(edges, masses)
    value = dist.quantile(probability)
    assert edges[0] <= value <= edges[-1]
    assert dist.cdf(value) == pytest.approx(probability, abs=1e-6)


# ----------------------------------------------------------------------
# Delivery sessions: the delay formula and byte accounting
# ----------------------------------------------------------------------
@given(
    duration=st.floats(min_value=1.0, max_value=10_000.0),
    bitrate=st.floats(min_value=1.0, max_value=300.0),
    bandwidth=st.floats(min_value=0.1, max_value=600.0),
    cached_fraction=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=200, deadline=None)
def test_delivery_session_invariants(duration, bitrate, bandwidth, cached_fraction):
    obj = MediaObject(object_id=0, duration=duration, bitrate=bitrate)
    cached = cached_fraction * obj.size
    outcome = DeliverySession(obj, cached, bandwidth).outcome()
    # Byte conservation.
    assert outcome.total_bytes == pytest.approx(obj.size)
    assert 0.0 <= outcome.bytes_from_cache <= obj.size + 1e-9
    # Delay matches the paper's closed form.
    expected = max(obj.size - duration * bandwidth - cached, 0.0) / bandwidth
    assert outcome.service_delay == pytest.approx(expected, rel=1e-9, abs=1e-9)
    # Quality bounded and monotone with caching.
    assert 0.0 <= outcome.stream_quality <= 1.0
    no_cache = DeliverySession(obj, 0.0, bandwidth).outcome()
    assert outcome.service_delay <= no_cache.service_delay + 1e-9
    assert outcome.stream_quality >= no_cache.stream_quality - 1e-9


# ----------------------------------------------------------------------
# Optimal smoothing feasibility
# ----------------------------------------------------------------------
@given(
    frames=st.lists(st.floats(min_value=0.0, max_value=20.0), min_size=2, max_size=120),
    buffer_kb=st.floats(min_value=0.0, max_value=500.0),
)
@settings(max_examples=100, deadline=None)
def test_smoothing_schedules_always_feasible(frames, buffer_kb):
    stream = VBRStream(frames, frame_rate=24.0)
    schedule = optimal_smoothing(stream, buffer_kb=buffer_kb)
    assert verify_feasible(stream, schedule, buffer_kb)
    assert schedule.cumulative_transmission()[-1] == pytest.approx(stream.size, abs=1e-6)


# ----------------------------------------------------------------------
# Fractional knapsack optimality and feasibility
# ----------------------------------------------------------------------
knapsack_instances = st.lists(
    st.tuples(
        st.floats(min_value=10.0, max_value=2_000.0),  # duration
        st.floats(min_value=1.0, max_value=120.0),     # bandwidth
        st.floats(min_value=0.1, max_value=50.0),      # request rate
    ),
    min_size=1,
    max_size=12,
)


@given(instance=knapsack_instances, capacity=st.floats(min_value=0.0, max_value=50_000.0))
@settings(max_examples=100, deadline=None)
def test_optimal_allocation_feasible_and_bounded(instance, capacity):
    catalog = Catalog(
        [
            MediaObject(object_id=i, duration=duration, bitrate=48.0, server_id=i)
            for i, (duration, _, _) in enumerate(instance)
        ]
    )
    bandwidths = {i: bandwidth for i, (_, bandwidth, _) in enumerate(instance)}
    rates = {i: rate for i, (_, _, rate) in enumerate(instance)}
    allocation = optimal_allocation(catalog, bandwidths, rates, capacity)
    assert sum(allocation.values()) <= capacity + 1e-6
    for object_id, cached in allocation.items():
        obj = catalog.get(object_id)
        assert cached <= obj.minimum_prefix_for_bandwidth(bandwidths[object_id]) + 1e-6
    # More capacity can never hurt the objective.
    richer = optimal_allocation(catalog, bandwidths, rates, capacity * 2 + 1.0)
    assert optimal_average_delay(catalog, bandwidths, rates, richer) <= (
        optimal_average_delay(catalog, bandwidths, rates, allocation) + 1e-9
    )


@given(instance=knapsack_instances, capacity=st.floats(min_value=100.0, max_value=50_000.0))
@settings(max_examples=60, deadline=None)
def test_optimal_allocation_beats_proportional_split(instance, capacity):
    catalog = Catalog(
        [
            MediaObject(object_id=i, duration=duration, bitrate=48.0, server_id=i)
            for i, (duration, _, _) in enumerate(instance)
        ]
    )
    bandwidths = {i: bandwidth for i, (_, bandwidth, _) in enumerate(instance)}
    rates = {i: rate for i, (_, _, rate) in enumerate(instance)}
    best = optimal_allocation(catalog, bandwidths, rates, capacity)
    # Naive alternative: split capacity equally across all bottlenecked objects.
    needy = [
        obj.object_id
        for obj in catalog
        if obj.bitrate > bandwidths[obj.object_id]
    ]
    naive = {}
    if needy:
        share = capacity / len(needy)
        for object_id in needy:
            obj = catalog.get(object_id)
            naive[object_id] = min(
                share, obj.minimum_prefix_for_bandwidth(bandwidths[object_id])
            )
    assert optimal_average_delay(catalog, bandwidths, rates, best) <= (
        optimal_average_delay(catalog, bandwidths, rates, naive) + 1e-9
    )


# ----------------------------------------------------------------------
# Request traces round-trip
# ----------------------------------------------------------------------
@given(
    times=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=0, max_size=50),
    seed=st.integers(min_value=0, max_value=1_000),
)
@settings(max_examples=60, deadline=None)
def test_trace_csv_roundtrip_preserves_requests(tmp_path_factory, times, seed):
    rng = np.random.default_rng(seed)
    sorted_times = sorted(times)
    requests = [
        Request(time=t, object_id=int(rng.integers(0, 100)), client_id=int(rng.integers(0, 5)))
        for t in sorted_times
    ]
    trace = RequestTrace(requests)
    path = tmp_path_factory.mktemp("traces") / "trace.csv"
    trace.to_csv(path)
    assert RequestTrace.from_csv(path) == trace
