"""Tests for the ASCII plotting helpers."""

import pytest

from repro.analysis.plotting import ascii_histogram, ascii_line_chart, sweep_chart
from repro.core.policies import make_policy
from repro.exceptions import ConfigurationError
from repro.sim.config import SimulationConfig
from repro.sim.runner import sweep_cache_sizes
from repro.workload.gismo import GismoWorkloadGenerator, WorkloadConfig


class TestAsciiLineChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_line_chart(
            [1.0, 2.0, 3.0],
            {"up": [1.0, 2.0, 3.0], "down": [3.0, 2.0, 1.0]},
            title="demo",
        )
        assert "demo" in chart
        assert "legend: o up   x down" in chart
        assert "o" in chart and "x" in chart

    def test_axis_labels_show_range(self):
        chart = ascii_line_chart([0.0, 10.0], {"s": [5.0, 15.0]})
        assert "15" in chart
        assert "5" in chart
        assert "10" in chart

    def test_constant_series_draws_flat_line(self):
        chart = ascii_line_chart([1.0, 2.0], {"flat": [4.0, 4.0]})
        plot_area = "\n".join(
            line for line in chart.splitlines() if not line.startswith("legend:")
        )
        assert plot_area.count("o") == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_line_chart([], {"a": []})
        with pytest.raises(ConfigurationError):
            ascii_line_chart([1.0], {})
        with pytest.raises(ConfigurationError):
            ascii_line_chart([1.0, 2.0], {"a": [1.0]})
        with pytest.raises(ConfigurationError):
            ascii_line_chart([1.0], {"a": [1.0]}, width=2, height=2)


class TestAsciiHistogram:
    def test_bars_scale_with_counts(self):
        histogram = ascii_histogram([0, 10, 20, 30], [1.0, 4.0, 2.0])
        lines = histogram.splitlines()
        assert len(lines) == 3
        assert lines[1].count("#") > lines[0].count("#")
        assert lines[1].count("#") > lines[2].count("#")

    def test_bins_merged_to_max_rows(self):
        edges = list(range(0, 101, 10))
        counts = [1.0] * 10
        histogram = ascii_histogram(edges, counts, max_rows=5)
        assert len(histogram.splitlines()) == 5

    def test_title_and_counts_displayed(self):
        histogram = ascii_histogram([0, 1], [7.0], title="hist")
        assert histogram.startswith("hist")
        assert "7" in histogram

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_histogram([0, 1], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            ascii_histogram([0, 1], [])
        with pytest.raises(ConfigurationError):
            ascii_histogram([0, 1], [1.0], width=1)


class TestSweepChart:
    def test_renders_policy_series(self):
        workload = GismoWorkloadGenerator(
            WorkloadConfig(num_objects=30, num_requests=600, num_servers=6, seed=4)
        ).generate()
        sweep = sweep_cache_sizes(
            workload,
            {"IF": lambda: make_policy("IF"), "PB": lambda: make_policy("PB")},
            cache_sizes_gb=[0.05, 0.2],
            config=SimulationConfig(cache_size_gb=0.05, seed=2),
            num_runs=1,
        )
        chart = sweep_chart(sweep, "traffic_reduction_ratio")
        assert "IF" in chart and "PB" in chart
        assert "traffic_reduction_ratio vs cache_size_gb" in chart
