"""Multi-cache hierarchies: parent/child tiers, sibling pops, fleet replay.

The paper evaluates a single network-aware proxy; this module promotes the
delivery topology into a multi-cache graph so the partial-caching machinery
composes the way production fleets deploy it: browser → edge pop → parent →
origin chains, where a miss at one tier becomes a request at the next.

A :class:`HierarchyConfig` attached to
:class:`~repro.sim.config.SimulationConfig` describes a chain of
:class:`CacheTier` levels (``tiers[0]`` is the edge, ``tiers[-1]`` the tier
closest to the origin).  Each tier runs its **own**
:class:`~repro.core.store.CacheStore` plus its own policy instance (per-tier
policy name, or the run's policy by default), and tiers are joined by static
inter-tier uplinks composed with the simulator's existing
``min(origin, last-mile)`` bottleneck machinery — the effective delivery
bandwidth of a request is the minimum over every link its bytes actually
traverse.

Fleet semantics
---------------
* **Pops.**  ``num_pops`` replicates the whole chain per point of presence;
  a client is pinned to pop ``client_id % num_pops`` (the same affinity rule
  the client-cloud last-mile machinery uses for path assignment).  Each pop
  owns a full chain — a *fleet member* — so pops interact only through the
  optional sibling lookup below.  This is what makes sharded fleet replay
  (:func:`~repro.analysis.parallel.run_sharded_fleet`) exact: a pop's state
  never depends on requests routed to another pop.
* **Siblings.**  With ``sibling_lookup=True`` an edge miss first asks the
  edge caches of the *other* pops (ICP-style): if any sibling holds the
  **whole** object, the miss is absorbed laterally at
  ``min(sibling_bandwidth, last-mile)`` and never escalates to the parent.
  Sibling serves are read-only — the sibling's policy is not notified, and
  the object is not admitted into the sibling's store.
* **Escalation.**  Otherwise the miss walks up the parent chain.  Prefixes
  are cumulative (every tier caches a prefix of the same object), so tier
  ``k`` contributes the span between the best prefix below it and its own;
  whatever no tier covers comes from the origin over the topmost uplink and
  the request's drawn origin bandwidth.

Determinism
-----------
The engine draws **no** random numbers and is invoked by all four replay
loops at the identical per-request sequence point, so metrics, timelines,
and hierarchy reports are bit-identical across the event, fast,
columnar-fast, and columnar-event paths.  With ``hierarchy=None`` the
engine is never constructed and the simulator's arithmetic (and RNG
consumption) is exactly the pre-hierarchy code; a **degenerate** hierarchy
(one tier, infinite uplink, one pop, no siblings) reproduces the
single-proxy simulator bit-for-bit because every bandwidth cap is applied
as ``if cap < value`` — a no-op for infinite caps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.policies.registry import make_policy
from repro.core.store import CacheStore
from repro.exceptions import ConfigurationError

__all__ = [
    "CacheTier",
    "HierarchyConfig",
    "HierarchyEngine",
    "HierarchyReport",
    "tier_prefix_function",
]


@dataclass(frozen=True)
class CacheTier:
    """One level of the cache hierarchy.

    Attributes
    ----------
    name:
        Label used in reports (``"edge"``, ``"parent"``, ...).  Must be
        unique within a :class:`HierarchyConfig`.
    cache_kb:
        Capacity of this tier's :class:`~repro.core.store.CacheStore` in
        KB, **per pop** (``num_pops`` replicas each get this much).
    policy:
        Registry name of the replacement policy this tier runs
        (:func:`~repro.core.policies.registry.make_policy`); ``None``
        (default) uses the policy the simulation was started with, i.e. a
        shared spec across every tier.
    uplink_bandwidth:
        Static bandwidth (KB/s) of the link from this tier toward the next
        tier up — for ``tiers[-1]`` that is the link to the origin.  The
        default ``inf`` makes the uplink a non-bottleneck, which is what
        the degenerate-tier equivalence relies on.
    """

    name: str
    cache_kb: float
    policy: Optional[str] = None
    uplink_bandwidth: float = math.inf

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tier name must be non-empty")
        if self.cache_kb < 0:
            raise ConfigurationError(
                f"tier {self.name!r}: cache_kb must be non-negative, "
                f"got {self.cache_kb}"
            )
        if self.uplink_bandwidth <= 0:
            raise ConfigurationError(
                f"tier {self.name!r}: uplink_bandwidth must be positive, "
                f"got {self.uplink_bandwidth}"
            )


@dataclass(frozen=True)
class HierarchyConfig:
    """Configuration of a multi-cache hierarchy.

    Attributes
    ----------
    tiers:
        The cache chain from the edge up: ``tiers[0]`` faces the clients,
        ``tiers[-1]`` faces the origin.  At least one tier.
    num_pops:
        Number of points of presence; the full chain is replicated per pop
        and a client is pinned to pop ``client_id % num_pops``.
    sibling_lookup:
        Enable the ICP-style lateral lookup: an edge miss checks the other
        pops' edge caches for the whole object before escalating.
    sibling_bandwidth:
        Bandwidth (KB/s) of the lateral edge↔edge link a sibling hit is
        served over (further capped by the client's last mile).
    """

    tiers: Tuple[CacheTier, ...]
    num_pops: int = 1
    sibling_lookup: bool = False
    sibling_bandwidth: float = math.inf

    def __post_init__(self) -> None:
        if isinstance(self.tiers, list):  # tolerate list literals in configs
            object.__setattr__(self, "tiers", tuple(self.tiers))
        if not self.tiers:
            raise ConfigurationError("hierarchy needs at least one tier")
        names = [tier.name for tier in self.tiers]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"tier names must be unique, got {names}")
        if self.num_pops < 1:
            raise ConfigurationError(
                f"num_pops must be >= 1, got {self.num_pops}"
            )
        if self.sibling_lookup and self.num_pops < 2:
            raise ConfigurationError(
                "sibling_lookup needs num_pops >= 2 (siblings are the "
                "other pops' edge caches)"
            )
        if self.sibling_bandwidth <= 0:
            raise ConfigurationError(
                f"sibling_bandwidth must be positive, got {self.sibling_bandwidth}"
            )


@dataclass(frozen=True)
class HierarchyReport:
    """Where the bytes of the measurement phase came from.

    All counters cover successfully served (non-faulted) requests of the
    measurement phase only, mirroring the aggregate metrics.  Per-tier
    tuples are indexed like ``HierarchyConfig.tiers`` (edge first) and sum
    over every pop.

    Attributes
    ----------
    tier_names:
        Tier labels, edge first.
    requests:
        Measured requests that reached the hierarchy.
    tier_requests:
        Requests *seen* per tier — every request hits the edge; deeper
        tiers only see the misses that escalate to them.
    tier_hits:
        Requests for which the tier contributed at least one byte.
    tier_bytes:
        KB each tier served (its incremental prefix over the tiers below).
    sibling_hits:
        Edge misses absorbed laterally by another pop's edge cache.
    sibling_bytes:
        KB served over the sibling link.
    origin_bytes:
        KB no tier covered — the residual origin traffic.
    client_bytes:
        KB delivered to clients; equals tier + sibling + origin bytes
        (the byte-conservation invariant).
    """

    tier_names: Tuple[str, ...]
    requests: int
    tier_requests: Tuple[int, ...]
    tier_hits: Tuple[int, ...]
    tier_bytes: Tuple[float, ...]
    sibling_hits: int
    sibling_bytes: float
    origin_bytes: float
    client_bytes: float

    @property
    def tier_hit_ratios(self) -> Tuple[float, ...]:
        """Fraction of the requests each tier saw that it served bytes for."""
        return tuple(
            hits / seen if seen > 0 else 0.0
            for hits, seen in zip(self.tier_hits, self.tier_requests)
        )

    @property
    def tier_byte_hit_ratios(self) -> Tuple[float, ...]:
        """Fraction of all client-delivered bytes each tier absorbed."""
        total = self.client_bytes
        return tuple(
            served / total if total > 0 else 0.0 for served in self.tier_bytes
        )

    @property
    def tier_absorbed_bytes(self) -> float:
        """KB the fleet absorbed (tiers plus siblings) instead of the origin."""
        return sum(self.tier_bytes) + self.sibling_bytes

    @property
    def origin_byte_ratio(self) -> float:
        """Fraction of client-delivered bytes that still hit the origin."""
        if self.client_bytes <= 0:
            return 0.0
        return self.origin_bytes / self.client_bytes

    def as_dict(self) -> Dict[str, float]:
        """Flatten the report for tables and JSON (one key per tier stat)."""
        flat: Dict[str, float] = {"requests": float(self.requests)}
        for index, name in enumerate(self.tier_names):
            flat[f"tier_{name}_requests"] = float(self.tier_requests[index])
            flat[f"tier_{name}_hits"] = float(self.tier_hits[index])
            flat[f"tier_{name}_bytes_kb"] = self.tier_bytes[index]
            flat[f"tier_{name}_hit_ratio"] = self.tier_hit_ratios[index]
            flat[f"tier_{name}_byte_hit_ratio"] = self.tier_byte_hit_ratios[index]
        flat["sibling_hits"] = float(self.sibling_hits)
        flat["sibling_bytes_kb"] = self.sibling_bytes
        flat["tier_absorbed_bytes_kb"] = self.tier_absorbed_bytes
        flat["origin_bytes_kb"] = self.origin_bytes
        flat["origin_byte_ratio"] = self.origin_byte_ratio
        flat["client_bytes_kb"] = self.client_bytes
        return flat

    @staticmethod
    def merge(reports: Sequence["HierarchyReport"]) -> "HierarchyReport":
        """Sum reports from independent fleet shards into one report.

        All reports must describe the same tier chain.  Summation runs in
        the order given, so callers wanting a canonical result (the fleet
        reducer) sort by shard index first.
        """
        if not reports:
            raise ConfigurationError("cannot merge an empty list of reports")
        names = reports[0].tier_names
        for report in reports[1:]:
            if report.tier_names != names:
                raise ConfigurationError(
                    f"cannot merge reports over different tier chains: "
                    f"{names} vs {report.tier_names}"
                )
        count = len(names)
        return HierarchyReport(
            tier_names=names,
            requests=sum(r.requests for r in reports),
            tier_requests=tuple(
                sum(r.tier_requests[i] for r in reports) for i in range(count)
            ),
            tier_hits=tuple(
                sum(r.tier_hits[i] for r in reports) for i in range(count)
            ),
            tier_bytes=tuple(
                sum(r.tier_bytes[i] for r in reports) for i in range(count)
            ),
            sibling_hits=sum(r.sibling_hits for r in reports),
            sibling_bytes=sum(r.sibling_bytes for r in reports),
            origin_bytes=sum(r.origin_bytes for r in reports),
            client_bytes=sum(r.client_bytes for r in reports),
        )


def tier_prefix_function(snapshot: Dict[int, float]) -> Callable:
    """Build a sharing-analysis prefix function from a tier store snapshot.

    The returned callable plugs into
    :class:`~repro.sim.sharing.StreamSharingAnalyzer` as ``prefix_for`` so
    batching/patching savings can be computed *per tier*: pass each tier's
    :meth:`HierarchyEngine.tier_snapshots` entry to study how much stream
    sharing each level of the hierarchy still saves on top of the prefixes
    it holds.
    """

    def prefix_for(obj) -> float:
        return snapshot.get(obj.object_id, 0.0)

    return prefix_for


class HierarchyEngine:
    """Shared per-request hierarchy machinery for every replay loop.

    One instance is built per :meth:`~repro.sim.simulator.
    ProxyCacheSimulator.run` when the configuration carries a
    :class:`HierarchyConfig`.  All four replay loops call :meth:`serve` at
    the identical sequence point (right after the fault disposition, before
    the delivery-outcome arithmetic), so the stores, the per-tier policies,
    and the report counters evolve identically on every path.

    The engine performs no random draws; every bandwidth composition is a
    floating-point ``min`` applied as ``if cap < value`` so infinite caps
    leave the value bit-identical.
    """

    def __init__(self, config: HierarchyConfig, catalog, default_policy: str):
        """Build the per-pop tier chains.

        Parameters
        ----------
        config:
            The hierarchy description.
        catalog:
            Media-object catalog, handed to every tier policy's
            ``install`` hook.
        default_policy:
            Registry name used for tiers whose ``policy`` is ``None`` —
            the policy the simulation was started with.
        """
        self.config = config
        self._num_tiers = len(config.tiers)
        self._num_pops = config.num_pops
        self._sibling_lookup = config.sibling_lookup
        self._sibling_bandwidth = config.sibling_bandwidth
        uplinks = [tier.uplink_bandwidth for tier in config.tiers]
        # Min over uplinks k..top: caps the *believed* fetch bandwidth a
        # tier-k policy values objects with (the path from tier k to the
        # origin).  chain_caps[0] doubles as the cap on an origin fetch.
        chain: List[float] = []
        running = math.inf
        for bandwidth in reversed(uplinks):
            running = bandwidth if bandwidth < running else running
            chain.append(running)
        self._chain_caps: Tuple[float, ...] = tuple(reversed(chain))
        # Min over uplinks 0..k-1: caps a fetch absorbed at tier k (the
        # links between the edge and that tier).  Index 0 is unused.
        reach: List[float] = [math.inf]
        running = math.inf
        for bandwidth in uplinks[:-1]:
            running = bandwidth if bandwidth < running else running
            reach.append(running)
        self._reach_caps: Tuple[float, ...] = tuple(reach)
        self._stores: List[List[CacheStore]] = []
        self._policies: List[List[object]] = []
        for _pop in range(self._num_pops):
            stores: List[CacheStore] = []
            policies: List[object] = []
            for tier in config.tiers:
                store = CacheStore(tier.cache_kb)
                policy = make_policy(tier.policy or default_policy)
                if hasattr(policy, "install"):
                    policy.install(store, catalog)
                stores.append(store)
                policies.append(policy)
            self._stores.append(stores)
            self._policies.append(policies)
        # Measurement-phase counters (per tier, summed over pops).
        self._requests = 0
        self._tier_requests = [0] * self._num_tiers
        self._tier_hits = [0] * self._num_tiers
        self._tier_bytes = [0.0] * self._num_tiers
        self._sibling_hits = 0
        self._sibling_bytes = 0.0
        self._origin_bytes = 0.0
        self._client_bytes = 0.0

    # ------------------------------------------------------------------
    # The kernel seam.
    # ------------------------------------------------------------------
    def kernel_hooks(self) -> dict:
        """The residency-stage hooks for :mod:`repro.sim.kernel`.

        ``serve`` resolves residency / escalation for a successful fetch
        at the kernel's *residency* stage, ``edge_cached`` reads the
        client pop's cached prefix for a failed one, and
        ``verify_consistency`` replaces the flat store's check at the
        *verify* stage.  Binding through this seam (instead of reaching
        into the engine from each replay driver) is what
        ``scripts/check_kernel.py`` enforces.
        """
        return {
            "serve": self.serve,
            "edge_cached": self.edge_cached,
            "verify_consistency": self.verify_consistency,
        }

    # ------------------------------------------------------------------
    # The per-request entry point (hot path for all four replay drivers).
    # ------------------------------------------------------------------
    def serve(
        self,
        pop: int,
        object_id: int,
        obj,
        size: float,
        observed: float,
        lm_draw: Optional[float],
        believed: float,
        prior_estimate: float,
        now: float,
        measuring: bool,
    ) -> Tuple[float, float]:
        """Route one successful request through the hierarchy.

        Reads every residency it needs *before* any policy mutation,
        escalates the edge miss up the chain (or laterally to a sibling),
        updates the report counters (measurement phase only), and notifies
        each consulted tier's policy — the edge with the loop's believed
        bandwidth further capped by the uplink chain, deeper tiers with the
        un-last-miled origin estimate capped by *their* remaining chain.

        Returns ``(edge_cached_kb, effective_bandwidth)``: the prefix the
        client gets out of its edge cache, and the bottleneck bandwidth the
        remainder arrives at — exactly the ``(cached, observed)`` pair the
        caller's delivery-outcome arithmetic consumes.
        """
        stores = self._stores[pop]
        edge_store = stores[0]
        edge_cached = edge_store.cached_bytes(object_id)
        if edge_cached > size:
            edge_cached = size
        covered = edge_cached
        sibling_hit = False
        consulted_top = 0
        serves: List[Tuple[int, float]] = []
        if covered < size:
            if self._sibling_lookup:
                for sibling in range(self._num_pops):
                    if sibling == pop:
                        continue
                    if self._stores[sibling][0].cached_bytes(object_id) >= size:
                        sibling_hit = True
                        break
            if not sibling_hit:
                best = covered
                for k in range(1, self._num_tiers):
                    consulted_top = k
                    tier_cached = stores[k].cached_bytes(object_id)
                    if tier_cached > size:
                        tier_cached = size
                    if tier_cached > best:
                        serves.append((k, tier_cached - best))
                        best = tier_cached
                    if best >= size:
                        break
                covered = best

        # Effective bandwidth of the non-edge-cached span: min over the
        # links actually traversed, each applied FP-safely.
        if edge_cached >= size:
            effective = observed
        elif sibling_hit:
            effective = self._sibling_bandwidth
            if lm_draw is not None and lm_draw < effective:
                effective = lm_draw
        elif covered < size:
            # Origin on the path: `observed` is already min(origin draw,
            # last mile); cap it by every uplink between edge and origin.
            effective = observed
            cap = self._chain_caps[0]
            if cap < effective:
                effective = cap
        else:
            # Absorbed at the deepest contributing tier: links up to it.
            deepest = serves[-1][0]
            effective = self._reach_caps[deepest]
            if lm_draw is not None and lm_draw < effective:
                effective = lm_draw

        if measuring:
            self._requests += 1
            self._client_bytes += size
            self._tier_requests[0] += 1
            if edge_cached > 0.0:
                self._tier_hits[0] += 1
                self._tier_bytes[0] += edge_cached
            if edge_cached >= size:
                pass
            elif sibling_hit:
                self._sibling_hits += 1
                self._sibling_bytes += size - edge_cached
            else:
                for k in range(1, consulted_top + 1):
                    self._tier_requests[k] += 1
                for k, contribution in serves:
                    self._tier_hits[k] += 1
                    self._tier_bytes[k] += contribution
                if covered < size:
                    self._origin_bytes += size - covered

        # Policy pass, after all residency reads: edge first, then up the
        # consulted chain.  A sibling hit stops escalation, so only the
        # edge policy runs (the sibling store stays read-only).
        policies = self._policies[pop]
        edge_believed = believed
        cap = self._chain_caps[0]
        if cap < edge_believed:
            edge_believed = cap
        policies[0].on_request(obj, edge_believed, now, edge_store)
        if edge_cached < size and not sibling_hit:
            for k in range(1, consulted_top + 1):
                tier_believed = prior_estimate
                cap = self._chain_caps[k]
                if cap < tier_believed:
                    tier_believed = cap
                policies[k].on_request(obj, tier_believed, now, stores[k])

        return edge_cached, effective

    @property
    def primary_edge_store(self) -> CacheStore:
        """Pop 0's edge store (what the metrics timeline tracks occupancy of)."""
        return self._stores[0][0]

    def edge_cached(self, pop: int, object_id: int) -> float:
        """Cached prefix (KB) at the client's edge pop, read-only.

        The fault path uses this for stale serves — a request that cannot
        reach deeper tiers is answered from whatever the edge holds,
        without consulting any policy.
        """
        return self._stores[pop][0].cached_bytes(object_id)

    # ------------------------------------------------------------------
    # Run finalization.
    # ------------------------------------------------------------------
    def report(self) -> HierarchyReport:
        """Freeze the measurement-phase counters into a report."""
        return HierarchyReport(
            tier_names=tuple(tier.name for tier in self.config.tiers),
            requests=self._requests,
            tier_requests=tuple(self._tier_requests),
            tier_hits=tuple(self._tier_hits),
            tier_bytes=tuple(self._tier_bytes),
            sibling_hits=self._sibling_hits,
            sibling_bytes=self._sibling_bytes,
            origin_bytes=self._origin_bytes,
            client_bytes=self._client_bytes,
        )

    def verify_consistency(self) -> bool:
        """Check the byte accounting of every tier store in every pop."""
        return all(
            store.verify_consistency()
            for stores in self._stores
            for store in stores
        )

    def final_occupancy(self) -> float:
        """Fleet-wide fraction of capacity in use at the end of the run."""
        capacity = sum(
            store.capacity_kb for stores in self._stores for store in stores
        )
        if capacity <= 0:
            return 0.0
        used = sum(store.used_kb for stores in self._stores for store in stores)
        return used / capacity

    def total_cached_objects(self) -> int:
        """Number of cached prefixes across every tier store in the fleet."""
        return sum(len(store) for stores in self._stores for store in stores)

    def tier_snapshots(self, pop: int = 0) -> List[Dict[int, float]]:
        """Per-tier ``{object_id: cached_kb}`` snapshots for one pop.

        Feed each entry to :func:`tier_prefix_function` to compose the
        hierarchy with the stream-sharing analysis
        (:mod:`repro.sim.sharing`).
        """
        return [store.snapshot() for store in self._stores[pop]]
