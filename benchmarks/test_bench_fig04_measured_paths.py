"""Figure 4 — Bandwidth variation of measured Internet paths.

Regenerates the three measured-path time series (INRIA, Taiwan, Hong Kong)
and their sample-to-mean ratio statistics, verifying they are all much less
variable than the NLANR cache-log model and that INRIA is the smoothest.
"""

from benchmarks.conftest import report, run_once
from repro.analysis.experiments import experiment_fig4_measured_paths
from repro.network.variability import NLANRRatioVariability


def test_fig4_measured_paths(benchmark):
    result = run_once(benchmark, experiment_fig4_measured_paths, seed=0)
    covs = result.data["coefficients_of_variation"]
    report(benchmark, result, extra={f"cov_{name}": value for name, value in covs.items()})

    nlanr_cov = NLANRRatioVariability().coefficient_of_variation()
    # Paper: all measured paths have much lower variability than the NLANR logs.
    for cov in covs.values():
        assert cov < nlanr_cov
    # Paper: the INRIA path appears to have much lower variability than the others.
    assert covs["inria"] == min(covs.values())
    # Time series have the published sampling structure (one sample / 4 minutes).
    inria = result.data["paths"]["inria"]
    assert len(inria["times_hours"]) == len(inria["bandwidth_kbps"])
    assert len(inria["bandwidth_kbps"]) > 300
