"""Passive-driven reactive re-keying, hysteresis, and the GreedyDual-safe path.

Four families of guarantees are pinned here (ISSUE 5):

* **Anchor seeding** — the rekeyer's anchor seeds from the estimate the
  policy actually keyed at (the *pre*-sample estimate), so the very first
  sample on a path can already trigger a re-key; the old behaviour of
  seeding from the post-sample estimate silently swallowed a first shift
  of any magnitude.
* **Per-group last-mile views** — anchors and caps are kept per client
  group, and with ``estimate_last_mile`` the ``(server, group)`` keyed
  estimator mode lets a last-mile degradation that is invisible to the
  origin estimate still re-key — the two-group case the legacy single
  ``bandwidth_cap`` provably ignores.
* **Bounded churn** — the hysteresis re-arm band and the per-server re-key
  cap bound re-keys under adversarial oscillating bandwidth
  (property-tested), and passive-driven runs stay bit-identical across
  every replay path.
* **GreedyDual safety** — GDS/GDSP with the ``"delay"`` cost model are
  ``bandwidth_keyed`` and re-key with each entry's inflation preserved
  (property-tested); ``"uniform"``/``"size"`` never re-key.
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import make_policy
from repro.core.policies.base import PolicyContext
from repro.core.policies.greedydual import (
    GreedyDualSizePolicy,
    PopularityAwareGreedyDualSizePolicy,
)
from repro.core.store import CacheStore
from repro.exceptions import ConfigurationError
from repro.network.distributions import NLANRBandwidthDistribution
from repro.network.measurement import PassiveEstimator
from repro.network.variability import NLANRRatioVariability
from repro.sim.config import BandwidthKnowledge, ClientCloudConfig, SimulationConfig
from repro.sim.events import ReactiveRekeyer, RemeasurementConfig
from repro.sim.simulator import ProxyCacheSimulator
from repro.workload.catalog import Catalog, MediaObject
from repro.workload.gismo import GismoWorkloadGenerator, WorkloadConfig


def _catalog() -> Catalog:
    """Two servers, two objects each; bit-rate 48 so bandwidth binds."""
    return Catalog(
        [
            MediaObject(object_id=0, duration=100.0, bitrate=48.0, server_id=0),
            MediaObject(object_id=1, duration=200.0, bitrate=48.0, server_id=1),
            MediaObject(object_id=2, duration=50.0, bitrate=96.0, server_id=1),
            MediaObject(object_id=3, duration=400.0, bitrate=24.0, server_id=0),
        ]
    )


def _tracked_policy(catalog, bandwidth: float = 20.0):
    """A PB policy with every catalog object requested (and tracked) once."""
    policy = make_policy("PB")
    store = CacheStore(capacity_kb=1e9)
    policy.install(store, catalog)
    for obj in catalog:
        policy.on_request(obj, bandwidth, 0.0, store)
    return policy, store


@pytest.fixture(scope="module")
def reactive_workload():
    """A small multi-client columnar workload (100 objects, 2000 requests)."""
    config = replace(WorkloadConfig(seed=7).scaled(0.02), num_clients=24)
    return GismoWorkloadGenerator(config).generate(columnar=True)


def _passive_config(**overrides):
    defaults = dict(
        cache_size_gb=0.5,
        variability=NLANRRatioVariability(),
        bandwidth_knowledge=BandwidthKnowledge.PASSIVE,
        seed=11,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def _reactive_config(**overrides):
    defaults = dict(reactive_threshold=0.15, reactive_passive=True)
    defaults.update(overrides)
    return _passive_config(**defaults)


# ----------------------------------------------------------------------
# Regression: anchor seeds from the pre-sample estimate (ISSUE 5 bugfix 1).
# ----------------------------------------------------------------------
class TestAnchorSeeding:
    def test_first_sample_can_trigger_a_rekey(self):
        """The old rekeyer seeded the anchor from the first *post*-sample
        estimate and returned — a first shift of any magnitude was
        swallowed, leaving heap keys built at the pre-sample belief stale
        forever if the estimate then hovered near that first sample."""
        catalog = _catalog()
        policy, _ = _tracked_policy(catalog, bandwidth=20.0)
        estimator = PassiveEstimator(smoothing=1.0, initial_estimate=20.0)
        rekeyer = ReactiveRekeyer(policy, estimator, threshold=0.5)

        # The policy keyed server 0's objects at the pre-sample belief, 20.
        prior = estimator.estimate(0)
        assert prior == 20.0
        estimator.observe(0, 200.0)  # a first sample, 10x the keyed belief
        rekeyer.notify(1.0, 0, prior)
        assert rekeyer.shifts == 1
        assert rekeyer.entries_rekeyed == 2  # both tracked objects on server 0

    def test_hovering_near_first_sample_never_corrects_without_the_fix(self):
        """With the anchor seeded at the pre-sample belief, later samples
        hovering near the first one are (correctly) quiet — the single
        re-key already fixed the keys."""
        catalog = _catalog()
        policy, _ = _tracked_policy(catalog, bandwidth=20.0)
        estimator = PassiveEstimator(smoothing=1.0, initial_estimate=20.0)
        rekeyer = ReactiveRekeyer(policy, estimator, threshold=0.5)

        estimator.observe(0, 200.0)
        rekeyer.notify(1.0, 0, 20.0)
        assert rekeyer.shifts == 1
        for step, sample in enumerate((205.0, 195.0, 210.0), start=2):
            before = estimator.estimate(0)
            estimator.observe(0, sample)
            rekeyer.notify(float(step), 0, before)
        assert rekeyer.shifts == 1  # anchor moved to 200: hovering is quiet


# ----------------------------------------------------------------------
# Per-group anchors/caps and last-mile estimation (ISSUE 5 bugfix 2).
# ----------------------------------------------------------------------
class TestPerGroupViews:
    def test_two_group_last_mile_collapse_legacy_cap_misses(self):
        """The failing-then-fixed two-group case: the origin estimate never
        moves, so the legacy single ``bandwidth_cap`` rekeyer sees nothing —
        but the slow group's *delivered* bandwidth collapses, which the
        per-group ``(server, group)`` estimation mode catches."""
        catalog = _catalog()

        # Legacy shape: one global cap, probe-style (origin-only) notifies.
        legacy_policy, _ = _tracked_policy(catalog, bandwidth=40.0)
        legacy_est = PassiveEstimator(smoothing=1.0)
        legacy = ReactiveRekeyer(
            legacy_policy, legacy_est, threshold=0.5, bandwidth_cap=100.0
        )
        # Fixed shape: per-group caps plus per-group delivered estimation.
        fixed_policy, _ = _tracked_policy(catalog, bandwidth=40.0)
        fixed_est = PassiveEstimator(smoothing=1.0)
        fixed = ReactiveRekeyer(
            fixed_policy,
            fixed_est,
            threshold=0.5,
            group_caps=(100.0, 40.0),
            group_estimation=True,
        )

        # The origin path is rock-steady at 100 KB/s; group 1's last mile
        # degrades: delivered samples fall 38 -> 15.
        steps = [(1.0, 38.0), (2.0, 15.0)]
        for now, delivered in steps:
            prior = legacy_est.estimate(0)
            legacy_est.observe(0, 100.0)
            legacy.notify(now, 0, prior)

            prior = fixed_est.estimate(0)
            fixed_est.observe(0, 100.0)
            fixed.observe_request(now, 0, 1, prior, delivered)

        assert legacy.shifts == 0  # the origin view never moved
        assert fixed.shifts == 1   # group 1's believed 40 -> 15 crossed 50%
        assert fixed.entries_rekeyed > 0
        assert fixed_est.estimate_group(0, 1) == 15.0
        assert fixed_est.estimate(0) == 100.0  # origin estimate untouched

    def test_group_view_first_sample_seeds_from_pre_sample_estimate(self):
        """Regression (review): on a group view's first contact,
        ``estimate_group`` falls back to the origin estimate — which the
        loops have already updated with the request's sample by the time
        ``observe_request`` runs.  Seeding the group anchor from that
        fallback would swallow the first group shift exactly like the
        original anchor bug; the pre-sample ``prior_estimate`` must win."""
        catalog = _catalog()
        # Tracked at a binding bandwidth so the heap has entries to re-key.
        policy, _ = _tracked_policy(catalog, bandwidth=20.0)
        estimator = PassiveEstimator(smoothing=1.0, initial_estimate=100.0)
        rekeyer = ReactiveRekeyer(
            policy,
            estimator,
            threshold=0.5,
            group_caps=(200.0, 200.0),
            group_estimation=True,
        )
        # The replay loop's order: the origin sample lands first (the
        # collapse to 10), THEN the rekeyer is notified with the
        # pre-sample prior the policy keyed at (100).
        estimator.observe(0, 10.0)
        rekeyer.observe_request(1.0, 0, 1, 100.0, 10.0)
        assert rekeyer.shifts == 1  # 100 -> 10 is a 90% collapse
        assert rekeyer.entries_rekeyed > 0

    def test_group_views_are_independent(self):
        catalog = _catalog()
        policy, _ = _tracked_policy(catalog, bandwidth=40.0)
        estimator = PassiveEstimator(smoothing=1.0)
        rekeyer = ReactiveRekeyer(
            policy,
            estimator,
            threshold=0.5,
            group_caps=(100.0, 40.0),
            group_estimation=True,
        )
        estimator.observe(0, 100.0)
        # Group 1 collapses and triggers; group 0 stays quiet throughout.
        rekeyer.observe_request(1.0, 0, 1, 100.0, 38.0)
        rekeyer.observe_request(2.0, 0, 1, 100.0, 15.0)
        assert rekeyer.shifts == 1
        rekeyer.observe_request(3.0, 0, 0, 100.0, 100.0)
        rekeyer.observe_request(4.0, 0, 0, 100.0, 98.0)
        assert rekeyer.shifts == 1
        assert estimator.group_sample_count(0, 0) == 2
        assert estimator.group_sample_count(0, 1) == 2
        assert estimator.known_groups(0) == [0, 1]

    def test_rekeyer_validation(self):
        catalog = _catalog()
        policy, _ = _tracked_policy(catalog)
        estimator = PassiveEstimator()
        with pytest.raises(ConfigurationError):
            ReactiveRekeyer(policy, estimator, threshold=0.2, group_caps=())
        with pytest.raises(ConfigurationError):
            ReactiveRekeyer(policy, estimator, threshold=0.2, group_caps=(0.0,))
        with pytest.raises(ConfigurationError):
            ReactiveRekeyer(
                policy, estimator, threshold=0.2,
                bandwidth_cap=50.0, group_caps=(50.0,),
            )
        with pytest.raises(ConfigurationError):
            ReactiveRekeyer(policy, estimator, threshold=0.2, hysteresis=0.3)
        with pytest.raises(ConfigurationError):
            ReactiveRekeyer(policy, estimator, threshold=0.2, hysteresis=0.0)
        with pytest.raises(ConfigurationError):
            ReactiveRekeyer(policy, estimator, threshold=0.2, rekey_cap=0)

    def test_estimator_group_mode_fallback_and_reset(self):
        estimator = PassiveEstimator(smoothing=0.5, initial_estimate=80.0)
        assert estimator.estimate_group(3, 1) == 80.0  # full fallback
        estimator.observe(3, 60.0)
        assert estimator.estimate_group(3, 1) == 60.0  # server fallback
        estimator.observe_group(3, 1, 20.0)
        assert estimator.estimate_group(3, 1) == 20.0
        assert estimator.estimate_group(3, 0) == 60.0  # other group untouched
        estimator.observe_group(3, 1, 40.0)
        assert estimator.estimate_group(3, 1) == pytest.approx(30.0)
        assert estimator.group_sample_count(3, 1) == 2
        estimator.reset()
        assert estimator.estimate_group(3, 1) == 80.0
        assert estimator.group_sample_count(3, 1) == 0


# ----------------------------------------------------------------------
# Hysteresis and the per-server re-key cap bound churn.
# ----------------------------------------------------------------------
class TestBoundedChurn:
    @settings(max_examples=25, deadline=None)
    @given(
        samples=st.lists(st.sampled_from([25.0, 80.0, 300.0]), min_size=2, max_size=50),
        cap=st.integers(min_value=1, max_value=4),
    )
    def test_rekey_cap_bounds_rekeys_under_adversarial_oscillation(self, samples, cap):
        catalog = _catalog()
        policy, _ = _tracked_policy(catalog, bandwidth=20.0)
        estimator = PassiveEstimator(smoothing=1.0)
        rekeyer = ReactiveRekeyer(
            policy, estimator, threshold=0.2, hysteresis=0.1, rekey_cap=cap
        )
        for step, sample in enumerate(samples):
            prior = estimator.estimate(0)
            estimator.observe(0, sample)
            rekeyer.notify(float(step), 0, prior)
        assert rekeyer.rekeys_by_server.get(0, 0) <= cap
        assert rekeyer.shifts <= cap

    def test_hysteresis_requires_band_reentry_before_rearming(self):
        """After a re-key the view is disarmed: an estimate oscillating
        between two distant values cannot re-key on every swing — it must
        first settle back into the band around the new anchor."""
        catalog = _catalog()
        policy, _ = _tracked_policy(catalog, bandwidth=20.0)
        estimator = PassiveEstimator(smoothing=1.0, initial_estimate=100.0)
        rekeyer = ReactiveRekeyer(
            policy, estimator, threshold=0.5, hysteresis=0.1
        )
        def sample(now, value):
            prior = estimator.estimate(0)
            estimator.observe(0, value)
            rekeyer.notify(now, 0, prior)

        sample(1.0, 300.0)          # 100 -> 300: trigger, anchor 300, disarmed
        assert rekeyer.shifts == 1
        sample(2.0, 100.0)          # far outside the band: stays disarmed
        assert rekeyer.shifts == 1
        sample(3.0, 100.0)          # still outside: no re-arm, no trigger
        assert rekeyer.shifts == 1
        sample(4.0, 310.0)          # back inside 10% of 300: re-arms, quiet
        assert rekeyer.shifts == 1
        sample(5.0, 100.0)          # armed again: 310 -> 100 crosses 50%
        assert rekeyer.shifts == 2

    def test_hysteresis_never_increases_churn(self):
        catalog = _catalog()
        oscillation = [300.0, 100.0] * 10

        def run(hysteresis):
            policy, _ = _tracked_policy(catalog, bandwidth=20.0)
            estimator = PassiveEstimator(smoothing=1.0, initial_estimate=100.0)
            rekeyer = ReactiveRekeyer(
                policy, estimator, threshold=0.5, hysteresis=hysteresis
            )
            for step, value in enumerate(oscillation):
                prior = estimator.estimate(0)
                estimator.observe(0, value)
                rekeyer.notify(float(step), 0, prior)
            return rekeyer.shifts

        assert run(hysteresis=0.1) < run(hysteresis=None)

    def test_simulation_respects_rekey_cap(self, reactive_workload):
        config = _reactive_config(
            reactive_threshold=0.02,
            reactive_rekey_cap=2,
            remeasurement=RemeasurementConfig(interval=120.0),
        )
        result = ProxyCacheSimulator(reactive_workload, config).run(make_policy("PB"))
        assert result.reactive_shifts > 0
        assert result.reactive_suppressed > 0
        assert result.reactive_rekeys_by_server
        assert max(result.reactive_rekeys_by_server.values()) <= 2
        assert sum(result.reactive_rekeys_by_server.values()) == result.reactive_shifts


# ----------------------------------------------------------------------
# Passive-driven runs: every replay path agrees bit-for-bit.
# ----------------------------------------------------------------------
class TestPassiveDrivenReplayEquivalence:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            _passive_config(reactive_passive=True)  # no threshold
        with pytest.raises(ConfigurationError):
            _passive_config(reactive_hysteresis=0.1)
        with pytest.raises(ConfigurationError):
            _passive_config(reactive_rekey_cap=5)
        with pytest.raises(ConfigurationError):
            _reactive_config(reactive_hysteresis=0.5)  # band above threshold
        with pytest.raises(ConfigurationError):
            _reactive_config(reactive_rekey_cap=0)
        # Passive-driven alone is a valid shift source: no remeasurement.
        config = _reactive_config()
        assert config.remeasurement is None

    def test_passive_only_reactive_runs_on_every_path(self, reactive_workload):
        """With no probes scheduled, passive-driven re-keying works on the
        fast path too — and all three forced paths agree bit-for-bit."""
        config = _reactive_config(reactive_hysteresis=0.05)
        simulator = ProxyCacheSimulator(reactive_workload, config)
        topology = simulator.build_topology(np.random.default_rng(config.seed))
        results = {
            mode: simulator.run(make_policy("PB"), topology=topology, replay=mode)
            for mode in ("event", "fast", "columnar-event")
        }
        assert results["fast"].reactive_shifts > 0
        reference = results["event"]
        for mode, result in results.items():
            assert result.as_dict() == reference.as_dict(), mode
            assert result.reactive_shifts == reference.reactive_shifts
            assert result.reactive_rekeys == reference.reactive_rekeys
            assert result.reactive_suppressed == reference.reactive_suppressed
            assert (
                result.reactive_rekeys_by_server
                == reference.reactive_rekeys_by_server
            )

    def test_passive_plus_probes_bit_identical_across_event_paths(
        self, reactive_workload
    ):
        config = _reactive_config(
            remeasurement=RemeasurementConfig(interval=120.0),
            reactive_hysteresis=0.05,
        ).with_client_clouds(
            ClientCloudConfig(
                groups=8,
                distribution=NLANRBandwidthDistribution(),
                estimate_last_mile=True,
            )
        )
        simulator = ProxyCacheSimulator(reactive_workload, config)
        topology = simulator.build_topology(np.random.default_rng(config.seed))
        calendar = simulator.run(make_policy("PB"), topology=topology, replay="event")
        colev = simulator.run(
            make_policy("PB"), topology=topology, replay="columnar-event"
        )
        assert calendar.auxiliary_events_fired == colev.auxiliary_events_fired > 0
        assert calendar.as_dict() == colev.as_dict()
        assert calendar.reactive_shifts == colev.reactive_shifts > 0
        assert calendar.reactive_rekeys == colev.reactive_rekeys
        assert (
            calendar.reactive_rekeys_by_server == colev.reactive_rekeys_by_server
        )

    def test_passive_driven_changes_outcomes_vs_probe_only(self, reactive_workload):
        probes_only = _passive_config(
            remeasurement=RemeasurementConfig(interval=120.0),
            reactive_threshold=0.15,
        )
        passive_too = replace(probes_only, reactive_passive=True)
        a = ProxyCacheSimulator(reactive_workload, probes_only).run(make_policy("PB"))
        b = ProxyCacheSimulator(reactive_workload, passive_too).run(make_policy("PB"))
        assert b.reactive_shifts > a.reactive_shifts
        assert a.as_dict() != b.as_dict()


# ----------------------------------------------------------------------
# GreedyDual: the "delay" cost model re-keys, inflation preserved.
# ----------------------------------------------------------------------
class TestGreedyDualSafeRekey:
    @pytest.mark.parametrize("policy_class", [
        GreedyDualSizePolicy, PopularityAwareGreedyDualSizePolicy
    ])
    def test_gate_is_cost_model_dependent(self, policy_class):
        assert policy_class("delay").bandwidth_keyed
        assert not policy_class("uniform").bandwidth_keyed
        assert not policy_class("size").bandwidth_keyed

    @pytest.mark.parametrize("cost_model", ["uniform", "size"])
    @pytest.mark.parametrize("policy_class", [
        GreedyDualSizePolicy, PopularityAwareGreedyDualSizePolicy
    ])
    def test_uniform_and_size_never_rekey(self, policy_class, cost_model):
        catalog = _catalog()
        policy = policy_class(cost_model)
        store = CacheStore(capacity_kb=1e9)
        policy.install(store, catalog)
        for obj in catalog:
            policy.on_request(obj, 20.0, 0.0, store)
        keys = {oid: policy.cached_utility(oid) for oid in range(4)}
        assert policy.on_bandwidth_shift(0, 200.0, 1.0) == 0
        assert {oid: policy.cached_utility(oid) for oid in range(4)} == keys

    @pytest.mark.parametrize("policy_class", [
        GreedyDualSizePolicy, PopularityAwareGreedyDualSizePolicy
    ])
    def test_delay_rekey_preserves_entry_inflation(self, policy_class):
        catalog = _catalog()
        policy = policy_class("delay")
        # A tiny store forces evictions, so the inflation L rises and the
        # tracked entries carry *different* inflation components.
        store = CacheStore(capacity_kb=6000.0)
        policy.install(store, catalog)
        for step, obj in enumerate(list(catalog) + list(catalog)[:2]):
            policy.on_request(obj, 20.0 + 3.0 * step, float(step), store)
        tracked = dict(policy._utilities)
        assert tracked
        inflation_before = policy.inflation
        entry_inflation = dict(policy._keyed_inflation)

        rekeyed = policy.on_bandwidth_shift(0, 5.0, 10.0)
        assert rekeyed > 0
        assert policy.inflation == inflation_before  # global L untouched
        for object_id, utility in policy._utilities.items():
            # Every entry keeps the inflation it was keyed at ...
            assert policy._keyed_inflation[object_id] == entry_inflation[object_id]
            obj = catalog.get(object_id)
            if obj.server_id == 0:
                # ... and re-keyed entries are exactly inflation + new credit.
                ctx = PolicyContext(
                    now=10.0,
                    bandwidth=5.0,
                    frequency=policy.frequencies.frequency(object_id, 10.0),
                )
                assert utility == entry_inflation[object_id] + policy.credit(obj, ctx)
            else:
                assert utility == tracked[object_id]

    @settings(max_examples=20, deadline=None)
    @given(
        bandwidths=st.lists(
            st.floats(min_value=2.0, max_value=200.0), min_size=4, max_size=12
        ),
        shift_bandwidth=st.floats(min_value=2.0, max_value=200.0),
    )
    def test_delay_rekey_never_perturbs_inflation_ordering(
        self, bandwidths, shift_bandwidth
    ):
        """Property: re-keying changes credits only — the per-entry
        inflation components (and therefore the aging order GreedyDual
        relies on) are exactly as before the shift."""
        catalog = _catalog()
        policy = GreedyDualSizePolicy("delay")
        store = CacheStore(capacity_kb=5000.0)
        policy.install(store, catalog)
        objects = list(catalog)
        for step, bandwidth in enumerate(bandwidths):
            policy.on_request(objects[step % len(objects)], bandwidth, float(step), store)
        by_inflation_before = sorted(
            policy._keyed_inflation.items(), key=lambda item: (item[1], item[0])
        )
        for server_id in (0, 1):
            policy.on_bandwidth_shift(server_id, shift_bandwidth, 100.0)
        by_inflation_after = sorted(
            policy._keyed_inflation.items(), key=lambda item: (item[1], item[0])
        )
        assert by_inflation_before == by_inflation_after

    def test_gds_delay_reactive_end_to_end(self, reactive_workload):
        config = _reactive_config(
            remeasurement=RemeasurementConfig(interval=120.0)
        )
        simulator = ProxyCacheSimulator(reactive_workload, config)
        topology = simulator.build_topology(np.random.default_rng(config.seed))
        calendar = simulator.run(
            GreedyDualSizePolicy("delay"), topology=topology, replay="event"
        )
        colev = simulator.run(
            GreedyDualSizePolicy("delay"), topology=topology, replay="columnar-event"
        )
        assert calendar.reactive_rekeys > 0
        assert calendar.as_dict() == colev.as_dict()
        assert calendar.reactive_shifts == colev.reactive_shifts
        assert calendar.reactive_rekeys == colev.reactive_rekeys
        # The inflation-keyed cost models still never react.
        uniform = simulator.run(
            GreedyDualSizePolicy("uniform"), topology=topology
        )
        assert uniform.reactive_rekeys == 0
        size = simulator.run(GreedyDualSizePolicy("size"), topology=topology)
        assert size.reactive_rekeys == 0

    def test_gdsp_delay_reactive_end_to_end(self, reactive_workload):
        config = _reactive_config(
            remeasurement=RemeasurementConfig(interval=120.0)
        )
        result = ProxyCacheSimulator(reactive_workload, config).run(
            PopularityAwareGreedyDualSizePolicy("delay")
        )
        assert result.reactive_shifts > 0
        assert result.reactive_rekeys > 0
