"""Experiment harness and report formatting.

* :mod:`repro.analysis.experiments` — one entry point per paper table/figure,
* :mod:`repro.analysis.report` — plain-text tables of the resulting series.
"""

from repro.analysis.experiments import (
    DEFAULT_CACHE_FRACTIONS,
    ExperimentResult,
    experiment_fig2_bandwidth_distribution,
    experiment_fig3_bandwidth_variability,
    experiment_fig4_measured_paths,
    experiment_fig5_constant_bandwidth,
    experiment_fig6_zipf_sweep,
    experiment_fig7_high_variability,
    experiment_fig8_low_variability,
    experiment_fig9_estimator_sweep,
    experiment_fig10_value_constant,
    experiment_fig11_value_variable,
    experiment_fig12_value_estimator,
    experiment_table1_workload,
)
from repro.analysis.plotting import ascii_histogram, ascii_line_chart, sweep_chart
from repro.analysis.report import format_comparison, format_sweep_table, render_experiment

__all__ = [
    "ascii_histogram",
    "ascii_line_chart",
    "sweep_chart",
    "DEFAULT_CACHE_FRACTIONS",
    "ExperimentResult",
    "experiment_fig2_bandwidth_distribution",
    "experiment_fig3_bandwidth_variability",
    "experiment_fig4_measured_paths",
    "experiment_fig5_constant_bandwidth",
    "experiment_fig6_zipf_sweep",
    "experiment_fig7_high_variability",
    "experiment_fig8_low_variability",
    "experiment_fig9_estimator_sweep",
    "experiment_fig10_value_constant",
    "experiment_fig11_value_variable",
    "experiment_fig12_value_estimator",
    "experiment_table1_workload",
    "format_comparison",
    "format_sweep_table",
    "render_experiment",
]
