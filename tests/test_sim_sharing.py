"""Tests for the batching/patching stream-sharing extension."""

import pytest

from repro.exceptions import ConfigurationError
from repro.sim.sharing import (
    StreamSharingAnalyzer,
    prefix_function_for_bandwidth,
    sharing_summary_rows,
)
from repro.workload.catalog import Catalog, MediaObject
from repro.workload.trace import Request, RequestTrace


@pytest.fixture
def catalog():
    # One 100-second 48 KB/s object (4800 KB) and one 200-second object.
    return Catalog(
        [
            MediaObject(object_id=0, duration=100.0, bitrate=48.0, server_id=0),
            MediaObject(object_id=1, duration=200.0, bitrate=48.0, server_id=1),
        ]
    )


def trace(*times_and_objects):
    return RequestTrace(
        [Request(time=t, object_id=o) for t, o in times_and_objects]
    )


class TestStreamSharingAnalyzer:
    def test_single_request_has_no_savings(self, catalog):
        report = StreamSharingAnalyzer(catalog).analyze(trace((0.0, 0)))
        assert report.batches == 1
        assert report.joined_requests == 0
        assert report.server_byte_savings == 0.0
        assert report.baseline_server_bytes == pytest.approx(4800.0)

    def test_concurrent_requests_share_the_stream(self, catalog):
        # Second request arrives 10 s into the leader's 100 s stream: it only
        # needs a 10 s patch (480 KB) instead of the full 4800 KB.
        report = StreamSharingAnalyzer(catalog).analyze(trace((0.0, 0), (10.0, 0)))
        assert report.batches == 1
        assert report.joined_requests == 1
        assert report.patch_bytes == pytest.approx(480.0)
        assert report.shared_server_bytes == pytest.approx(4800.0 + 480.0)
        assert report.baseline_server_bytes == pytest.approx(9600.0)
        assert report.server_byte_savings == pytest.approx(1.0 - 5280.0 / 9600.0)

    def test_request_after_stream_ends_starts_new_batch(self, catalog):
        report = StreamSharingAnalyzer(catalog).analyze(trace((0.0, 0), (150.0, 0)))
        assert report.batches == 2
        assert report.joined_requests == 0
        assert report.server_byte_savings == 0.0

    def test_batching_window_limits_joins(self, catalog):
        analyzer = StreamSharingAnalyzer(catalog, batching_window=5.0)
        report = analyzer.analyze(trace((0.0, 0), (10.0, 0)))
        assert report.joined_requests == 0
        assert report.batches == 2

    def test_different_objects_do_not_batch(self, catalog):
        report = StreamSharingAnalyzer(catalog).analyze(trace((0.0, 0), (1.0, 1)))
        assert report.batches == 2
        assert report.joined_requests == 0

    def test_cached_prefix_absorbs_patches(self, catalog):
        # A 960 KB cached prefix (20 s of playback) covers the whole patch of
        # a request that joins 10 s late.
        analyzer = StreamSharingAnalyzer(catalog, prefix_for=lambda obj: 960.0)
        report = analyzer.analyze(trace((0.0, 0), (10.0, 0)))
        assert report.patch_bytes == pytest.approx(480.0)
        assert report.patch_bytes_from_cache == pytest.approx(480.0)
        # The joiner adds no server traffic at all.
        assert report.shared_server_bytes == pytest.approx(4800.0 - 960.0)

    def test_join_ratio(self, catalog):
        report = StreamSharingAnalyzer(catalog).analyze(
            trace((0.0, 0), (1.0, 0), (2.0, 0), (150.0, 0))
        )
        assert report.requests == 4
        assert report.joined_requests == 2
        assert report.join_ratio == pytest.approx(0.5)

    def test_negative_window_rejected(self, catalog):
        with pytest.raises(ConfigurationError):
            StreamSharingAnalyzer(catalog, batching_window=-1.0)


class TestHelpers:
    def test_prefix_function_for_bandwidth(self, catalog):
        prefix_for = prefix_function_for_bandwidth({0: 24.0, 1: 96.0})
        assert prefix_for(catalog.get(0)) == pytest.approx(2400.0)
        assert prefix_for(catalog.get(1)) == 0.0

    def test_sharing_summary_rows(self, catalog):
        report = StreamSharingAnalyzer(catalog).analyze(trace((0.0, 0), (10.0, 0)))
        rows = sharing_summary_rows({"no cache": report})
        assert rows[0]["configuration"] == "no cache"
        assert 0.0 < rows[0]["server_byte_savings"] < 1.0
        assert rows[0]["batches"] == 1.0


class TestOnGeneratedWorkload:
    def test_sharing_with_partial_caching_on_gismo_trace(self, tiny_workload):
        # Combining the paper's prefix caching with batching reduces server
        # traffic more than batching alone (the patches come from the cache).
        bandwidths = {obj.object_id: 24.0 for obj in tiny_workload.catalog}
        plain = StreamSharingAnalyzer(tiny_workload.catalog).analyze(tiny_workload.trace)
        with_prefixes = StreamSharingAnalyzer(
            tiny_workload.catalog,
            prefix_for=prefix_function_for_bandwidth(bandwidths),
        ).analyze(tiny_workload.trace)
        assert 0.0 <= plain.server_byte_savings <= 1.0
        assert with_prefixes.shared_server_bytes <= plain.shared_server_bytes
        assert plain.requests == len(tiny_workload.trace)
