#!/usr/bin/env python
"""Schema gate for the observability artifacts (``make obs-smoke``).

Validates the two files ``repro-sim run`` writes when observability is
switched on:

* the ``--metrics-out`` JSON timeline — schema version, consistent
  window count across every series, the expected series keys, and
  totals that carry the run's aggregate counters;
* the ``--trace-out`` JSONL event trace — every line parses, carries
  the required envelope fields (``t``/``event``/``level``), uses a
  known level, and the file is bracketed by ``run-start``/``run-end``.

Event timestamps are deliberately *not* required to be monotone:
fault-episode boundaries are emitted when the injector first looks past
them, which can trail the requests already processed.

Usage::

    python scripts/check_obs.py METRICS_JSON TRACE_JSONL
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List

#: Series the timeline JSON must expose, one value per window.
REQUIRED_SERIES = (
    "requests",
    "hits",
    "hit_ratio",
    "byte_hit_ratio",
    "mean_delay",
    "cache_occupancy",
    "cached_objects",
    "evictions",
    "reactive_shifts",
    "reactive_rekeys",
    "fault_state",
    "streaming_startup_delay",
    "streaming_rebuffer_ratio",
    "streaming_quality",
    "streaming_abandonment_rate",
)

#: Envelope fields every trace line must carry.
TRACE_ENVELOPE = ("t", "event", "level")

TRACE_LEVELS = ("debug", "info")


def check_metrics(path: Path) -> List[str]:
    """Validate a ``--metrics-out`` timeline file; return failure strings."""
    failures: List[str] = []
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        return [f"{path}: unreadable metrics JSON: {error}"]
    if payload.get("schema") != 1:
        failures.append(f"{path}: schema {payload.get('schema')!r}, expected 1")
    num_windows = payload.get("num_windows")
    if not isinstance(num_windows, int) or num_windows < 1:
        failures.append(f"{path}: bad num_windows {num_windows!r}")
        return failures
    starts = payload.get("window_starts", [])
    if len(starts) != num_windows:
        failures.append(
            f"{path}: {len(starts)} window_starts for {num_windows} windows"
        )
    series = payload.get("series", {})
    for name in REQUIRED_SERIES:
        values = series.get(name)
        if values is None:
            failures.append(f"{path}: series {name!r} missing")
        elif len(values) != num_windows:
            failures.append(
                f"{path}: series {name!r} has {len(values)} values "
                f"for {num_windows} windows"
            )
    totals = payload.get("totals", {})
    for name in ("requests", "hits", "evictions"):
        if name not in totals:
            failures.append(f"{path}: totals missing {name!r}")
    if "requests" in totals and "requests" in series:
        if sum(series["requests"]) != totals["requests"]:
            failures.append(
                f"{path}: per-window requests sum to "
                f"{sum(series['requests'])}, totals say {totals['requests']}"
            )
    return failures


def check_trace(path: Path) -> List[str]:
    """Validate a ``--trace-out`` JSONL file; return failure strings."""
    failures: List[str] = []
    try:
        lines = path.read_text().splitlines()
    except OSError as error:
        return [f"{path}: unreadable trace file: {error}"]
    if not lines:
        return [f"{path}: empty trace"]
    records = []
    for number, line in enumerate(lines, start=1):
        try:
            record = json.loads(line)
        except ValueError as error:
            failures.append(f"{path}:{number}: unparseable line: {error}")
            continue
        for field in TRACE_ENVELOPE:
            if field not in record:
                failures.append(f"{path}:{number}: missing {field!r}")
        if record.get("level") not in TRACE_LEVELS:
            failures.append(
                f"{path}:{number}: unknown level {record.get('level')!r}"
            )
        records.append(record)
    if records:
        if records[0].get("event") != "run-start":
            failures.append(
                f"{path}: first event is {records[0].get('event')!r}, "
                "expected 'run-start'"
            )
        if records[-1].get("event") != "run-end":
            failures.append(
                f"{path}: last event is {records[-1].get('event')!r}, "
                "expected 'run-end'"
            )
    return failures


def main(argv: List[str]) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    metrics_path, trace_path = Path(argv[0]), Path(argv[1])
    failures = check_metrics(metrics_path) + check_trace(trace_path)
    if failures:
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print(f"OK {metrics_path} and {trace_path} pass the observability schema")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
