"""Bandwidth measurement: active probing and passive observation.

Section 2.7 of the paper discusses how a cache can learn the bandwidth of
the path to an origin server:

* **Active measurement** — send probe packets, observe loss rate and
  round-trip time, and predict the throughput a TCP-friendly transport
  would obtain.  The standard prediction is the PFTK model of Padhye et al.
  [SIGCOMM 1998], in which throughput is inversely proportional to the RTT
  and to the square root of the loss rate.
* **Passive measurement** — observe the throughput of past transfers to the
  same server and smooth them (we use an exponentially weighted moving
  average).  No extra traffic, but the estimate lags when conditions change.

Both are implemented here; the simulator can attach a
:class:`PassiveEstimator` per path so that policies operate on estimated
rather than oracle bandwidth.

Passive observation alone only sees a path when a request uses it.  The
:mod:`repro.sim.events` subsystem closes that gap with periodic
re-measurement *between* requests; every out-of-band sample it draws is
recorded in a :class:`BandwidthMeasurementLog`, which keeps bounded
per-server statistics (count / mean / extremes / last sample) so tests,
benchmarks, and reports can account for measurement traffic without
storing every sample.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, MeasurementError


@dataclass(frozen=True)
class PathConditions:
    """End-to-end conditions of a path, as observed by active probing.

    Attributes
    ----------
    rtt:
        Round-trip time in seconds.
    loss_rate:
        Packet loss probability in ``[0, 1)``.
    mss:
        Maximum segment size in KB (default 1.46 KB, a 1460-byte segment).
    rto:
        Retransmission timeout in seconds (PFTK uses ``max(1.0, 4 * rtt)``
        by convention when not measured; we default to ``4 * rtt``).
    """

    rtt: float
    loss_rate: float
    mss: float = 1.46
    rto: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rtt <= 0:
            raise ConfigurationError(f"rtt must be positive, got {self.rtt}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError(
                f"loss_rate must be in [0, 1), got {self.loss_rate}"
            )
        if self.mss <= 0:
            raise ConfigurationError(f"mss must be positive, got {self.mss}")


def pftk_throughput(conditions: PathConditions) -> float:
    """Predict TCP throughput (KB/s) with the PFTK model [Padhye et al. 98].

    The full model is::

        B = MSS / (RTT * sqrt(2bp/3) + RTO * min(1, 3*sqrt(3bp/8)) * p * (1 + 32 p^2))

    with ``b = 2`` delayed-ACK packets per ACK and ``p`` the loss rate.
    With zero loss the model diverges, so the function returns the
    window-limited throughput of 64 KB per RTT instead, which is the
    sensible cap for an un-congested path.
    """
    p = conditions.loss_rate
    rtt = conditions.rtt
    if p <= 0.0:
        return 64.0 / rtt
    rto = conditions.rto if conditions.rto is not None else max(4.0 * rtt, 1.0)
    b = 2.0
    congestion_term = rtt * math.sqrt(2.0 * b * p / 3.0)
    timeout_term = rto * min(1.0, 3.0 * math.sqrt(3.0 * b * p / 8.0)) * p * (1.0 + 32.0 * p**2)
    throughput = conditions.mss / (congestion_term + timeout_term)
    # The window-limited cap still applies under loss.
    return min(throughput, 64.0 / rtt)


def simplified_tcp_throughput(conditions: PathConditions) -> float:
    """The simpler square-root model ``MSS / (RTT * sqrt(2p/3))`` (KB/s).

    This is the "inversely proportional to the square root of packet loss
    rate and round-trip time" formulation the paper cites.  Falls back to
    the window-limited value when loss is zero.
    """
    p = conditions.loss_rate
    if p <= 0.0:
        return 64.0 / conditions.rtt
    return min(
        conditions.mss / (conditions.rtt * math.sqrt(2.0 * p / 3.0)),
        64.0 / conditions.rtt,
    )


class ActiveProber:
    """Estimate path bandwidth by probing loss rate and RTT.

    The prober is given the *true* path conditions and adds measurement
    noise, mimicking the sampling error of a small probe train.  This keeps
    the substrate honest about the overhead/accuracy trade-off the paper
    mentions without simulating individual probe packets.
    """

    def __init__(self, probe_count: int = 20, noise_fraction: float = 0.1):
        if probe_count <= 0:
            raise ConfigurationError(f"probe_count must be positive, got {probe_count}")
        if noise_fraction < 0:
            raise ConfigurationError(
                f"noise_fraction must be non-negative, got {noise_fraction}"
            )
        self.probe_count = int(probe_count)
        self.noise_fraction = float(noise_fraction)

    def probe(
        self, conditions: PathConditions, rng: np.random.Generator
    ) -> float:
        """Return an estimated bandwidth (KB/s) for the given conditions."""
        # Loss estimate: binomial sampling error over probe_count probes.  A
        # probe train that loses every packet still yields a usable (if very
        # pessimistic) estimate rather than an out-of-range loss rate of 1.
        observed_losses = rng.binomial(self.probe_count, conditions.loss_rate)
        estimated_loss = min(observed_losses / self.probe_count, 0.99)
        # RTT estimate: multiplicative noise shrinking with probe count.
        rtt_noise = 1.0 + rng.normal(0.0, self.noise_fraction / math.sqrt(self.probe_count))
        estimated_rtt = max(conditions.rtt * rtt_noise, 1e-3)
        estimate = pftk_throughput(
            PathConditions(rtt=estimated_rtt, loss_rate=estimated_loss, mss=conditions.mss)
        )
        return max(estimate, 1.0)

    def probe_overhead_kb(self) -> float:
        """Approximate probe traffic in KB (probe_count small packets)."""
        return self.probe_count * 0.064  # 64-byte probes


class PassiveEstimator:
    """EWMA estimator of path bandwidth from observed transfer throughput.

    Each completed transfer to a server contributes one throughput sample;
    the estimator keeps an exponentially weighted moving average per server.
    Policies then use :meth:`estimate` instead of the oracle base bandwidth.

    Besides the per-server mode, the estimator has a ``(server_id,
    group_id)`` keyed mode for **per-group last-mile estimation**
    (``docs/clients.md``): when the simulator models a heterogeneous client
    cloud, each request's *delivered* throughput — the bottleneck of the
    origin hop and the client group's last mile — can be recorded per
    ``(server, client group)`` pair with :meth:`observe_group`, so the
    cache learns what each client population actually obtains from each
    server rather than assuming its client side is perfectly known.
    :meth:`estimate_group` falls back to the per-server estimate (and then
    to ``initial_estimate``) until the pair has its first sample, so the
    group view degrades gracefully to the origin view.
    """

    def __init__(self, smoothing: float = 0.25, initial_estimate: float = 100.0):
        if not 0.0 < smoothing <= 1.0:
            raise ConfigurationError(f"smoothing must be in (0, 1], got {smoothing}")
        if initial_estimate <= 0:
            raise ConfigurationError(
                f"initial_estimate must be positive, got {initial_estimate}"
            )
        self.smoothing = float(smoothing)
        self.initial_estimate = float(initial_estimate)
        self._estimates: Dict[int, float] = {}
        self._sample_counts: Dict[int, int] = {}
        self._group_estimates: Dict[Tuple[int, int], float] = {}
        self._group_sample_counts: Dict[Tuple[int, int], int] = {}

    def observe(self, server_id: int, throughput: float) -> float:
        """Record a throughput sample (KB/s) and return the new estimate."""
        if throughput <= 0:
            raise MeasurementError(
                f"throughput must be positive, got {throughput} for server {server_id}"
            )
        if server_id not in self._estimates:
            self._estimates[server_id] = throughput
        else:
            previous = self._estimates[server_id]
            self._estimates[server_id] = (
                (1.0 - self.smoothing) * previous + self.smoothing * throughput
            )
        self._sample_counts[server_id] = self._sample_counts.get(server_id, 0) + 1
        return self._estimates[server_id]

    def estimate(self, server_id: int) -> float:
        """Current bandwidth estimate for a server (KB/s)."""
        return self._estimates.get(server_id, self.initial_estimate)

    def observe_group(self, server_id: int, group_id: int, throughput: float) -> float:
        """Record one delivered-throughput sample for a ``(server, group)`` pair.

        Same EWMA update as :meth:`observe`, kept in a separate keyed space:
        group samples never disturb the per-server origin estimates (and
        vice versa), so enabling per-group estimation cannot change what a
        group-unaware policy believes.  Returns the new group estimate.
        """
        if throughput <= 0:
            raise MeasurementError(
                f"throughput must be positive, got {throughput} for server "
                f"{server_id} group {group_id}"
            )
        key = (server_id, group_id)
        if key not in self._group_estimates:
            self._group_estimates[key] = throughput
        else:
            previous = self._group_estimates[key]
            self._group_estimates[key] = (
                (1.0 - self.smoothing) * previous + self.smoothing * throughput
            )
        self._group_sample_counts[key] = self._group_sample_counts.get(key, 0) + 1
        return self._group_estimates[key]

    def estimate_group(self, server_id: int, group_id: int) -> float:
        """Delivered-bandwidth estimate for one ``(server, group)`` pair (KB/s).

        Falls back to the per-server estimate until the pair has observed
        its first sample, so callers can use the group view unconditionally.
        """
        value = self._group_estimates.get((server_id, group_id))
        if value is not None:
            return value
        return self.estimate(server_id)

    def sample_count(self, server_id: int) -> int:
        """How many samples have been observed for a server."""
        return self._sample_counts.get(server_id, 0)

    def group_sample_count(self, server_id: int, group_id: int) -> int:
        """How many samples have been observed for a ``(server, group)`` pair."""
        return self._group_sample_counts.get((server_id, group_id), 0)

    def known_servers(self) -> List[int]:
        """Servers for which at least one sample has been observed."""
        return sorted(self._estimates.keys())

    def known_groups(self, server_id: int) -> List[int]:
        """Client groups with at least one sample for the given server."""
        return sorted(
            group for (server, group) in self._group_estimates if server == server_id
        )

    def reset(self) -> None:
        """Forget all observations."""
        self._estimates.clear()
        self._sample_counts.clear()
        self._group_estimates.clear()
        self._group_sample_counts.clear()


class BandwidthMeasurementLog:
    """Bounded per-server record of out-of-band bandwidth samples.

    The periodic re-measurement events of :mod:`repro.sim.events` can fire
    millions of times on a long trace, so the log keeps running statistics
    (count, mean, min/max, last sample and its timestamp) per server rather
    than the samples themselves — constant memory per server, enough to
    account for measurement overhead and to sanity-check cadence in tests.
    """

    __slots__ = ("_counts", "_means", "_mins", "_maxs", "_last", "_last_time")

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}
        self._means: Dict[int, float] = {}
        self._mins: Dict[int, float] = {}
        self._maxs: Dict[int, float] = {}
        self._last: Dict[int, float] = {}
        self._last_time: Dict[int, float] = {}

    def record(self, time: float, server_id: int, throughput: float) -> None:
        """Record one sample (KB/s) for a server at simulation ``time``."""
        if throughput <= 0:
            raise MeasurementError(
                f"throughput must be positive, got {throughput} for server {server_id}"
            )
        count = self._counts.get(server_id, 0)
        if count == 0:
            self._means[server_id] = throughput
            self._mins[server_id] = throughput
            self._maxs[server_id] = throughput
        else:
            # Streaming mean: exact regardless of sample count.
            self._means[server_id] += (throughput - self._means[server_id]) / (count + 1)
            if throughput < self._mins[server_id]:
                self._mins[server_id] = throughput
            elif throughput > self._maxs[server_id]:
                self._maxs[server_id] = throughput
        self._counts[server_id] = count + 1
        self._last[server_id] = throughput
        self._last_time[server_id] = float(time)

    @property
    def total_samples(self) -> int:
        """Total number of samples recorded across all servers."""
        return sum(self._counts.values())

    def sample_count(self, server_id: int) -> int:
        """Number of samples recorded for one server."""
        return self._counts.get(server_id, 0)

    def mean(self, server_id: int) -> Optional[float]:
        """Mean sampled bandwidth for a server (None before any sample)."""
        return self._means.get(server_id)

    def last_sample(self, server_id: int) -> Optional[float]:
        """Most recent sample for a server (None before any sample)."""
        return self._last.get(server_id)

    def last_sample_time(self, server_id: int) -> Optional[float]:
        """Simulation time of the most recent sample for a server."""
        return self._last_time.get(server_id)

    def servers(self) -> List[int]:
        """Servers with at least one recorded sample, sorted."""
        return sorted(self._counts.keys())

    def as_dict(self) -> Dict[int, Dict[str, float]]:
        """Per-server summary rows (count / mean / min / max / last)."""
        return {
            server_id: {
                "count": float(self._counts[server_id]),
                "mean": self._means[server_id],
                "min": self._mins[server_id],
                "max": self._maxs[server_id],
                "last": self._last[server_id],
            }
            for server_id in self.servers()
        }
