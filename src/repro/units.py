"""Unit conventions and conversion helpers used throughout :mod:`repro`.

The paper (Jin, Bestavros & Iyengar, 2002) expresses quantities in a small
set of natural units, and the whole library follows the same conventions so
that numbers read directly against the figures:

========================  =======================================
Quantity                  Unit
========================  =======================================
Data size                 kilobytes (KB)
Bandwidth / bit-rate      kilobytes per second (KB/s)
Time / duration / delay   seconds
Monetary value            dollars
========================  =======================================

A "kilobyte" here is 1000 bytes; the distinction from KiB is immaterial for
reproducing the paper's results but the constants below make the convention
explicit and keep magic numbers out of the rest of the code base.
"""

from __future__ import annotations

#: Kilobytes per megabyte.
KB_PER_MB: float = 1_000.0

#: Kilobytes per gigabyte.
KB_PER_GB: float = 1_000_000.0

#: Seconds per minute.
SECONDS_PER_MINUTE: float = 60.0

#: Seconds per hour.
SECONDS_PER_HOUR: float = 3_600.0

#: Frames per second assumed by the paper's workload (Table 1).
FRAMES_PER_SECOND: float = 24.0

#: Kilobytes per frame assumed by the paper's workload (Table 1).
KB_PER_FRAME: float = 2.0

#: The paper's constant object bit-rate, 2 KB/frame * 24 frame/s = 48 KB/s.
DEFAULT_BITRATE_KBPS: float = KB_PER_FRAME * FRAMES_PER_SECOND


def gb_to_kb(gigabytes: float) -> float:
    """Convert gigabytes to kilobytes."""
    return gigabytes * KB_PER_GB


def kb_to_gb(kilobytes: float) -> float:
    """Convert kilobytes to gigabytes."""
    return kilobytes / KB_PER_GB


def mb_to_kb(megabytes: float) -> float:
    """Convert megabytes to kilobytes."""
    return megabytes * KB_PER_MB


def kb_to_mb(kilobytes: float) -> float:
    """Convert kilobytes to megabytes."""
    return kilobytes / KB_PER_MB


def minutes_to_seconds(minutes: float) -> float:
    """Convert minutes to seconds."""
    return minutes * SECONDS_PER_MINUTE


def seconds_to_minutes(seconds: float) -> float:
    """Convert seconds to minutes."""
    return seconds / SECONDS_PER_MINUTE


def hours_to_seconds(hours: float) -> float:
    """Convert hours to seconds."""
    return hours * SECONDS_PER_HOUR


def positive_part(value: float) -> float:
    """Return ``value`` if positive, otherwise ``0.0``.

    This is the ``[y]+`` operator used throughout the paper's formulas, e.g.
    the service delay ``[T_i r_i - T_i b_i - x_i]+ / b_i``.
    """
    return value if value > 0.0 else 0.0
