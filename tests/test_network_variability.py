"""Tests for bandwidth-variability models (Figures 3 and 4)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.network.variability import (
    MEASURED_PATH_PROFILES,
    ConstantVariability,
    LognormalRatioVariability,
    MeasuredPathVariability,
    NLANRRatioVariability,
    empirical_ratio_statistics,
)


class TestConstantVariability:
    def test_all_ratios_one(self, rng):
        model = ConstantVariability()
        assert np.all(model.sample_ratio(rng, size=100) == 1.0)
        assert model.coefficient_of_variation() == 0.0

    def test_time_series_constant(self, rng):
        series = ConstantVariability().time_series(10.0, 4.0, rng)
        assert np.all(series == 1.0)


class TestLognormalRatioVariability:
    def test_unit_mean(self, rng):
        model = LognormalRatioVariability(0.5)
        ratios = model.sample_ratio(rng, size=200_000)
        assert ratios.mean() == pytest.approx(1.0, abs=0.02)

    def test_cov_matches_request(self, rng):
        target = 0.4
        model = LognormalRatioVariability(target)
        ratios = model.sample_ratio(rng, size=200_000)
        assert ratios.std() / ratios.mean() == pytest.approx(target, abs=0.03)

    def test_zero_cov_is_constant(self, rng):
        ratios = LognormalRatioVariability(0.0).sample_ratio(rng, size=10)
        assert np.all(ratios == 1.0)

    def test_ratios_clipped_at_max(self, rng):
        model = LognormalRatioVariability(1.5, max_ratio=3.0)
        assert model.sample_ratio(rng, size=50_000).max() <= 3.0

    def test_rejects_negative_cov(self):
        with pytest.raises(ConfigurationError):
            LognormalRatioVariability(-0.1)


class TestNLANRRatioVariability:
    def test_roughly_70_percent_within_half_band(self, rng):
        # The paper reports ~70% of samples between 0.5x and 1.5x the mean.
        model = NLANRRatioVariability()
        ratios = model.sample_ratio(rng, size=100_000)
        stats = empirical_ratio_statistics(ratios)
        assert stats["fraction_in_half_band"] == pytest.approx(0.70, abs=0.08)

    def test_higher_variability_than_measured_paths(self):
        nlanr_cov = NLANRRatioVariability().coefficient_of_variation()
        for path in MEASURED_PATH_PROFILES:
            assert MeasuredPathVariability(path).coefficient_of_variation() < nlanr_cov


class TestMeasuredPathVariability:
    def test_known_paths_and_average(self):
        for key in ("inria", "taiwan", "hongkong", "average"):
            model = MeasuredPathVariability(key)
            assert model.coefficient_of_variation() > 0

    def test_unknown_path_rejected(self):
        with pytest.raises(ConfigurationError):
            MeasuredPathVariability("mars")

    def test_inria_is_smoothest(self):
        covs = {
            key: MeasuredPathVariability(key).coefficient_of_variation()
            for key in MEASURED_PATH_PROFILES
        }
        assert covs["inria"] == min(covs.values())

    def test_time_series_length_and_positivity(self, rng):
        model = MeasuredPathVariability("taiwan")
        series = model.time_series(duration_hours=40.0, interval_minutes=4.0, rng=rng)
        assert series.size == 600
        assert np.all(series >= 0)

    def test_time_series_autocorrelated(self, rng):
        model = MeasuredPathVariability("inria")
        series = model.time_series(duration_hours=45.0, interval_minutes=4.0, rng=rng)
        lag1 = np.corrcoef(series[:-1], series[1:])[0, 1]
        assert lag1 > 0.3  # i.i.d. samples would hover near zero

    def test_bandwidth_time_series_scaled_by_profile_mean(self, rng):
        model = MeasuredPathVariability("hongkong")
        times, bandwidth = model.bandwidth_time_series(rng=rng)
        assert times.size == bandwidth.size
        assert bandwidth.mean() == pytest.approx(model.profile.mean_bandwidth, rel=0.2)

    def test_time_series_requires_rng(self):
        with pytest.raises(ConfigurationError):
            MeasuredPathVariability("inria").time_series(10.0, 4.0, None)

    def test_marginal_ratios_unit_mean(self, rng):
        model = MeasuredPathVariability("average")
        ratios = model.sample_ratio(rng, size=100_000)
        assert ratios.mean() == pytest.approx(1.0, abs=0.02)


class TestEmpiricalRatioStatistics:
    def test_statistics_of_known_sample(self):
        stats = empirical_ratio_statistics(np.array([0.5, 1.0, 1.5]))
        assert stats["mean"] == pytest.approx(1.0)
        assert stats["fraction_in_half_band"] == 1.0
        assert stats["max_ratio"] == 1.5

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            empirical_ratio_statistics(np.array([]))
